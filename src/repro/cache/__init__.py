"""The verdict cache: digest-keyed admissibility verdicts across requests,
threads, restarts and replicas.

A verdict — "does model M allow test T's candidate execution?" — is a pure
function of the model's semantics and the test's symmetry class, and the
repo already has process-stable names for both:

* the :class:`~repro.compile.CompiledModel` sha256 **IR digest** (PR 5),
  identical for structurally equal formulas across processes; and
* the pipeline's **canonical test key** (PR 4), identical for every test in
  a symmetry class, digested to a stable hex string.

:class:`VerdictCache` maps ``(model digest, test digest)`` to the boolean
verdict through a thread-safe in-memory LRU tier and an optional
append-only persistent tier (:class:`~repro.cache.persist.VerdictStore`),
so a restarted — or freshly booted replica — server answers repeat catalog
queries without evaluating a single execution.  The
:class:`~repro.engine.engine.CheckEngine` interposes the cache in
``check``/``check_column``; the serve layer answers cache-hit ``check``
requests without even taking the engine lock.
"""

from repro.cache.persist import VerdictStore, STORE_FORMAT, STORE_VERSION
from repro.cache.verdict import CacheStats, VerdictCache

__all__ = [
    "CacheStats",
    "VerdictCache",
    "VerdictStore",
    "STORE_FORMAT",
    "STORE_VERSION",
]
