"""The in-memory verdict-cache tier: a thread-safe digest-keyed LRU.

See :mod:`repro.cache` for the key design.  This module keeps the hot
path minimal: a :meth:`VerdictCache.get` on a warm key is one lock
acquisition, one ``OrderedDict`` move-to-end and two counter increments —
cheap enough that the serve layer answers cache-hit requests without
touching the engine at all.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Tuple

from repro.cache.persist import VerdictStore
from repro.util import faults

#: One cache key: (model IR digest, canonical test-key digest).
Key = Tuple[str, str]

#: Cap on the per-object digest memos (streams of throwaway tests/models
#: must not pin ids forever; recomputing after a clear is cheap).
_MEMO_LIMIT = 1 << 16


@dataclass
class CacheStats:
    """Counters describing what a :class:`VerdictCache` did."""

    #: lookups answered from the memory tier
    hits: int = 0
    #: lookups that found nothing
    misses: int = 0
    #: verdicts inserted (first sight of a key)
    stores: int = 0
    #: LRU entries dropped to stay under capacity
    evictions: int = 0
    #: entries recovered from the persistent tier at open
    persisted_loaded: int = 0
    #: corrupt/foreign lines skipped at open
    persisted_skipped: int = 0
    #: entries appended to the persistent tier by this process
    persisted_written: int = 0
    #: current memory-tier size
    entries: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


class VerdictCache:
    """Thread-safe LRU over ``(model digest, test digest) -> verdict``.

    Args:
        capacity: memory-tier entry cap; the least recently used entry is
            evicted past it.  Evicted entries remain recoverable from the
            persistent tier (they were appended on first store).
        store: optional persistent tier; when given, the file's entries
            seed the memory tier and every new verdict is appended.
    """

    def __init__(
        self, capacity: int = 1 << 20, store: Optional[VerdictStore] = None
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.store = store
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Key, bool]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._evictions = 0
        # id-keyed digest memos; the object reference keeps the id honest.
        self._test_digests: Dict[int, Tuple[object, Optional[str]]] = {}
        self._model_digests: Dict[int, Tuple[object, Optional[str]]] = {}
        if store is not None:
            for key, verdict in store.load().items():
                self._entries[key] = verdict
                if len(self._entries) > capacity:
                    self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, directory: str, capacity: int = 1 << 20) -> "VerdictCache":
        """A cache backed by ``directory``'s persistent tier."""
        return cls(capacity=capacity, store=VerdictStore(directory))

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    def test_digest(self, test: object) -> Optional[str]:
        """The test's canonical-key digest, or None when uncacheable.

        Only tests inside the canonicalizable Load/Store/Fence fragment get
        a key: their canonical form is a pure function of the program and
        outcome, stable across processes.  Anything else (dependency
        idioms, computed addresses) is simply never cached.
        """
        key = id(test)
        entry = self._test_digests.get(key)
        if entry is not None and entry[0] is test:
            return entry[1]
        from repro.pipeline.canonical import abstract_test, canonical_form, key_digest

        abstracted = abstract_test(test)  # type: ignore[arg-type]
        digest = (
            key_digest(canonical_form(abstracted)) if abstracted is not None else None
        )
        if len(self._test_digests) >= _MEMO_LIMIT:
            self._test_digests.clear()
        self._test_digests[key] = (test, digest)
        return digest

    def model_digest(self, model: object) -> Optional[str]:
        """The model's IR digest, or None when uncacheable.

        Only formula models are cacheable: an opaque-callable model's IR
        digest embeds the function object's id, which does not survive a
        process restart — exactly the property the persistent tier needs.
        """
        key = id(model)
        entry = self._model_digests.get(key)
        if entry is not None and entry[0] is model:
            return entry[1]
        from repro.compile.compiler import compile_model

        compiled = compile_model(model)  # type: ignore[arg-type]
        digest = compiled.digest if compiled.kind == "formula" else None
        if len(self._model_digests) >= _MEMO_LIMIT:
            self._model_digests.clear()
        self._model_digests[key] = (model, digest)
        return digest

    def key_for(self, test: object, model: object) -> Optional[Key]:
        """The cache key for a (test, model) pair, or None when uncacheable."""
        model_digest = self.model_digest(model)
        if model_digest is None:
            return None
        test_digest = self.test_digest(test)
        if test_digest is None:
            return None
        return (model_digest, test_digest)

    # ------------------------------------------------------------------
    # the tiers
    # ------------------------------------------------------------------
    def get(self, key: Key) -> Optional[bool]:
        """Look a key up in the memory tier; None on miss."""
        if faults._FAULTS:
            faults.fire("cache.get", model=key[0][:12], test=key[1][:12])
        with self._lock:
            verdict = self._entries.get(key)
            if verdict is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return verdict

    def note_hit(self) -> None:
        """Count a hit answered from a memoized materialisation of an entry.

        The serve transport memoises whole response lines for repeated
        cache-hit checks; those requests never reach :meth:`get`, so the
        transport reports them here to keep hit counts truthful.
        """
        with self._lock:
            self._hits += 1

    def put(self, key: Key, verdict: bool) -> bool:
        """Insert a verdict; first sight of a key also persists it.

        Returns True when the key was newly inserted (and, with a store,
        appended to the persistent tier), False for a repeat.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return False
            self._entries[key] = bool(verdict)
            self._stores += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
        if self.store is not None:
            self.store.append(key, bool(verdict))
        return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Key) -> bool:
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------------
    # lifecycle / observability
    # ------------------------------------------------------------------
    def flush(self) -> None:
        if self.store is not None:
            self.store.flush()

    def close(self) -> None:
        if self.store is not None:
            self.store.close()

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            stats = CacheStats(
                hits=self._hits,
                misses=self._misses,
                stores=self._stores,
                evictions=self._evictions,
                entries=len(self._entries),
            )
        if self.store is not None:
            stats.persisted_loaded = self.store.loaded
            stats.persisted_skipped = self.store.skipped
            stats.persisted_written = self.store.written
        return stats
