"""The persistent verdict-cache tier: one append-only JSONL file.

Layout of ``<cache_dir>/verdicts.jsonl``::

    {"format": "repro/verdict-cache", "version": 1}      <- header line
    {"m": "<model digest>", "t": "<test digest>", "v": 1}
    {"m": ..., "t": ..., "v": 0}
    ...

Design constraints, in order:

* **Crash safety by construction.**  The file is only ever appended to,
  one ``\\n``-terminated JSON object per entry, flushed in small batches.
  A crash can tear at most the final line; it can never corrupt earlier
  entries.
* **Corrupt-entry tolerance.**  :meth:`VerdictStore.load` skips anything
  it cannot parse — a torn tail, a garbage line, an entry with missing or
  ill-typed fields — and keeps everything else.  A torn file is degraded
  capacity, never a failed server start.
* **Versioned header.**  A file whose header names an unknown format or a
  newer version is left untouched and ignored (loaded as empty, appends
  disabled) so two releases sharing a cache directory cannot corrupt each
  other's state.
* **Shareable between replicas.**  Appends are O_APPEND writes of whole
  lines, so several server processes may append to one file on a shared
  directory; each line is independently valid and duplicate entries are
  harmless (last one wins on load, and all duplicates agree by
  construction — the verdict is a pure function of the key).

The ``cache.persist`` fault point fires on every flush so the robustness
suite can inject persistence failures; :func:`repro.util.faults.
truncate_file` is honoured after each flush to simulate torn writes.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Iterable, Optional, Tuple

from repro.util import faults

#: The header ``format`` field this release writes and accepts.
STORE_FORMAT = "repro/verdict-cache"
#: The header ``version`` this release writes; newer versions are ignored.
STORE_VERSION = 1

#: One cache key: (model IR digest, canonical test-key digest).
Key = Tuple[str, str]


class VerdictStore:
    """The append-only persistent tier of the verdict cache.

    Thread-safe: appends from concurrent workers are serialised by an
    internal lock.  Entries are buffered and flushed every
    ``flush_every`` appends (and on :meth:`close`), bounding both
    syscalls on the hot path and loss on a crash.
    """

    def __init__(self, directory: str, flush_every: int = 32) -> None:
        self.directory = os.path.abspath(directory)
        self.path = os.path.join(self.directory, "verdicts.jsonl")
        self.flush_every = max(1, flush_every)
        self._lock = threading.Lock()
        self._pending = 0
        #: entries loaded from disk at open (observability)
        self.loaded = 0
        #: lines skipped as corrupt/foreign at open (observability)
        self.skipped = 0
        #: entries appended by this process
        self.written = 0
        os.makedirs(self.directory, exist_ok=True)
        self._writable = True
        self._handle = None

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load(self) -> Dict[Key, bool]:
        """Read every recoverable entry; tolerate any corruption.

        Returns the recovered mapping and records ``loaded``/``skipped``
        counts.  A missing file is an empty cache; an unreadable or
        foreign-format file disables appends (the file is preserved
        untouched) and loads nothing.
        """
        entries: Dict[Key, bool] = {}
        try:
            handle = open(self.path, "r", encoding="utf-8", errors="replace")
        except OSError:
            return entries
        with handle:
            header_seen = False
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    self.skipped += 1
                    continue
                if not isinstance(record, dict):
                    self.skipped += 1
                    continue
                if not header_seen:
                    header_seen = True
                    if "format" in record or "version" in record:
                        if (
                            record.get("format") != STORE_FORMAT
                            or not isinstance(record.get("version"), int)
                            or record["version"] > STORE_VERSION
                        ):
                            # A foreign or future file: ignore it entirely and
                            # never append to it.
                            self._writable = False
                            self.skipped += 1
                            return {}
                        continue
                    # Headerless file (torn at birth): fall through and try
                    # the line as an entry.
                model = record.get("m")
                test = record.get("t")
                verdict = record.get("v")
                if (
                    isinstance(model, str)
                    and isinstance(test, str)
                    and verdict in (0, 1, True, False)
                ):
                    entries[(model, test)] = bool(verdict)
                else:
                    self.skipped += 1
        self.loaded = len(entries)
        return entries

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def _open_for_append(self):
        if self._handle is None:
            fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
            self._handle = open(self.path, "a", encoding="utf-8")
            if fresh:
                self._handle.write(
                    json.dumps({"format": STORE_FORMAT, "version": STORE_VERSION})
                    + "\n"
                )
                self._handle.flush()
        return self._handle

    def append(self, key: Key, verdict: bool) -> None:
        """Append one entry (buffered; flushed every ``flush_every``)."""
        if not self._writable:
            return
        with self._lock:
            handle = self._open_for_append()
            handle.write(
                json.dumps({"m": key[0], "t": key[1], "v": 1 if verdict else 0}) + "\n"
            )
            self.written += 1
            self._pending += 1
            if self._pending >= self.flush_every:
                self._flush_locked()

    def _flush_locked(self) -> None:
        if faults._FAULTS:
            faults.fire("cache.persist", path=self.path)
        if self._handle is not None:
            self._handle.flush()
        self._pending = 0
        faults.truncate_file("cache.persist", self.path)

    def flush(self) -> None:
        """Flush buffered appends (called on drain/close)."""
        if not self._writable:
            return
        with self._lock:
            if self._handle is not None:
                self._flush_locked()

    def close(self) -> None:
        """Flush and close the append handle (the store stays reusable)."""
        with self._lock:
            if self._handle is not None:
                try:
                    self._flush_locked()
                finally:
                    self._handle.close()
                    self._handle = None

    # ------------------------------------------------------------------
    def merge_from(self, paths: Iterable[str]) -> int:
        """Fold other stores' files into this one (replica cache shipping).

        Returns the number of entries appended.  Unreadable files and
        corrupt lines are skipped, exactly as :meth:`load` would.
        """
        added = 0
        for path in paths:
            other = VerdictStore.__new__(VerdictStore)
            other.path = os.fspath(path)
            other.skipped = 0
            other.loaded = 0
            other._writable = True
            for key, verdict in other.load().items():
                self.append(key, verdict)
                added += 1
        self.flush()
        return added


def store_info(store: Optional[VerdictStore]) -> Dict[str, object]:
    """A JSON-safe description of a store (for stats/metrics documents)."""
    if store is None:
        return {"enabled": False}
    return {
        "enabled": True,
        "path": store.path,
        "loaded": store.loaded,
        "skipped": store.skipped,
        "written": store.written,
    }
