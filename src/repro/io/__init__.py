"""Reading and writing litmus tests as text files.

The format is a small, line-oriented litmus dialect::

    litmus "SB"
    thread T1 {
      write X 1
      read Y r1
    }
    thread T2 {
      write Y 1
      read X r2
    }
    exists r1 = 0 & r2 = 0

Fences are written ``fence``; register arithmetic ``let t1 = r1 - r1 + 1``;
dependent addresses ``read [t1] r2``; branches ``branch r1``.  See
:mod:`repro.io.parser` for the full grammar.

Memory models travel as ``.model`` files (:mod:`repro.io.model_file`)::

    model "TSO"
    predicates Read Write Fence SameAddr
    formula (Write(x) & Write(y)) | Read(x) | Fence(x) | Fence(y)
"""

from repro.io.model_file import (
    ModelFileError,
    model_to_text,
    parse_model,
    parse_model_file,
    write_model_file,
)
from repro.io.parser import ParseError, parse_litmus, parse_litmus_file
from repro.io.writer import litmus_to_text, write_litmus_file

__all__ = [
    "ModelFileError",
    "ParseError",
    "model_to_text",
    "parse_litmus",
    "parse_litmus_file",
    "parse_model",
    "parse_model_file",
    "write_model_file",
    "litmus_to_text",
    "write_litmus_file",
]
