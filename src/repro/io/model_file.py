"""Reading and writing memory models as ``.model`` text files.

The format is a small line-oriented dialect mirroring the litmus one::

    # SPARC TSO, Section 2.4
    model "TSO"
    description "total store order: only write-read pairs may reorder"
    predicates Read Write Fence SameAddr
    formula (Write(x) & Write(y)) | Read(x) | Fence(x) | Fence(y)

* ``model NAME`` (quotes optional) — required, first directive;
* ``description TEXT`` — optional free text (quotes optional);
* ``predicates NAME...`` — optional; the declared vocabulary, resolved
  against the built-in predicate registry.  Defaults to the paper's
  standard set;
* ``formula DSL`` — required; the must-not-reorder function in the DSL of
  :func:`repro.core.formula.parse_formula`.  Long formulas may continue on
  indented follow-up lines;
* ``#`` starts a comment line; blank lines are ignored.

Parse errors raise :class:`ModelFileError` with the offending line number;
formula errors keep the DSL parser's position-and-caret rendering.  Files
written by :func:`model_to_text` parse back to an equal model, and the
format round-trips through the ``repro/model`` JSON schema of
:mod:`repro.api.serialize` (same name, formula, predicates, description).
"""

from __future__ import annotations

import os
from typing import List, Optional, Union

from repro.core.formula import FormulaError, parse_formula
from repro.core.model import MemoryModel
from repro.core.predicates import PredicateSet, STANDARD_PREDICATES, default_registry


class ModelFileError(ValueError):
    """Raised for malformed ``.model`` documents."""


def parse_model(text: str, filename: str = "<string>") -> MemoryModel:
    """Parse a ``.model`` document into a :class:`MemoryModel`."""
    name: Optional[str] = None
    description = ""
    predicates: Optional[PredicateSet] = None
    formula_text: Optional[str] = None
    formula_line = 0

    def fail(line_number: int, message: str) -> ModelFileError:
        return ModelFileError(f"{filename}:{line_number}: {message}")

    lines = text.splitlines()
    index = 0
    while index < len(lines):
        line_number = index + 1
        raw = lines[index]
        index += 1
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        directive, _, rest = line.partition(" ")
        rest = rest.strip()
        if directive == "model":
            if name is not None:
                raise fail(line_number, "duplicate 'model' directive")
            if not rest:
                raise fail(line_number, "'model' needs a name")
            name = _unquote(rest)
        elif directive == "description":
            description = _unquote(rest)
        elif directive == "predicates":
            if not rest:
                raise fail(line_number, "'predicates' needs at least one name")
            registry = default_registry()
            chosen = []
            for predicate_name in rest.split():
                if predicate_name not in registry:
                    known = ", ".join(sorted(registry))
                    raise fail(
                        line_number,
                        f"unknown predicate {predicate_name!r} (known: {known})",
                    )
                chosen.append(registry[predicate_name])
            predicates = PredicateSet(chosen)
        elif directive == "formula":
            if formula_text is not None:
                raise fail(line_number, "duplicate 'formula' directive")
            if not rest:
                raise fail(line_number, "'formula' needs a formula")
            parts = [rest]
            # Indented follow-up lines continue the formula.
            while index < len(lines) and lines[index][:1] in (" ", "\t"):
                continuation = lines[index].strip()
                if continuation and not continuation.startswith("#"):
                    parts.append(continuation)
                index += 1
            formula_text = " ".join(parts)
            formula_line = line_number
        else:
            raise fail(
                line_number,
                f"unknown directive {directive!r} "
                "(expected model, description, predicates or formula)",
            )

    if name is None:
        raise ModelFileError(f"{filename}: missing 'model' directive")
    if formula_text is None:
        raise ModelFileError(f"{filename}: missing 'formula' directive")
    try:
        formula = parse_formula(formula_text)
    except FormulaError as error:
        raise ModelFileError(f"{filename}:{formula_line}: {error}") from error
    return MemoryModel(
        name,
        formula,
        predicates if predicates is not None else STANDARD_PREDICATES,
        description,
    )


def parse_model_file(path: Union[str, os.PathLike]) -> MemoryModel:
    """Parse a ``.model`` file from disk."""
    path = os.fspath(path)
    with open(path) as handle:
        return parse_model(handle.read(), filename=path)


def model_to_text(model: MemoryModel) -> str:
    """Render a formula-defined model as a ``.model`` document."""
    if model.formula is None:
        raise ModelFileError(
            f"model {model.name!r} is defined by a Python callable and cannot be "
            "written as a .model file; express it in the formula DSL"
        )
    lines: List[str] = [f'model "{model.name}"']
    if model.description:
        lines.append(f'description "{model.description}"')
    lines.append(f"predicates {' '.join(model.predicates.names())}")
    lines.append(f"formula {model.formula}")
    return "\n".join(lines) + "\n"


def write_model_file(model: MemoryModel, path: Union[str, os.PathLike]) -> None:
    """Write a model as a ``.model`` file."""
    with open(os.fspath(path), "w") as handle:
        handle.write(model_to_text(model))


def _unquote(text: str) -> str:
    if len(text) >= 2 and text[0] == text[-1] and text[0] in ("'", '"'):
        return text[1:-1]
    return text
