"""Writer for the litmus text format (inverse of :mod:`repro.io.parser`)."""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.core.expr import BinOp, Const, Expr, Loc, Reg
from repro.core.instructions import Branch, Fence, Load, Op, Store
from repro.core.litmus import LitmusTest


def _expr_to_text(expr: Expr) -> str:
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, (Reg, Loc)):
        return expr.name
    if isinstance(expr, BinOp):
        return f"{_expr_to_text(expr.left)} {expr.op} {_expr_to_text(expr.right)}"
    raise TypeError(f"cannot serialise expression {expr!r}")


def _address_to_text(expr: Expr) -> str:
    if isinstance(expr, Loc):
        return expr.name
    if isinstance(expr, Reg):
        return f"[{expr.name}]"
    raise TypeError(
        f"cannot serialise address {expr!r}: the text format only supports plain "
        "locations and register-indirect addresses"
    )


def litmus_to_text(test: LitmusTest) -> str:
    """Serialise a litmus test to the text format."""
    lines: List[str] = [f'litmus "{test.name}"']
    if test.description:
        lines.append(f"# {test.description}")
    for thread in test.program.threads:
        lines.append(f"thread {thread.name} {{")
        for instruction in thread.instructions:
            if isinstance(instruction, Load):
                lines.append(f"  read {_address_to_text(instruction.address)} {instruction.dest}")
            elif isinstance(instruction, Store):
                lines.append(
                    f"  write {_address_to_text(instruction.address)} {_expr_to_text(instruction.value)}"
                )
            elif isinstance(instruction, Fence):
                suffix = "" if instruction.kind == "full" else f" {instruction.kind}"
                lines.append(f"  fence{suffix}")
            elif isinstance(instruction, Op):
                lines.append(f"  let {instruction.dest} = {_expr_to_text(instruction.expr)}")
            elif isinstance(instruction, Branch):
                lines.append(f"  branch {_expr_to_text(instruction.expr)}")
            else:  # pragma: no cover - new instruction kinds must be handled
                raise TypeError(f"cannot serialise instruction {instruction!r}")
        lines.append("}")
    condition = " & ".join(
        f"{register} = {value}" for register, value in sorted(test.register_outcome().items())
    )
    lines.append(f"exists {condition}")
    return "\n".join(lines) + "\n"


def write_litmus_file(test: LitmusTest, path: Union[str, Path]) -> None:
    """Write a litmus test to ``path``."""
    Path(path).write_text(litmus_to_text(test))
