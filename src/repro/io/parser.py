"""Parser for the litmus text format.

Grammar (one statement per line, ``#`` starts a comment)::

    test      := header thread+ condition
    header    := 'litmus' STRING
    thread    := 'thread' NAME '{' line* '}'
    line      := 'read'  address NAME          # load into register NAME
               | 'write' address operand       # store operand to address
               | 'fence' [NAME]                # fence (optional kind)
               | 'let' NAME '=' expr           # register arithmetic
               | 'branch' expr                 # conditional branch (control dep)
    address   := NAME | '[' NAME ']'           # location, or register-indirect
    operand   := NUMBER | NAME                 # constant or register
    expr      := operand (('+' | '-') operand)*
    condition := 'exists' NAME '=' NUMBER ('&' NAME '=' NUMBER)*

The ``exists`` clause must constrain every load register; it becomes the
test's outcome.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.expr import BinOp, Const, Expr, Loc, Reg
from repro.core.instructions import Branch, Fence, Instruction, Load, Op, Store
from repro.core.litmus import LitmusTest
from repro.core.program import Program, Thread


class ParseError(ValueError):
    """Raised on malformed litmus text."""

    def __init__(self, message: str, line_number: Optional[int] = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


_TOKEN_RE = re.compile(r"\[|\]|\{|\}|=|&|\+|-|\"[^\"]*\"|[A-Za-z_][A-Za-z_0-9]*|\d+")


def _strip_comment(line: str) -> str:
    position = line.find("#")
    return line if position < 0 else line[:position]


def _tokens(line: str) -> List[str]:
    return _TOKEN_RE.findall(line)


def _is_register(token: str) -> bool:
    """Registers are lower-case identifiers; locations are upper-case."""
    return token[0].islower() or token[0] == "_"


def _parse_operand(token: str, line_number: int) -> Expr:
    if token.isdigit():
        return Const(int(token))
    if _is_register(token):
        return Reg(token)
    return Loc(token)


def _parse_expr(tokens: List[str], line_number: int) -> Expr:
    if not tokens:
        raise ParseError("empty expression", line_number)
    expr = _parse_operand(tokens[0], line_number)
    index = 1
    while index < len(tokens):
        operator = tokens[index]
        if operator not in ("+", "-"):
            raise ParseError(f"expected '+' or '-', found {operator!r}", line_number)
        if index + 1 >= len(tokens):
            raise ParseError("dangling operator", line_number)
        expr = BinOp(operator, expr, _parse_operand(tokens[index + 1], line_number))
        index += 2
    return expr


def _parse_address(tokens: List[str], line_number: int) -> Tuple[Union[str, Expr], int]:
    """Parse an address; return (address, tokens consumed)."""
    if tokens[0] == "[":
        if len(tokens) < 3 or tokens[2] != "]":
            raise ParseError("malformed register-indirect address", line_number)
        return Reg(tokens[1]), 3
    return tokens[0], 1


def parse_litmus(text: str) -> LitmusTest:
    """Parse a litmus test from text."""
    name: Optional[str] = None
    threads: List[Thread] = []
    current_thread_name: Optional[str] = None
    current_instructions: List[Instruction] = []
    condition: Dict[str, int] = {}
    saw_condition = False

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        tokens = _tokens(line)
        if not tokens:
            continue
        keyword = tokens[0]

        if keyword == "litmus":
            if len(tokens) < 2:
                raise ParseError("missing test name", line_number)
            name = tokens[1].strip('"')
        elif keyword == "thread":
            if current_thread_name is not None:
                raise ParseError("nested thread definition", line_number)
            if len(tokens) < 2:
                raise ParseError("missing thread name", line_number)
            current_thread_name = tokens[1]
            if "{" not in tokens:
                raise ParseError("expected '{' after thread name", line_number)
            current_instructions = []
        elif keyword == "}":
            if current_thread_name is None:
                raise ParseError("'}' outside a thread", line_number)
            threads.append(Thread(current_thread_name, current_instructions))
            current_thread_name = None
        elif keyword == "read":
            if current_thread_name is None:
                raise ParseError("'read' outside a thread", line_number)
            address, consumed = _parse_address(tokens[1:], line_number)
            rest = tokens[1 + consumed :]
            if len(rest) != 1:
                raise ParseError("read needs exactly one destination register", line_number)
            current_instructions.append(Load(rest[0], address))
        elif keyword == "write":
            if current_thread_name is None:
                raise ParseError("'write' outside a thread", line_number)
            address, consumed = _parse_address(tokens[1:], line_number)
            value_tokens = tokens[1 + consumed :]
            current_instructions.append(Store(address, _parse_expr(value_tokens, line_number)))
        elif keyword == "fence":
            if current_thread_name is None:
                raise ParseError("'fence' outside a thread", line_number)
            kind = tokens[1] if len(tokens) > 1 else "full"
            current_instructions.append(Fence(kind))
        elif keyword == "let":
            if current_thread_name is None:
                raise ParseError("'let' outside a thread", line_number)
            if len(tokens) < 4 or tokens[2] != "=":
                raise ParseError("expected 'let NAME = expr'", line_number)
            current_instructions.append(Op(tokens[1], _parse_expr(tokens[3:], line_number)))
        elif keyword == "branch":
            if current_thread_name is None:
                raise ParseError("'branch' outside a thread", line_number)
            current_instructions.append(Branch(_parse_expr(tokens[1:], line_number)))
        elif keyword == "exists":
            saw_condition = True
            condition.update(_parse_condition(tokens[1:], line_number))
        else:
            raise ParseError(f"unknown statement {keyword!r}", line_number)

    if name is None:
        raise ParseError("missing 'litmus \"name\"' header")
    if current_thread_name is not None:
        raise ParseError(f"thread {current_thread_name} is not closed")
    if not threads:
        raise ParseError("litmus test has no threads")
    if not saw_condition:
        raise ParseError("missing 'exists' condition")
    return LitmusTest.from_register_outcome(name, Program(threads), condition)


def _parse_condition(tokens: List[str], line_number: int) -> Dict[str, int]:
    condition: Dict[str, int] = {}
    index = 0
    while index < len(tokens):
        if len(tokens) - index < 3:
            raise ParseError("malformed condition", line_number)
        register, equals, value = tokens[index : index + 3]
        if equals != "=" or not value.isdigit():
            raise ParseError("conditions must have the form 'reg = value'", line_number)
        condition[register] = int(value)
        index += 3
        if index < len(tokens):
            if tokens[index] != "&":
                raise ParseError("conditions must be joined with '&'", line_number)
            index += 1
    if not condition:
        raise ParseError("empty condition", line_number)
    return condition


def parse_litmus_file(path: Union[str, Path]) -> LitmusTest:
    """Parse a litmus test from a file."""
    return parse_litmus(Path(path).read_text())
