"""The synthesis engine: which models are consistent with observed verdicts?

Given a parametric model space and a sequence of resolved observations
(``(LitmusTest, observed_verdict)`` pairs), :class:`SynthesisEngine`
computes

* the **consistent set** — every model whose predicted verdicts match all
  observations;
* the **weakest and strongest** consistent models under the dominance
  order of :mod:`repro.comparison.exploration` (allowing a subset of the
  comparison suite = stronger);
* an **exclusion witness** per ruled-out model — the first observation its
  prediction contradicts;
* when *no* model is consistent, a **minimal conflict core** — an
  irreducible subset of the observations that already excludes every model
  (greedy deletion: dropping any one member readmits some model);
* when *several* models remain, **distinguishing-test suggestions** — a
  greedy set cover (the :mod:`repro.comparison.minimal_tests` algorithm)
  over the surviving models' exploration vectors, proposing the suite
  tests that best split the survivors.

Two strategies produce the per-observation verdict columns:

* ``enum`` — :meth:`~repro.engine.engine.CheckEngine.check_column`, the
  cache-warm streaming path of whatever backend the engine runs;
* ``sat`` — the per-test CNF skeleton (:meth:`TestContext.skeleton`) with
  the persistent incremental solver, one ``solve(assumptions=...)`` per
  *distinct* po-pair mask: models forcing identical program-order edges on
  a test share one solver call (``synth_group_hits`` counts the sharing),
  so large spaces don't pay one SAT call per model.

Everything after the columns is shared code, so the two strategies are
bit-identical by construction; the hypothesis differential suite asserts
it anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.comparison.exploration import ExplorationResult, explore_models
from repro.core.litmus import LitmusTest
from repro.core.model import MemoryModel
from repro.engine.engine import CheckEngine, EngineStats
from repro.util import faults

#: A resolved observation: the test plus the verdict observed for it.
ResolvedObservation = Tuple[LitmusTest, bool]

#: The synthesis strategy names (``auto`` resolves by engine backend).
SYNTH_BACKENDS = ("enum", "sat", "auto")


@dataclass(frozen=True)
class ExclusionWitness:
    """Why one model is ruled out: the observation its prediction contradicts."""

    model: str
    test: str
    observed: bool
    predicted: bool

    def describe(self) -> str:
        return (
            f"{self.model}: predicts {self.test} "
            f"{'allowed' if self.predicted else 'forbidden'}, observed "
            f"{'allowed' if self.observed else 'forbidden'}"
        )


@dataclass(frozen=True)
class TestSuggestion:
    """A suite test proposed to split the surviving consistent models."""

    test: str
    #: consistent-model pairs this test newly separates when it was picked
    separates_pairs: int
    #: how the surviving models split on it (predicted allowed / forbidden)
    allowed_models: int
    forbidden_models: int

    def describe(self) -> str:
        return (
            f"{self.test}: separates {self.separates_pairs} pairs "
            f"({self.allowed_models} survivors allow, "
            f"{self.forbidden_models} forbid)"
        )


@dataclass
class SynthesisResult:
    """The full answer to one synthesis query."""

    #: canonical space key ("deps" or "no_deps")
    space: str
    #: strategy that produced the verdict columns ("enum" or "sat")
    backend: str
    #: the observations as (test name, observed verdict), in input order
    observations: Tuple[Tuple[str, bool], ...]
    models_considered: int
    #: names of the consistent models, in space order
    consistent_models: Tuple[str, ...]
    #: weakest consistent class representatives (dominance order)
    weakest: Tuple[str, ...]
    #: strongest consistent class representatives (dominance order)
    strongest: Tuple[str, ...]
    #: one witness per excluded model, in space order
    witnesses: Tuple[ExclusionWitness, ...]
    #: when nothing is consistent: an irreducible conflicting subset of the
    #: observation test names (dropping any one readmits some model)
    conflict_core: Tuple[str, ...] = ()
    #: when several models survive: tests that best split them
    suggestions: Tuple[TestSuggestion, ...] = ()
    #: engine counters for this synthesis run
    stats: Optional[EngineStats] = None

    # ------------------------------------------------------------------
    @property
    def consistent(self) -> bool:
        return bool(self.consistent_models)

    @property
    def unique_model(self) -> Optional[str]:
        """The single consistent model, when the answer is unambiguous."""
        if len(self.consistent_models) == 1:
            return self.consistent_models[0]
        return None

    def describe(self) -> str:
        lines = [
            f"synthesis over {self.models_considered} models "
            f"({self.space!r} space, {self.backend} backend), "
            f"{len(self.observations)} observations"
        ]
        if not self.consistent:
            lines.append("no model is consistent with the observations")
            if self.conflict_core:
                lines.append(
                    "minimal conflict core: " + ", ".join(self.conflict_core)
                )
            shown = self.witnesses[:5]
            for witness in shown:
                lines.append("  " + witness.describe())
            if len(self.witnesses) > len(shown):
                lines.append(f"  ... and {len(self.witnesses) - len(shown)} more")
            return "\n".join(lines)
        if self.unique_model is not None:
            lines.append(f"unique consistent model: {self.unique_model}")
        else:
            lines.append(
                f"{len(self.consistent_models)} consistent models: "
                + ", ".join(self.consistent_models)
            )
        lines.append(f"weakest: {', '.join(self.weakest)}")
        lines.append(f"strongest: {', '.join(self.strongest)}")
        if self.suggestions:
            lines.append("suggested distinguishing tests:")
            for suggestion in self.suggestions:
                lines.append("  " + suggestion.describe())
        elif self.unique_model is None:
            lines.append(
                "no suite test distinguishes the survivors "
                "(they are equivalent over the comparison suite)"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        from repro.api.serialize import synthesis_result_to_json

        return synthesis_result_to_json(self)

    @staticmethod
    def from_json(document: Dict[str, object]) -> "SynthesisResult":
        from repro.api.serialize import synthesis_result_from_json

        return synthesis_result_from_json(document)


class SynthesisEngine:
    """Answers synthesis queries over one model space and one warm engine.

    Args:
        models: the parametric space searched (e.g. the 90-model space).
        comparison_tests: the suite defining the dominance order among the
            consistent models and the pool distinguishing-test suggestions
            are drawn from (typically the template suite plus L1..L9).
        engine: a shared :class:`~repro.engine.engine.CheckEngine` (or a
            backend spec); sharing the session's engine keeps every per-test
            context warm across requests.
        preferred_tests: tests preferred among equal-gain suggestions (the
            paper's L1..L9).
        space: canonical space key recorded in the results.
    """

    def __init__(
        self,
        models: Sequence[MemoryModel],
        comparison_tests: Sequence[LitmusTest],
        engine: Optional[object] = None,
        preferred_tests: Sequence[LitmusTest] = (),
        space: str = "",
    ) -> None:
        self.models = list(models)
        self.comparison_tests = list(comparison_tests)
        self.engine = CheckEngine.ensure(engine)
        self.preferred_names = {test.name for test in preferred_tests}
        self.preferred_tests = list(preferred_tests)
        self.space = space

    # ------------------------------------------------------------------
    def resolve_backend(self, backend: str) -> str:
        """Resolve ``auto`` to a concrete strategy for this engine."""
        if backend not in SYNTH_BACKENDS:
            raise ValueError(
                f"unknown synthesis backend {backend!r} "
                f"(expected one of {', '.join(SYNTH_BACKENDS)})"
            )
        if backend != "auto":
            return backend
        return "sat" if self.engine.strategy.name == "sat" else "enum"

    def synthesize(
        self,
        observations: Sequence[ResolvedObservation],
        backend: str = "auto",
        suggest_tests: int = 3,
    ) -> SynthesisResult:
        """Run one synthesis query; see the module docstring for the parts."""
        backend = self.resolve_backend(backend)
        stats = self.engine.stats
        before = stats.snapshot()
        stats.synth_runs += 1

        columns = [self._column(test, backend) for test, _ in observations]
        observed = [bool(verdict) for _, verdict in observations]
        labels = tuple((test.name, obs) for (test, _), obs in zip(observations, observed))

        names = [model.name for model in self.models]
        consistent_indices = [
            m
            for m in range(len(names))
            if all(column[m] == want for column, want in zip(columns, observed))
        ]
        consistent_names = tuple(names[m] for m in consistent_indices)

        witnesses = []
        consistent_set = set(consistent_indices)
        for m, name in enumerate(names):
            if m in consistent_set:
                continue
            for (test, _), column, want in zip(observations, columns, observed):
                if column[m] != want:
                    witnesses.append(
                        ExclusionWitness(
                            model=name,
                            test=test.name,
                            observed=want,
                            predicted=column[m],
                        )
                    )
                    break

        conflict_core: Tuple[str, ...] = ()
        if not consistent_indices and observations:
            conflict_core = self._conflict_core(observations, columns, observed)

        weakest: Tuple[str, ...] = ()
        strongest: Tuple[str, ...] = ()
        suggestions: Tuple[TestSuggestion, ...] = ()
        if len(consistent_indices) == 1:
            weakest = strongest = consistent_names
        elif len(consistent_indices) > 1:
            survivors = [self.models[m] for m in consistent_indices]
            exploration = explore_models(
                survivors,
                self.comparison_tests,
                checker=self.engine,
                preferred_tests=self.preferred_tests,
            )
            weakest = tuple(sorted(exploration.weakest_models()))
            strongest = tuple(sorted(exploration.strongest_models()))
            if suggest_tests > 0:
                suggestions = self._suggest(exploration, consistent_names, suggest_tests)

        return SynthesisResult(
            space=self.space,
            backend=backend,
            observations=labels,
            models_considered=len(names),
            consistent_models=consistent_names,
            weakest=weakest,
            strongest=strongest,
            witnesses=tuple(witnesses),
            conflict_core=conflict_core,
            suggestions=suggestions,
            stats=stats.since(before),
        )

    # ------------------------------------------------------------------
    # verdict columns
    # ------------------------------------------------------------------
    def _column(self, test: LitmusTest, backend: str) -> List[bool]:
        """One observation's predicted verdicts over the whole space."""
        if faults._FAULTS:
            faults.fire("synth.solve", test=test.name, backend=backend)
        if backend == "enum":
            return self.engine.check_column(test, self.models, retain=True)
        return self._sat_column(test)

    def _sat_column(self, test: LitmusTest) -> List[bool]:
        """The SAT strategy: selector assumptions over the CNF skeleton.

        The per-model assumption sets are derived from the same IR-memoized
        po-pair masks the explicit kernel consumes, and deduplicated by
        mask value before solving: one incremental ``solve`` answers every
        model that forces the same program-order edges on this test
        (counted by ``synth_group_hits``), with learned clauses persisting
        across masks and across observations.
        """
        engine = self.engine
        stats = engine.stats
        compiled_models = engine.compiled_all(self.models)
        context = engine.context(test)
        stats.checks_performed += len(self.models)
        if context.execution is None:
            return [False] * len(self.models)
        first_visit = not context.candidate_space_built
        skeleton = context.skeleton()
        if first_visit:
            stats.candidate_spaces_built += 1
        if skeleton.trivially_unsat:
            return [False] * len(self.models)
        masks = context.po_masks_column(compiled_models, stats)
        solver = context.solver()
        verdict_of_mask: Dict[int, bool] = {}
        verdicts = []
        for mask in masks:
            verdict = verdict_of_mask.get(mask)
            if verdict is None:
                stats.clauses_reused += solver.num_learned_clauses()
                stats.solver_calls += 1
                stats.synth_solver_calls += 1
                verdict = solver.solve(
                    skeleton.po_assumptions_from_mask(mask)
                ).satisfiable
                verdict_of_mask[mask] = verdict
            else:
                stats.synth_group_hits += 1
            verdicts.append(verdict)
        return verdicts

    # ------------------------------------------------------------------
    # explanations
    # ------------------------------------------------------------------
    def _conflict_core(
        self,
        observations: Sequence[ResolvedObservation],
        columns: Sequence[List[bool]],
        observed: Sequence[bool],
    ) -> Tuple[str, ...]:
        """An irreducible observation subset that excludes every model.

        Greedy deletion over the per-observation satisfier sets: walk the
        observations in order and drop each whose removal still leaves the
        intersection empty.  The survivors form a minimal (irreducible)
        core — removing any one of them readmits some model.
        """
        model_indices = frozenset(range(len(self.models)))
        satisfiers = [
            frozenset(
                m for m in model_indices if column[m] == want
            )
            for column, want in zip(columns, observed)
        ]
        keep = list(range(len(observations)))
        for candidate in list(keep):
            trial = [index for index in keep if index != candidate]
            remaining = model_indices
            for index in trial:
                remaining = remaining & satisfiers[index]
                if not remaining:
                    break
            if not remaining:
                keep = trial
        return tuple(observations[index][0].name for index in keep)

    def _suggest(
        self,
        exploration: ExplorationResult,
        consistent_names: Sequence[str],
        max_tests: int,
    ) -> Tuple[TestSuggestion, ...]:
        """Greedy set cover over the survivors' non-equivalent pairs.

        The same algorithm as
        :func:`repro.comparison.minimal_tests.find_minimal_distinguishing_set`,
        run directly on the exploration's verdict vectors (already computed
        for the dominance order) instead of re-checking anything.  Ties in
        gain prefer the paper's named tests, then suite order.
        """
        vectors = exploration.vectors
        pairs = [
            (first, second)
            for i, first in enumerate(consistent_names)
            for second in consistent_names[i + 1 :]
            if vectors[first] != vectors[second]
        ]
        per_test: List[set] = []
        for t, _test in enumerate(exploration.tests):
            per_test.append(
                {
                    pair
                    for pair in pairs
                    if vectors[pair[0]][t] != vectors[pair[1]][t]
                }
            )
        uncovered = set(pairs)
        suggestions: List[TestSuggestion] = []
        while uncovered and len(suggestions) < max_tests:
            best_index = -1
            best_key = (0, False)
            for t, test in enumerate(exploration.tests):
                gain = len(per_test[t] & uncovered)
                if gain == 0:
                    continue
                key = (gain, test.name in self.preferred_names)
                if key > best_key:
                    best_key = key
                    best_index = t
            if best_index < 0:
                break
            gain_pairs = per_test[best_index] & uncovered
            uncovered -= gain_pairs
            test = exploration.tests[best_index]
            column = [vectors[name][best_index] for name in consistent_names]
            suggestions.append(
                TestSuggestion(
                    test=test.name,
                    separates_pairs=len(gain_pairs),
                    allowed_models=sum(column),
                    forbidden_models=len(column) - sum(column),
                )
            )
        return tuple(suggestions)
