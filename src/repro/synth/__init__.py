"""Model synthesis: invert the checker.

The checking stack answers "model + litmus test -> verdict"; this package
answers the inverse query — given a vector of *observed* verdicts (e.g.
from running litmus tests on real or simulated hardware), which models of a
parametric space are consistent with them, and which of those are the
weakest and strongest under the dominance order of
:mod:`repro.comparison.exploration`?  "Which memory model is this
hardware?" becomes one :class:`SynthesisEngine` call, or one
``repro synthesize`` invocation, or one ``synthesize`` request over
``repro serve``.

Two cross-validating strategies compute the per-observation verdict
columns — explicit enumeration through
:meth:`~repro.engine.engine.CheckEngine.check_column` and incremental SAT
over the per-test CNF skeletons — and share every downstream step, so
their results are bit-identical by construction.
"""

from repro.synth.observations import (
    Observation,
    ObservationError,
    ObservationSet,
    VerdictDocument,
    observations_from_document,
    verdict_document_from_exploration,
)
from repro.synth.engine import (
    ExclusionWitness,
    SynthesisEngine,
    SynthesisResult,
    TestSuggestion,
)

__all__ = [
    "Observation",
    "ObservationError",
    "ObservationSet",
    "VerdictDocument",
    "observations_from_document",
    "verdict_document_from_exploration",
    "ExclusionWitness",
    "SynthesisEngine",
    "SynthesisResult",
    "TestSuggestion",
]
