"""Observed verdicts: the input side of model synthesis.

An :class:`Observation` pairs a litmus-test *spec* — anything
:meth:`repro.api.registry.TestRegistry.resolve` accepts: a registered name,
a ``.litmus`` path (where paths are allowed), inline litmus text, an inline
``repro/litmus_test`` document, or a live
:class:`~repro.core.litmus.LitmusTest` — with the verdict observed for it
(``allowed=True`` means the candidate outcome was seen).  An
:class:`ObservationSet` is an ordered collection of observations with an
exact JSON round trip under the ``repro/observations`` schema::

    {"schema": "repro/observations", "schema_version": N,
     "observations": [{"test": "L1", "allowed": true}, ...]}

Synthesis can also be driven from a prior exploration without re-checking
anything: ``repro explore --emit-verdicts PATH`` writes a
:class:`VerdictDocument` (schema ``repro/verdicts``) — the models×tests
verdict matrix with the full test programs embedded, so the document is
self-contained — and :func:`observations_from_document` turns one row of
it (or of a full ``repro/exploration_result`` document, which carries the
same ``tests``/``vectors`` fields) back into an :class:`ObservationSet`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.litmus import LitmusTest

#: What an observation's ``test`` field may hold (resolved by the session's
#: test registry, so path specs honor the registry's ``allow_paths``).
TestSpec = Union[LitmusTest, str, Mapping]


class ObservationError(ValueError):
    """Raised when an observation document is malformed."""


@dataclass(frozen=True)
class Observation:
    """One observed verdict: ``test`` was seen (not) to allow its outcome."""

    test: TestSpec
    allowed: bool

    def __post_init__(self) -> None:
        if not isinstance(self.allowed, bool):
            raise ObservationError(
                f"observation verdict must be a boolean, got {self.allowed!r}"
            )

    def label(self) -> str:
        """A short human-readable name for the observed test."""
        if isinstance(self.test, LitmusTest):
            return self.test.name
        if isinstance(self.test, Mapping):
            return str(self.test.get("name", "<inline test>"))
        first_line = str(self.test).splitlines()[0] if self.test else ""
        return first_line if "\n" not in str(self.test) else "<inline test>"


def _observation_from_json(data: Any) -> Observation:
    if not isinstance(data, Mapping):
        raise ObservationError(
            f"each observation must be a JSON object, got {type(data).__name__}"
        )
    unknown = [key for key in data if key not in ("test", "allowed")]
    if unknown:
        raise ObservationError(f"unknown observation fields: {unknown}")
    if "test" not in data or "allowed" not in data:
        raise ObservationError(
            "each observation needs a 'test' spec and an 'allowed' boolean"
        )
    return Observation(test=data["test"], allowed=data["allowed"])


def _observation_to_json(observation: Observation) -> Dict[str, Any]:
    test: Any = observation.test
    if isinstance(test, LitmusTest):
        from repro.api.serialize import test_to_json

        test = test_to_json(test)
    elif isinstance(test, Mapping):
        test = dict(test)
    return {"test": test, "allowed": observation.allowed}


@dataclass(frozen=True)
class ObservationSet:
    """An ordered set of observed verdicts (the synthesis input)."""

    observations: Tuple[Observation, ...]

    def __post_init__(self) -> None:
        coerced = tuple(
            obs if isinstance(obs, Observation) else _observation_from_json(obs)
            for obs in self.observations
        )
        object.__setattr__(self, "observations", coerced)

    def __len__(self) -> int:
        return len(self.observations)

    def __iter__(self):
        return iter(self.observations)

    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        from repro.api.serialize import envelope

        document = envelope("observations")
        document["observations"] = [
            _observation_to_json(obs) for obs in self.observations
        ]
        return document

    @staticmethod
    def from_json(document: Mapping[str, Any]) -> "ObservationSet":
        from repro.api.serialize import check_envelope

        check_envelope(dict(document), "observations")
        entries = document.get("observations")
        if not isinstance(entries, list):
            raise ObservationError("'observations' must be a JSON array")
        return ObservationSet(
            tuple(_observation_from_json(entry) for entry in entries)
        )


@dataclass(frozen=True)
class VerdictDocument:
    """A models×tests verdict matrix, self-contained and JSON-exact.

    ``tests`` embeds the full litmus programs (not just names: generated
    template-suite tests are not registry-resolvable by name), so any row
    converts to an :class:`ObservationSet` without access to the session
    that produced it.
    """

    space: str
    tests: Tuple[LitmusTest, ...]
    vectors: Dict[str, Tuple[bool, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "tests", tuple(self.tests))
        object.__setattr__(
            self,
            "vectors",
            {name: tuple(vector) for name, vector in self.vectors.items()},
        )
        for name, vector in self.vectors.items():
            if len(vector) != len(self.tests):
                raise ObservationError(
                    f"verdict vector for {name!r} has {len(vector)} entries "
                    f"for {len(self.tests)} tests"
                )

    def model_names(self) -> List[str]:
        return list(self.vectors)

    def row(self, model_name: str) -> "ObservationSet":
        """The named model's verdicts as an observation set."""
        if model_name not in self.vectors:
            raise ObservationError(
                f"model {model_name!r} is not in the verdict document "
                f"(rows: {', '.join(self.vectors) or 'none'})"
            )
        vector = self.vectors[model_name]
        return ObservationSet(
            tuple(
                Observation(test=test, allowed=bool(verdict))
                for test, verdict in zip(self.tests, vector)
            )
        )

    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        from repro.api.serialize import envelope, test_to_json

        document = envelope("verdicts")
        document.update(
            {
                "space": self.space,
                "tests": [test_to_json(test) for test in self.tests],
                "vectors": {
                    name: list(vector) for name, vector in self.vectors.items()
                },
            }
        )
        return document

    @staticmethod
    def from_json(document: Mapping[str, Any]) -> "VerdictDocument":
        from repro.api.serialize import check_envelope, test_from_json

        check_envelope(dict(document), "verdicts")
        return VerdictDocument(
            space=document.get("space", ""),
            tests=tuple(test_from_json(test) for test in document["tests"]),
            vectors={
                name: tuple(vector)
                for name, vector in document.get("vectors", {}).items()
            },
        )


def verdict_document_from_exploration(result, space: str) -> VerdictDocument:
    """Reduce an :class:`~repro.comparison.exploration.ExplorationResult`
    to its observation-compatible verdict matrix."""
    return VerdictDocument(
        space=space,
        tests=tuple(result.tests),
        vectors={name: tuple(vector) for name, vector in result.vectors.items()},
    )


def observations_from_document(
    document: Mapping[str, Any], as_model: Optional[str] = None
) -> ObservationSet:
    """Build an observation set from any observation-bearing document.

    Accepts ``repro/observations`` directly, and ``repro/verdicts`` or
    ``repro/exploration_result`` documents with ``as_model`` naming the row
    to replay (the ``--from-report`` CLI mode).
    """
    from repro.api.serialize import check_envelope, test_from_json

    kind = check_envelope(dict(document))
    if kind == "observations":
        if as_model is not None:
            raise ObservationError(
                "as_model only applies to verdict-matrix documents "
                "(repro/verdicts or repro/exploration_result)"
            )
        return ObservationSet.from_json(document)
    if kind == "verdicts":
        matrix = VerdictDocument.from_json(document)
    elif kind == "exploration_result":
        matrix = VerdictDocument(
            space="",
            tests=tuple(test_from_json(test) for test in document["tests"]),
            vectors={
                name: tuple(vector)
                for name, vector in document.get("vectors", {}).items()
            },
        )
    else:
        raise ObservationError(
            f"cannot read observations from a {kind!r} document (expected "
            "observations, verdicts, or exploration_result)"
        )
    if as_model is None:
        raise ObservationError(
            "a verdict-matrix document holds one row per model; pass "
            f"as_model (one of: {', '.join(matrix.model_names())})"
        )
    return matrix.row(as_model)
