"""Generic utilities used across the library.

The algorithms here (directed-graph reachability, cycle detection, transitive
closure/reduction, topological sorting, union-find) are deliberately
self-contained so that the memory-model machinery has no third-party runtime
dependencies.
"""

from repro.util.digraph import Digraph
from repro.util.unionfind import UnionFind

__all__ = ["Digraph", "UnionFind"]
