"""Small naming helpers shared by generation and reporting code."""

from __future__ import annotations

from typing import Iterable, List

#: Location names in the order the paper uses them (X, Y, Z, W, then V1, V2, ...).
CANONICAL_LOCATIONS = ("X", "Y", "Z", "W")


def location_name(index: int) -> str:
    """Return the canonical name of the ``index``-th distinct memory location."""
    if index < 0:
        raise ValueError("location index must be non-negative")
    if index < len(CANONICAL_LOCATIONS):
        return CANONICAL_LOCATIONS[index]
    return f"V{index - len(CANONICAL_LOCATIONS) + 1}"


def register_name(thread_index: int, serial: int) -> str:
    """Return a register name unique across a whole litmus test.

    The paper numbers registers globally (r1..r4 across both threads); we do
    the same by deriving the name from the thread and a per-thread serial.
    """
    return f"r{thread_index * 10 + serial + 1}"


def temp_name(thread_index: int, serial: int) -> str:
    """Return a temporary (dependency-carrying) register name."""
    return f"t{thread_index * 10 + serial + 1}"


def fresh_names(prefix: str, count: int) -> List[str]:
    """Return ``count`` distinct names ``prefix1 .. prefixN``."""
    return [f"{prefix}{i + 1}" for i in range(count)]


def join_nonempty(parts: Iterable[str], separator: str = " ") -> str:
    """Join the non-empty strings in ``parts`` with ``separator``."""
    return separator.join(part for part in parts if part)
