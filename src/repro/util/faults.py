"""Deterministic fault injection for robustness testing.

Production code threads *fault points* — named no-ops like
``faults.fire("pipeline.shard", shard=3, attempt=0)`` — through its
degradation paths.  Normally a fault point costs one truthiness check.  A
test (or the ``REPRO_FAULTS`` environment variable, for subprocess and CI
smoke runs) arms faults against points, and the next matching ``fire``
performs the configured action, so every failure mode the serving and
pipeline layers defend against can be triggered deterministically:

========= =============================================================
action    effect at the fault point
========= =============================================================
raise     raise :class:`InjectedFault` (a ``RuntimeError``: deliberately
          *outside* the ``ValueError`` family request handling expects)
delay     ``time.sleep(arg)`` — simulates a slow or hung computation
kill      ``SIGKILL`` the current process — simulates a crashed worker
truncate  truncate a just-written file to ``arg`` bytes (applied by
          write sites through :func:`truncate_file`) — simulates a torn
          checkpoint
========= =============================================================

Spec grammar (entries comma-separated)::

    point[key=value,...]=action[:arg][*count]

    serve.request=delay:2.5            every serve request sleeps 2.5s
    session.run=raise*1                first session dispatch raises
    pipeline.shard[shard=1,attempt=0]=kill
                                       first attempt at shard 1 dies
    pipeline.checkpoint[shard=2]=truncate:40
                                       shard 2's checkpoint is cut to 40B
    synth.solve=raise*1                first synthesis verdict column dies
    session.run[op=synthesize]=raise   every synthesize dispatch raises
    cache.get=raise*1                  first verdict-cache lookup dies
    cache.persist=truncate:40          every persistent-cache flush is
                                       torn to 40 bytes (a crashed write)

The optional ``[key=value,...]`` filter matches against the keyword
context a fire site passes (compared as strings); ``*count`` arms the
fault for that many firings (default: unlimited).  Counts are tracked
per process — forked workers inherit the armed table and count their own
firings.

The registry is process-global.  ``REPRO_FAULTS`` is read once at import
(and again via :func:`install_from_env`), which is how CLI subprocesses
and CI jobs inject faults without code changes.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Environment variable holding a fault spec, read at import time.
ENV_VAR = "REPRO_FAULTS"

#: The supported fault actions.
ACTIONS = ("raise", "delay", "kill", "truncate")


class FaultSpecError(ValueError):
    """Raised for malformed fault specification strings."""


class InjectedFault(RuntimeError):
    """The exception a ``raise`` fault throws at its fault point.

    A ``RuntimeError`` on purpose: the request-handling layers catch the
    ``ValueError`` family for *expected* bad-input problems, so an
    injected fault exercises their unexpected-exception catch-alls.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected fault at {point!r}")
        self.point = point


@dataclass
class Fault:
    """One armed fault: where it applies, what it does, how often."""

    point: str
    action: str
    arg: Optional[float] = None
    #: remaining firings; None = unlimited
    count: Optional[int] = None
    #: context filter: every key must match the fire site's context
    where: Dict[str, str] = field(default_factory=dict)

    def matches(self, context: Dict[str, object]) -> bool:
        return all(str(context.get(key)) == value for key, value in self.where.items())


_LOCK = threading.Lock()
_FAULTS: List[Fault] = []


def _parse_entry(entry: str) -> Fault:
    if "=" not in entry:
        raise FaultSpecError(f"fault entry {entry!r} is missing '=action'")
    point_part, action_part = entry.rsplit("=", 1)
    point_part = point_part.strip()
    where: Dict[str, str] = {}
    if "[" in point_part:
        if not point_part.endswith("]"):
            raise FaultSpecError(f"unterminated filter in fault entry {entry!r}")
        point, filter_text = point_part[:-1].split("[", 1)
        for clause in filter_text.split(","):
            if "=" not in clause:
                raise FaultSpecError(f"filter clause {clause!r} is not key=value")
            key, value = clause.split("=", 1)
            where[key.strip()] = value.strip()
    else:
        point = point_part
    if not point:
        raise FaultSpecError(f"fault entry {entry!r} names no fault point")

    count: Optional[int] = None
    if "*" in action_part:
        action_part, count_text = action_part.rsplit("*", 1)
        try:
            count = int(count_text)
        except ValueError:
            raise FaultSpecError(f"malformed count {count_text!r} in fault entry {entry!r}")
        if count < 1:
            raise FaultSpecError(f"count must be >= 1 in fault entry {entry!r}")
    arg: Optional[float] = None
    if ":" in action_part:
        action, arg_text = action_part.split(":", 1)
        try:
            arg = float(arg_text)
        except ValueError:
            raise FaultSpecError(f"malformed argument {arg_text!r} in fault entry {entry!r}")
    else:
        action = action_part
    action = action.strip()
    if action not in ACTIONS:
        raise FaultSpecError(
            f"unknown fault action {action!r} (expected one of {', '.join(ACTIONS)})"
        )
    if action in ("delay", "truncate") and arg is None:
        raise FaultSpecError(f"fault action {action!r} requires an argument (e.g. {action}:2)")
    return Fault(point=point.strip(), action=action, arg=arg, count=count, where=where)


def parse_faults(text: str) -> List[Fault]:
    """Parse a fault spec string into a list of :class:`Fault` objects."""
    entries = [entry.strip() for entry in text.split(",")]
    # Filters contain commas too; re-join entries whose '[' is unclosed.
    merged: List[str] = []
    depth = 0
    for entry in entries:
        if depth > 0:
            merged[-1] += "," + entry
        else:
            merged.append(entry)
        depth += entry.count("[") - entry.count("]")
    return [_parse_entry(entry) for entry in merged if entry]


def install(spec: object) -> None:
    """Arm faults (replacing any armed before) from a spec string or list."""
    faults = parse_faults(spec) if isinstance(spec, str) else list(spec)
    with _LOCK:
        _FAULTS[:] = faults


def clear() -> None:
    """Disarm every fault."""
    with _LOCK:
        _FAULTS.clear()


def install_from_env() -> None:
    """(Re-)arm faults from the ``REPRO_FAULTS`` environment variable."""
    spec = os.environ.get(ENV_VAR, "")
    if spec:
        install(spec)


def active() -> bool:
    """Whether any fault is armed (the cheap fast-path check)."""
    return bool(_FAULTS)


def _take(
    point: str, context: Dict[str, object], actions: Sequence[str]
) -> Optional[Fault]:
    """Consume and return the first armed fault matching the fire site."""
    if not _FAULTS:
        return None
    with _LOCK:
        for fault in _FAULTS:
            if fault.point != point or fault.action not in actions:
                continue
            if not fault.matches(context):
                continue
            if fault.count is not None:
                if fault.count <= 0:
                    continue
                fault.count -= 1
            return fault
    return None


def fire(point: str, **context: object) -> None:
    """A fault point: perform the armed action for ``point``, if any.

    ``truncate`` faults are ignored here — they only apply where a write
    site calls :func:`truncate_file`.
    """
    fault = _take(point, context, ("raise", "delay", "kill"))
    if fault is None:
        return
    if fault.action == "raise":
        raise InjectedFault(point)
    if fault.action == "delay":
        time.sleep(fault.arg or 0.0)
    elif fault.action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)


def truncate_file(point: str, path: str, **context: object) -> bool:
    """Apply an armed ``truncate`` fault to a just-written file.

    Returns whether the file was truncated.  Write sites call this after
    committing a file so tests can simulate torn writes deterministically.
    """
    fault = _take(point, context, ("truncate",))
    if fault is None:
        return False
    with open(path, "r+b") as handle:
        handle.truncate(int(fault.arg or 0))
    return True


#: Snapshot/restore helpers so tests can arm faults without leaking state.
def snapshot() -> Tuple[Fault, ...]:
    with _LOCK:
        return tuple(_FAULTS)


def restore(saved: Sequence[Fault]) -> None:
    with _LOCK:
        _FAULTS[:] = list(saved)


install_from_env()
