"""A small directed-graph toolkit.

The happens-before machinery only needs a handful of graph operations on very
small graphs (litmus tests have at most ~12 events): cycle detection,
reachability, transitive closure and reduction, and topological sorting.  The
model-space exploration additionally uses transitive reduction to draw the
Hasse diagram of Figure 4.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

Node = Hashable
Edge = Tuple[Node, Node]


class CycleError(ValueError):
    """Raised when an operation requires an acyclic graph but found a cycle."""


class Digraph:
    """A directed graph with hashable nodes.

    Parallel edges are collapsed; self-loops are allowed (and count as
    cycles).  Node insertion order is preserved, which keeps all derived
    output (topological sorts, reports, DOT files) deterministic.
    """

    def __init__(self, nodes: Iterable[Node] = (), edges: Iterable[Edge] = ()) -> None:
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}
        self._order: List[Node] = []
        for node in nodes:
            self.add_node(node)
        for src, dst in edges:
            self.add_edge(src, dst)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add ``node`` (no-op if already present)."""
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()
            self._order.append(node)

    def add_edge(self, src: Node, dst: Node) -> None:
        """Add the edge ``src -> dst`` (adding the endpoints if needed)."""
        self.add_node(src)
        self.add_node(dst)
        self._succ[src].add(dst)
        self._pred[dst].add(src)

    def copy(self) -> "Digraph":
        """Return an independent copy of this graph."""
        return Digraph(self.nodes(), self.edges())

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def nodes(self) -> List[Node]:
        """Return nodes in insertion order."""
        return list(self._order)

    def edges(self) -> List[Edge]:
        """Return edges, ordered by source insertion order."""
        result: List[Edge] = []
        for src in self._order:
            for dst in sorted(self._succ[src], key=self._sort_key):
                result.append((src, dst))
        return result

    def _sort_key(self, node: Node):
        try:
            return (0, self._order.index(node))
        except ValueError:  # pragma: no cover - node always present
            return (1, repr(node))

    def has_node(self, node: Node) -> bool:
        return node in self._succ

    def has_edge(self, src: Node, dst: Node) -> bool:
        return src in self._succ and dst in self._succ[src]

    def successors(self, node: Node) -> Set[Node]:
        return set(self._succ.get(node, set()))

    def predecessors(self, node: Node) -> Set[Node]:
        return set(self._pred.get(node, set()))

    def num_nodes(self) -> int:
        return len(self._order)

    def num_edges(self) -> int:
        return sum(len(s) for s in self._succ.values())

    def __contains__(self, node: Node) -> bool:
        return self.has_node(node)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Digraph(nodes={self.num_nodes()}, edges={self.num_edges()})"

    # ------------------------------------------------------------------
    # algorithms
    # ------------------------------------------------------------------
    def has_cycle(self) -> bool:
        """Return True iff the graph contains a directed cycle.

        Cycle *existence* is decided with an unordered Kahn peeling — much
        cheaper than :meth:`find_cycle`, whose deterministic DFS re-sorts
        every successor set.
        """
        in_degree: Dict[Node, int] = {node: len(self._pred[node]) for node in self._order}
        ready: List[Node] = [node for node, degree in in_degree.items() if degree == 0]
        visited = 0
        while ready:
            node = ready.pop()
            visited += 1
            for succ in self._succ[node]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        return visited != len(self._order)

    def is_acyclic(self) -> bool:
        """Return True iff the graph contains no directed cycle."""
        return not self.has_cycle()

    def find_cycle(self) -> Optional[List[Node]]:
        """Return one directed cycle as a node list, or None if acyclic.

        The returned list ``[n0, n1, ..., nk]`` satisfies ``n0 == nk`` and
        every consecutive pair is an edge.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        color: Dict[Node, int] = {node: WHITE for node in self._order}
        parent: Dict[Node, Optional[Node]] = {}

        for root in self._order:
            if color[root] != WHITE:
                continue
            stack: List[Tuple[Node, Iterator[Node]]] = [(root, iter(sorted(self._succ[root], key=self._sort_key)))]
            color[root] = GREY
            parent[root] = None
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if color[child] == WHITE:
                        color[child] = GREY
                        parent[child] = node
                        stack.append((child, iter(sorted(self._succ[child], key=self._sort_key))))
                        advanced = True
                        break
                    if color[child] == GREY:
                        # Found a cycle: walk back from node to child.
                        cycle = [child, node]
                        walker = node
                        while walker != child:
                            walker = parent[walker]
                            cycle.append(walker)
                        cycle.reverse()
                        return cycle
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None

    def topological_sort(self) -> List[Node]:
        """Return a topological order of the nodes.

        Raises :class:`CycleError` if the graph has a cycle.  Ties are broken
        by node insertion order so the result is deterministic.
        """
        in_degree: Dict[Node, int] = {node: len(self._pred[node]) for node in self._order}
        ready = [node for node in self._order if in_degree[node] == 0]
        result: List[Node] = []
        while ready:
            node = ready.pop(0)
            result.append(node)
            newly_ready = []
            for succ in sorted(self._succ[node], key=self._sort_key):
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    newly_ready.append(succ)
            # Keep insertion-order determinism.
            ready = sorted(ready + newly_ready, key=self._order.index)
        if len(result) != len(self._order):
            raise CycleError("graph has a cycle; no topological order exists")
        return result

    def reachable_from(self, node: Node) -> Set[Node]:
        """Return the set of nodes reachable from ``node`` (excluding itself
        unless it lies on a cycle through itself)."""
        seen: Set[Node] = set()
        frontier = list(self._succ.get(node, set()))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._succ[current] - seen)
        return seen

    def transitive_closure(self) -> "Digraph":
        """Return a new graph with an edge wherever a path exists."""
        closure = Digraph(self.nodes())
        for node in self._order:
            for target in self.reachable_from(node):
                closure.add_edge(node, target)
        return closure

    def transitive_reduction(self) -> "Digraph":
        """Return the transitive reduction (requires an acyclic graph).

        The transitive reduction keeps an edge ``u -> v`` only if there is no
        other path from ``u`` to ``v``.  This is what turns the full
        stronger-than relation into the Hasse diagram of Figure 4.
        """
        if self.has_cycle():
            raise CycleError("transitive reduction requires an acyclic graph")
        reduction = Digraph(self.nodes())
        for src in self._order:
            direct = set(self._succ[src])
            # An edge src->dst is redundant if some other successor reaches dst.
            redundant: Set[Node] = set()
            for mid in direct:
                if mid in redundant:
                    continue
                reach_mid = self.reachable_from(mid)
                redundant |= direct & reach_mid
            for dst in direct - redundant:
                reduction.add_edge(src, dst)
        return reduction

    def subgraph(self, nodes: Iterable[Node]) -> "Digraph":
        """Return the induced subgraph on ``nodes``."""
        keep = set(nodes)
        sub = Digraph(node for node in self._order if node in keep)
        for src, dst in self.edges():
            if src in keep and dst in keep:
                sub.add_edge(src, dst)
        return sub
