"""Union-find (disjoint-set) data structure.

Used by the litmus-test template instantiator to solve the address-equality
constraints implied by a template's cycle structure (see
:mod:`repro.generation.templates`).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set


class UnionFind:
    """Disjoint sets over arbitrary hashable elements.

    Elements are added lazily: :meth:`find` and :meth:`union` create a
    singleton set for any element they have not seen before.
    """

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        for element in elements:
            self.add(element)

    def add(self, element: Hashable) -> None:
        """Register ``element`` as its own singleton set (no-op if present)."""
        if element not in self._parent:
            self._parent[element] = element
            self._rank[element] = 0

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative of ``element``'s set."""
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets containing ``a`` and ``b``; return the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return ra

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Return True iff ``a`` and ``b`` are currently in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> List[Set[Hashable]]:
        """Return the current partition as a list of sets (stable order)."""
        by_root: Dict[Hashable, Set[Hashable]] = {}
        for element in self._parent:
            by_root.setdefault(self.find(element), set()).add(element)
        return list(by_root.values())
