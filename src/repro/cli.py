"""Command-line interface: ``repro-compare``.

Subcommands:

* ``check TEST.litmus --model TSO [--backend sat]`` — is the test allowed?
* ``compare MODEL1 MODEL2 [--deps/--no-deps]`` — compare two models with the
  template suite and print the contrasting tests.
* ``explore [--deps/--no-deps] [--jobs N] [--dot FILE]`` — explore the
  parametric model space through the batched
  :class:`~repro.engine.engine.CheckEngine` and print the Figure 4 report
  (optionally writing a DOT file).
* ``catalog`` — list the built-in named models and their formulas.
* ``outcomes TEST.litmus --model TSO`` — enumerate the outcomes a model
  allows for the test's program.

Model names accept both catalog names (``SC``, ``TSO``, ``PSO``, ...) and
parametric names (``M4044``).  ``--backend`` selects the admissibility
strategy (explicit enumeration or incremental SAT) and ``--jobs`` fans the
exploration out over worker processes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.checker.explicit import ExplicitChecker
from repro.checker.outcomes import allowed_outcomes
from repro.checker.sat_checker import SatChecker
from repro.comparison.compare import ModelComparator
from repro.comparison.exploration import explore_models
from repro.comparison.report import exploration_report, hasse_dot
from repro.core.catalog import catalog_summary, named_models
from repro.core.model import MemoryModel
from repro.core.parametric import KNOWN_CORRESPONDENCES, model_space, parametric_model
from repro.engine import CheckEngine
from repro.generation.named_tests import L_TESTS
from repro.generation.suite import no_dependency_suite, standard_suite
from repro.io.parser import parse_litmus_file


def resolve_model(name: str) -> MemoryModel:
    """Resolve a model name: catalog name or parametric ``Mxxxx`` name."""
    catalog = named_models()
    if name in catalog:
        return catalog[name]
    if name.upper() in catalog:
        return catalog[name.upper()]
    if name.startswith("M") and name[1:].isdigit():
        return parametric_model(name)
    raise SystemExit(
        f"unknown model {name!r}; use one of {', '.join(catalog)} or a parametric name like M4044"
    )


def _make_checker(backend: str):
    """Build a witness-producing checker for single-test subcommands."""
    if backend == "sat":
        return SatChecker()
    if backend == "explicit":
        return ExplicitChecker()
    if backend == "enumeration":
        from repro.checker.reference import EnumerationChecker

        return EnumerationChecker()
    raise SystemExit(
        f"unknown backend {backend!r} (expected 'explicit', 'enumeration' or 'sat')"
    )


def _make_engine(args: argparse.Namespace) -> CheckEngine:
    """Build the batched engine for the comparison/exploration subcommands."""
    try:
        return CheckEngine(backend=args.backend, jobs=getattr(args, "jobs", 1))
    except ValueError as error:
        raise SystemExit(str(error))


def _cmd_check(args: argparse.Namespace) -> int:
    test = parse_litmus_file(args.test)
    model = resolve_model(args.model)
    checker = _make_checker(args.backend)
    result = checker.check(test, model)
    print(test.pretty())
    print(result.describe())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    first = resolve_model(args.first)
    second = resolve_model(args.second)
    suite = standard_suite() if args.deps else no_dependency_suite()
    comparator = ModelComparator(suite.tests() + list(L_TESTS), _make_engine(args))
    result = comparator.compare(first, second)
    print(result.describe())
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    models = model_space(include_data_dependencies=args.deps)
    suite = standard_suite() if args.deps else no_dependency_suite()
    result = explore_models(
        models, suite.tests(), checker=_make_engine(args), preferred_tests=L_TESTS
    )
    print(exploration_report(result, KNOWN_CORRESPONDENCES))
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(hasse_dot(result, KNOWN_CORRESPONDENCES))
        print(f"\nwrote {args.dot}")
    return 0


def _cmd_catalog(_args: argparse.Namespace) -> int:
    for line in catalog_summary():
        print(line)
    return 0


def _cmd_outcomes(args: argparse.Namespace) -> int:
    test = parse_litmus_file(args.test)
    model = resolve_model(args.model)
    print(test.pretty())
    print(f"\nOutcomes allowed under {model.name}:")
    for outcome in allowed_outcomes(test.program, model, checker=_make_engine(args)):
        rendered = "; ".join(f"{register} = {value}" for register, value in sorted(outcome.items()))
        print(f"  {rendered}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-compare",
        description="Compare memory consistency models with bounded litmus tests (DAC 2011 reproduction).",
    )
    parser.add_argument(
        "--backend",
        choices=("explicit", "enumeration", "sat"),
        default="explicit",
        help="admissibility backend",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    check = subparsers.add_parser("check", help="check one litmus test under one model")
    check.add_argument("test", help="path to a .litmus file")
    check.add_argument("--model", required=True, help="model name (SC, TSO, M4044, ...)")
    check.set_defaults(func=_cmd_check)

    compare = subparsers.add_parser("compare", help="compare two models")
    compare.add_argument("first")
    compare.add_argument("second")
    compare.add_argument("--deps", action=argparse.BooleanOptionalAction, default=True,
                         help="include data-dependency tests (default: yes)")
    compare.set_defaults(func=_cmd_compare)

    explore = subparsers.add_parser("explore", help="explore the parametric model space")
    explore.add_argument("--deps", action=argparse.BooleanOptionalAction, default=False,
                         help="use the 90-model space with dependencies (default: 36-model space)")
    explore.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="number of worker processes for the verdict matrix (default: 1)")
    explore.add_argument("--dot", help="write the Hasse diagram to this DOT file")
    explore.set_defaults(func=_cmd_explore)

    catalog = subparsers.add_parser("catalog", help="list the built-in models")
    catalog.set_defaults(func=_cmd_catalog)

    outcomes = subparsers.add_parser("outcomes", help="enumerate allowed outcomes of a program")
    outcomes.add_argument("test", help="path to a .litmus file")
    outcomes.add_argument("--model", required=True)
    outcomes.set_defaults(func=_cmd_outcomes)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-compare`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
