"""Command-line interface: ``repro-compare``.

Every subcommand is a thin shell around the public API
(:mod:`repro.api`): it builds one :class:`~repro.api.session.Session`,
dispatches a declarative request through it, and renders the result either
as text (the default) or, with ``--format json``, as the schema-versioned
JSON document of :mod:`repro.api.serialize` — so any output can be piped
into ``python -m repro.api.validate`` or replayed through ``repro serve``.

Subcommands:

* ``check TEST.litmus --model TSO [--backend sat]`` — is the test allowed?
* ``compare MODEL1 MODEL2 [--deps/--no-deps]`` — compare two models with the
  template suite and print the contrasting tests.
* ``explore [--deps/--no-deps] [--jobs N] [--dot FILE]`` — explore the
  parametric model space and print the Figure 4 report (optionally writing
  a DOT file).
* ``catalog`` — list the built-in named models and their formulas.
* ``models [--space deps]`` — list the catalog plus the parametric families
  with formulas, predicate vocabularies and descriptions.
* ``outcomes TEST.litmus --model TSO`` — enumerate the outcomes a model
  allows for the test's program.
* ``enumerate-verify [--bound large] [--jobs N] [--run-dir D --resume]`` —
  run the sharded exhaustive-enumeration pipeline and report whether the
  naive space induces the same model partition as the template suite.
* ``synthesize --space paper90 --observations FILE|-`` — invert the
  checker: find the parametric models consistent with observed verdicts,
  the weakest/strongest among them, exclusion witnesses, and suggested
  distinguishing tests (``--from-report`` replays a row of an exploration
  or ``explore --emit-verdicts`` document).
* ``serve [--port N]`` — answer a JSON-lines request stream over one warm
  session (stdin/stdout by default, a TCP socket with ``--port``).

Model names accept catalog names (``SC``, ``TSO``, ...), parametric names
(``M4044``), paths to ``.model`` files and anything registered in the
session's :class:`~repro.api.registry.ModelRegistry`; ``--model-file FILE``
(repeatable, any subcommand) registers the models of ``.model`` files up
front so later ``--model NAME`` arguments can refer to them.  ``--backend``
selects the admissibility strategy, ``--kernel`` the explicit backend's
checking kernel (``auto``/``native``/``python``/``bigint`` — see
:mod:`repro.native.backend`), and ``--jobs`` fans the exploration out over
worker processes.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from typing import Optional, Sequence

from repro.api.registry import UnknownModelError, UnknownTestError
from repro.io.model_file import ModelFileError
from repro.api.requests import CheckRequest, CompareRequest, ExploreRequest, OutcomesRequest
from repro.api.serialize import to_json
from repro.api.session import Session
from repro.comparison.report import exploration_report, hasse_dot
from repro.core.model import MemoryModel
from repro.core.parametric import KNOWN_CORRESPONDENCES


def resolve_model(name: str) -> MemoryModel:
    """Resolve a model name: catalog name or parametric ``Mxxxx`` name.

    .. deprecated:: use :meth:`repro.api.registry.ModelRegistry.resolve`,
       which this wrapper delegates to (converting unknown-model errors to
       ``SystemExit`` for historical CLI behaviour).
    """
    warnings.warn(
        "cli.resolve_model is deprecated; use repro.api.ModelRegistry.resolve",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api.registry import ModelRegistry

    try:
        return ModelRegistry().resolve(name)
    except UnknownModelError as error:
        raise SystemExit(str(error))


def _make_session(args: argparse.Namespace) -> Session:
    """Build the one session a CLI invocation runs through.

    Models named by ``--model-file`` are parsed and registered before any
    request runs, so every subcommand can refer to them by name.
    """
    try:
        session = Session(
            backend=args.backend,
            jobs=getattr(args, "jobs", 1),
            kernel=getattr(args, "kernel", None),
        )
    except ValueError as error:
        raise SystemExit(str(error))
    for path in getattr(args, "model_file", None) or ():
        try:
            session.models.register(session.models.load(path))
        except (OSError, ValueError) as error:
            raise SystemExit(f"--model-file {path}: {error}")
    return session


def _emit_json(document: object) -> None:
    print(json.dumps(document, indent=2))


def _run(session: Session, request) -> object:
    # OSError/ModelFileError cover path-shaped model specs resolving to
    # missing or malformed .model files mid-request.
    try:
        return session.run(request)
    except (UnknownModelError, UnknownTestError, ModelFileError, OSError) as error:
        raise SystemExit(str(error))


def _resolve_test(session: Session, spec: str):
    try:
        return session.tests.resolve(spec)
    except (UnknownTestError, OSError) as error:
        raise SystemExit(str(error))


def _cmd_check(args: argparse.Namespace) -> int:
    session = _make_session(args)
    test = _resolve_test(session, args.test)
    result = _run(session, CheckRequest(test=test, model=args.model, witness=True))
    if args.format == "json":
        _emit_json(to_json(result))
        return 0
    print(test.pretty())
    print(result.describe())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    session = _make_session(args)
    suite = "standard" if args.deps else "no_deps"
    result = _run(session, CompareRequest(first=args.first, second=args.second, suite=suite))
    if args.format == "json":
        _emit_json(to_json(result))
        return 0
    print(result.describe())
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    session = _make_session(args)
    space = "deps" if args.deps else "no_deps"
    result = _run(session, ExploreRequest(space=space))
    if args.format == "json":
        _emit_json(to_json(result))
    else:
        print(exploration_report(result, KNOWN_CORRESPONDENCES))
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(hasse_dot(result, KNOWN_CORRESPONDENCES))
        if args.format != "json":
            print(f"\nwrote {args.dot}")
    if args.emit_verdicts:
        from repro.synth.observations import verdict_document_from_exploration

        document = verdict_document_from_exploration(result, space=space).to_json()
        with open(args.emit_verdicts, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        if args.format != "json":
            print(f"wrote verdict matrix to {args.emit_verdicts}")
    return 0


def _load_observations(args: argparse.Namespace):
    """Build the observation tuple from --observations / --from-report."""
    from repro.synth.observations import ObservationError, observations_from_document

    if bool(args.observations) == bool(args.from_report):
        raise SystemExit(
            "synthesize needs exactly one of --observations FILE|- or --from-report FILE"
        )
    source = args.observations or args.from_report
    try:
        if source == "-":
            text = sys.stdin.read()
        else:
            with open(source) as handle:
                text = handle.read()
    except OSError as error:
        raise SystemExit(str(error))
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise SystemExit(f"{source}: not valid JSON: {error}")
    try:
        if args.from_report:
            return observations_from_document(document, as_model=args.as_model)
        if args.as_model is not None:
            # A verdict-matrix file passed via --observations still works,
            # it just needs the row selected.
            return observations_from_document(document, as_model=args.as_model)
        return observations_from_document(document)
    except (ObservationError, ValueError) as error:
        raise SystemExit(f"{source}: {error}")


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from repro.api.requests import SynthesizeRequest

    session = _make_session(args)
    observation_set = _load_observations(args)
    try:
        request = SynthesizeRequest(
            observations=tuple(observation_set),
            space=args.space,
            backend=args.synth_backend,
            suggest_tests=args.suggest_tests,
        )
    except ValueError as error:
        raise SystemExit(str(error))
    try:
        result = _run(session, request)
    except ValueError as error:
        raise SystemExit(str(error))
    if args.format == "json":
        _emit_json(to_json(result))
        return 0
    print(result.describe())
    return 0


def _cmd_catalog(args: argparse.Namespace) -> int:
    session = _make_session(args)
    if args.format == "json":
        _emit_json([to_json(model) for model in session.models])
        return 0
    for line in session.models.summary():
        print(line)
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    from repro.api.serialize import envelope, model_to_json
    from repro.compile import compile_model
    from repro.core.parametric import ALLOWED_OPTIONS, ALLOWED_OPTIONS_NO_DEP
    from repro.core.predicates import NO_DEP_PREDICATES, STANDARD_PREDICATES

    session = _make_session(args)
    spaces = {
        "no_deps": (
            ALLOWED_OPTIONS_NO_DEP,
            NO_DEP_PREDICATES,
            "the dependency-free space of Figure 4",
        ),
        "deps": (ALLOWED_OPTIONS, STANDARD_PREDICATES, "the full space of Section 4.2"),
    }
    families = []
    for key, (options, predicates, blurb) in spaces.items():
        space = session.models.space(key)
        families.append(
            {
                "key": key,
                "size": len(space),
                "predicates": list(predicates.names()),
                "codes": {
                    pair: [int(option) for option in allowed]
                    for pair, allowed in options.items()
                },
                "description": f"parametric models M{{ww}}{{wr}}{{rw}}{{rr}}: {blurb}",
            }
        )

    listed = list(session.models)
    if args.space:
        listed.extend(session.models.space(args.space))

    if args.format == "json":
        document = envelope("model_list")
        document["models"] = [
            model_to_json(model)
            if model.formula is not None
            else {
                "name": model.name,
                "formula": None,
                "predicates": list(model.predicates.names()),
                "description": model.description,
            }
            for model in listed
        ]
        document["families"] = families
        _emit_json(document)
        return 0

    print("Named models:")
    for model in listed:
        formula = model.formula if model.formula is not None else "<python function>"
        vocabulary = ", ".join(compile_model(model).vocabulary) or "(none)"
        print(f"  {model.name:10s} F(x, y) = {formula}")
        print(f"  {'':10s} predicates: {vocabulary}")
        if model.description:
            print(f"  {'':10s} {model.description}")
    print()
    print("Parametric families (names like M4044; digits = ww/wr/rw/rr reorder codes,")
    print("0=always, 1=different address, 2=no data dep, 3=1+2, 4=never):")
    for family in families:
        codes = " ".join(
            f"{pair}∈{{{','.join(str(code) for code in allowed)}}}"
            for pair, allowed in family["codes"].items()
        )
        print(f"  {family['key']:8s} {family['size']:3d} models, {codes}")
        print(f"  {'':8s} predicates: {', '.join(family['predicates'])}")
        print(f"  {'':8s} {family['description']}")
    if not args.space:
        print()
        print("(use --space deps|no_deps to list every model of a family)")
    return 0


def _cmd_outcomes(args: argparse.Namespace) -> int:
    session = _make_session(args)
    test = _resolve_test(session, args.test)
    result = _run(session, OutcomesRequest(test=test, model=args.model))
    if args.format == "json":
        _emit_json(to_json(result))
        return 0
    print(test.pretty())
    print()
    print(result.describe())
    return 0


def _cmd_enumerate_verify(args: argparse.Namespace) -> int:
    from repro.api.requests import ExhaustiveRequest

    session = _make_session(args)
    request = ExhaustiveRequest(
        bound=args.bound,
        space="deps" if args.deps else "no_deps",
        jobs=args.jobs,
        shard_size=args.shard_size,
        limit=args.limit,
        run_dir=args.run_dir,
        resume=args.resume,
        shard_timeout=args.shard_timeout,
        shard_retries=args.shard_retries,
        adaptive=args.adaptive,
        audit_rate=args.audit_rate,
        partition_checkpoint=args.partition_checkpoint,
    )
    try:
        report = _run(session, request)
    except ValueError as error:
        raise SystemExit(str(error))
    if args.format == "json":
        _emit_json(to_json(report))
    else:
        print(report.describe())
    if args.assert_match:
        if not report.complete:
            print(
                "enumerate-verify: run incomplete "
                f"(quarantined shards: {sorted(report.quarantined_shards)})",
                file=sys.stderr,
            )
            return 1
        if not report.matches_template:
            print("enumerate-verify: partitions disagree", file=sys.stderr)
            return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.api.serve import config_from_args, serve

    session = _make_session(args)
    return serve(
        session, host=args.host, port=args.port, config=config_from_args(args)
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-compare",
        description="Compare memory consistency models with bounded litmus tests (DAC 2011 reproduction).",
    )
    parser.add_argument(
        "--backend",
        choices=("explicit", "enumeration", "sat"),
        default="explicit",
        help="admissibility backend",
    )
    from repro.native.backend import KERNEL_CHOICES

    parser.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default=None,
        help="explicit-backend checking kernel: 'native' is the C extension, "
        "'python' the word-array port, 'bigint' the original; 'auto' (the "
        "default, also via REPRO_KERNEL) prefers native when built",
    )
    parser.add_argument(
        "--model-file",
        action="append",
        metavar="FILE",
        help="register the model defined in a .model file (repeatable)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_format(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--format",
            choices=("text", "json"),
            default="text",
            help="output format: human-readable text or a schema-versioned JSON document",
        )

    check = subparsers.add_parser("check", help="check one litmus test under one model")
    check.add_argument("test", help="path to a .litmus file")
    check.add_argument("--model", required=True, help="model name (SC, TSO, M4044, ...)")
    add_format(check)
    check.set_defaults(func=_cmd_check)

    compare = subparsers.add_parser("compare", help="compare two models")
    compare.add_argument("first")
    compare.add_argument("second")
    compare.add_argument("--deps", action=argparse.BooleanOptionalAction, default=True,
                         help="include data-dependency tests (default: yes)")
    add_format(compare)
    compare.set_defaults(func=_cmd_compare)

    explore = subparsers.add_parser("explore", help="explore the parametric model space")
    explore.add_argument("--deps", action=argparse.BooleanOptionalAction, default=False,
                         help="use the 90-model space with dependencies (default: 36-model space)")
    explore.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="number of worker processes for the verdict matrix (default: 1)")
    explore.add_argument("--dot", help="write the Hasse diagram to this DOT file")
    explore.add_argument(
        "--emit-verdicts", metavar="PATH",
        help="also write the models×tests verdict matrix as an observation-"
        "compatible repro/verdicts document (drive 'repro synthesize "
        "--from-report' without re-checking)")
    add_format(explore)
    explore.set_defaults(func=_cmd_explore)

    synthesize = subparsers.add_parser(
        "synthesize",
        help="invert the checker: find the models consistent with observed "
        "verdicts ('which memory model is this hardware?')",
    )
    synthesize.add_argument(
        "--space", default="deps",
        help="parametric space to search: deps/paper90 (the 90-model space, "
        "default) or no_deps/paper36")
    synthesize.add_argument(
        "--observations", metavar="FILE",
        help="repro/observations JSON document ('-' reads stdin)")
    synthesize.add_argument(
        "--from-report", metavar="FILE",
        help="ingest one model's row of a repro/verdicts or "
        "repro/exploration_result document (see --as-model)")
    synthesize.add_argument(
        "--as-model", metavar="NAME", default=None,
        help="which row of a --from-report verdict matrix to replay")
    synthesize.add_argument(
        "--suggest-tests", type=int, default=3, metavar="N",
        help="propose up to N distinguishing tests when several models "
        "remain consistent (default: 3)")
    # dest avoids clobbering the global --backend (the engine strategy).
    synthesize.add_argument(
        "--backend", dest="synth_backend", choices=("enum", "sat", "auto"),
        default="auto",
        help="verdict-column strategy: 'enum' batches through the engine's "
        "check_column, 'sat' solves the CNF skeletons incrementally per "
        "distinct po-mask; 'auto' follows the engine backend")
    add_format(synthesize)
    synthesize.set_defaults(func=_cmd_synthesize)

    catalog = subparsers.add_parser("catalog", help="list the built-in models")
    add_format(catalog)
    catalog.set_defaults(func=_cmd_catalog)

    models = subparsers.add_parser(
        "models",
        help="list named models and the parametric families "
        "(formulas, predicate vocabulary, descriptions)",
    )
    models.add_argument(
        "--space", choices=("deps", "no_deps"), default=None,
        help="additionally list every model of this parametric family")
    add_format(models)
    models.set_defaults(func=_cmd_models)

    outcomes = subparsers.add_parser("outcomes", help="enumerate allowed outcomes of a program")
    outcomes.add_argument("test", help="path to a .litmus file")
    outcomes.add_argument("--model", required=True)
    add_format(outcomes)
    outcomes.set_defaults(func=_cmd_outcomes)

    enumerate_verify = subparsers.add_parser(
        "enumerate-verify",
        help="verify the template suite's completeness against the naive enumeration",
    )
    from repro.pipeline.run import BOUNDS

    enumerate_verify.add_argument(
        "--bound", choices=tuple(BOUNDS), default="small",
        help="naive-enumeration bound ('paper' is the full Theorem 1 bound)")
    enumerate_verify.add_argument(
        "--deps", action=argparse.BooleanOptionalAction, default=False,
        help="partition the 90-model space with dependencies (default: 36-model space)")
    enumerate_verify.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes checking shards (default: 1)")
    enumerate_verify.add_argument(
        "--shard-size", type=int, default=512, metavar="K",
        help="unique tests per shard / checkpoint granule (default: 512)")
    enumerate_verify.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="cap the number of unique tests (smoke runs)")
    enumerate_verify.add_argument(
        "--run-dir", default=None, metavar="DIR",
        help="checkpoint directory (one JSONL file per completed shard)")
    enumerate_verify.add_argument(
        "--resume", action="store_true",
        help="answer already-completed shards from --run-dir instead of re-checking")
    enumerate_verify.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="kill a parallel worker stuck on one shard past this long and "
        "retry the shard on a fresh worker (default: no limit)")
    enumerate_verify.add_argument(
        "--shard-retries", type=int, default=2, metavar="N",
        help="retries per shard (beyond the first attempt) before the shard "
        "is quarantined and the run reported incomplete (default: 2)")
    enumerate_verify.add_argument(
        "--adaptive", action=argparse.BooleanOptionalAction, default=False,
        help="partition-guided adaptive verification: skip tests whose "
        "verdict row provably coincides with an already-folded row "
        "(profile certificate) or cannot refine the partition (frontier "
        "certificate), derive verdicts by po-mask monotonicity, and "
        "checkpoint the folded partition itself; --no-adaptive is the "
        "exact brute force (the differential oracle)")
    enumerate_verify.add_argument(
        "--audit-rate", type=float, default=0.0, metavar="RATE",
        help="re-check this fraction of adaptively skipped tests end-of-run "
        "and fail if any skip certificate was unsound (requires --adaptive)")
    enumerate_verify.add_argument(
        "--partition-checkpoint", default=None, metavar="PATH",
        help="where to write the digest-sealed partition checkpoint "
        "(default: <run-dir>/partition.json; requires --adaptive)")
    enumerate_verify.add_argument(
        "--assert-match", action="store_true",
        help="exit non-zero unless the run is complete and the naive "
        "partition matches the template suite's")
    add_format(enumerate_verify)
    enumerate_verify.set_defaults(func=_cmd_enumerate_verify)

    serve = subparsers.add_parser(
        "serve", help="answer JSON-lines requests over one warm session"
    )
    from repro.api.serve import add_serve_arguments

    add_serve_arguments(serve)
    serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-compare`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
