"""repro — litmus tests for comparing memory consistency models.

A reproduction of Mador-Haim, Alur and Martin, *"Litmus Tests for Comparing
Memory Consistency Models: How Long Do They Need to Be?"* (DAC 2011 /
UPenn MS-CIS-11-04).

The package provides:

* a litmus-test IR and execution semantics (:mod:`repro.core`);
* memory models as must-not-reorder functions, a catalog of hardware models
  and the paper's 90-model parametric family (:mod:`repro.core`);
* admissibility checking via explicit enumeration or a built-in SAT solver
  (:mod:`repro.checker`, :mod:`repro.sat`);
* a batched, cached, incremental checking engine behind every comparison
  and exploration entry point (:mod:`repro.engine`);
* litmus-test generation from the seven templates of Figure 2
  (:mod:`repro.generation`);
* model comparison, exploration of model spaces and minimal distinguishing
  test sets (:mod:`repro.comparison`);
* a sharded, resumable exhaustive-enumeration pipeline proving the
  template suite's completeness (:mod:`repro.pipeline`);
* a litmus text format and a command-line interface (:mod:`repro.io`,
  :mod:`repro.cli`).

Quickstart::

    from repro import TSO, SC, TEST_A, is_allowed
    assert is_allowed(TEST_A, TSO) and not is_allowed(TEST_A, SC)
"""

from repro.core import (
    ALPHA,
    IBM370,
    PSO,
    RMO,
    SC,
    TSO,
    X86,
    Branch,
    Execution,
    Fence,
    LitmusTest,
    Load,
    MemoryModel,
    Op,
    ParametricModel,
    Program,
    ReorderOption,
    Store,
    Thread,
    model_space,
    named_models,
    parse_formula,
)
from repro.checker import (
    CheckResult,
    ExplicitChecker,
    OutcomeSet,
    ReferenceChecker,
    SatChecker,
    allowed_outcomes,
    is_allowed,
)
from repro.comparison import (
    ModelComparator,
    Relation,
    compare_models,
    explore_models,
    find_minimal_distinguishing_set,
    verify_distinguishing_set,
)
from repro.engine import CheckEngine, EngineStats
from repro.generation import (
    L_TESTS,
    TEST_A,
    all_named_tests,
    corollary1_count,
    generate_suite,
    segment_counts,
)
from repro.compile import CompiledModel, compile_model
from repro.io import (
    litmus_to_text,
    parse_litmus,
    parse_litmus_file,
    parse_model_file,
    write_litmus_file,
    write_model_file,
)
from repro.pipeline import (
    EquivalenceReport,
    PipelineConfig,
    canonical_key,
    canonicalize,
    run_pipeline,
)
from repro.api import (
    BatchResult,
    CheckRequest,
    CompareRequest,
    ExhaustiveRequest,
    ExploreRequest,
    ModelRegistry,
    OutcomesRequest,
    Session,
    TestRegistry,
    UnknownModelError,
    UnknownTestError,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # core
    "Program",
    "Thread",
    "Load",
    "Store",
    "Fence",
    "Op",
    "Branch",
    "LitmusTest",
    "Execution",
    "MemoryModel",
    "ParametricModel",
    "ReorderOption",
    "model_space",
    "named_models",
    "parse_formula",
    "SC",
    "TSO",
    "X86",
    "PSO",
    "RMO",
    "IBM370",
    "ALPHA",
    # checking
    "ExplicitChecker",
    "SatChecker",
    "ReferenceChecker",
    "CheckResult",
    "OutcomeSet",
    "is_allowed",
    "allowed_outcomes",
    # public API sessions
    "Session",
    "BatchResult",
    "ModelRegistry",
    "TestRegistry",
    "UnknownModelError",
    "UnknownTestError",
    "CheckRequest",
    "CompareRequest",
    "ExploreRequest",
    "OutcomesRequest",
    "ExhaustiveRequest",
    # engine
    "CheckEngine",
    "EngineStats",
    # exhaustive-enumeration pipeline
    "EquivalenceReport",
    "PipelineConfig",
    "canonical_key",
    "canonicalize",
    "run_pipeline",
    # comparison
    "ModelComparator",
    "Relation",
    "compare_models",
    "explore_models",
    "find_minimal_distinguishing_set",
    "verify_distinguishing_set",
    # generation
    "TEST_A",
    "L_TESTS",
    "all_named_tests",
    "generate_suite",
    "segment_counts",
    "corollary1_count",
    # compile
    "CompiledModel",
    "compile_model",
    # io
    "parse_litmus",
    "parse_litmus_file",
    "litmus_to_text",
    "write_litmus_file",
    "parse_model_file",
    "write_model_file",
]
