"""The session: one warm engine answering declarative requests.

A :class:`Session` owns

* a :class:`~repro.api.registry.ModelRegistry` (built-in catalog plus
  user-registered parametric or custom models),
* a :class:`~repro.api.registry.TestRegistry` (named tests, ``.litmus``
  files, inline programs, memoized generated suites), and
* one persistent :class:`~repro.engine.engine.CheckEngine`,

so that everything the engine caches — per-test
:class:`~repro.engine.context.TestContext` objects, persistent incremental
SAT solvers, kernel indexes — survives across calls.  A session that
answers a ``compare`` and then an ``explore`` over the same suite evaluates
each test's execution exactly once, total.

All operations are declarative request dataclasses dispatched through
:meth:`Session.run` (one result) or :meth:`Session.run_batch` (a list of
results plus the aggregate :class:`~repro.engine.engine.EngineStats` delta
for the whole batch).
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.api.registry import ModelRegistry, TestRegistry
from repro.api.requests import (
    CheckRequest,
    CompareRequest,
    ExhaustiveRequest,
    ExploreRequest,
    OutcomesRequest,
    Request,
    SynthesizeRequest,
)
from repro.checker.outcomes import OutcomeSet, allowed_outcome_set
from repro.checker.result import CheckResult
from repro.comparison.compare import ComparisonResult, ModelComparator
from repro.comparison.exploration import ExplorationResult, explore_models
from repro.engine.engine import CheckEngine, EngineStats
from repro.pipeline.report import EquivalenceReport
from repro.synth.engine import SynthesisEngine, SynthesisResult
from repro.util import faults

#: Everything a session can hand back.
Result = Union[
    CheckResult,
    ComparisonResult,
    ExplorationResult,
    OutcomeSet,
    EquivalenceReport,
    SynthesisResult,
]


@dataclass
class BatchResult:
    """The results of :meth:`Session.run_batch`, plus the stats delta."""

    results: List[Result] = field(default_factory=list)
    #: aggregate engine counters for the whole batch
    stats: EngineStats = field(default_factory=EngineStats)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> Result:
        return self.results[index]


class Session:
    """A long-lived API session over one warm :class:`CheckEngine`.

    Args:
        backend: engine backend name (``"explicit"``, ``"enumeration"`` or
            ``"sat"``), ignored when ``engine`` is given.
        jobs: worker processes for verdict matrices, ignored when ``engine``
            is given.
        kernel: explicit-strategy kernel backend (``"auto"``, ``"native"``,
            ``"python"`` or ``"bigint"`` — see :mod:`repro.native.backend`),
            ignored when ``engine`` is given.
        engine: a ready-made engine to adopt (shared with other callers).
        models: a model registry to adopt; a fresh catalog-backed one by
            default.
        tests: a test registry to adopt; a fresh one by default.
    """

    def __init__(
        self,
        backend: str = "explicit",
        jobs: int = 1,
        kernel: Optional[str] = None,
        engine: Optional[CheckEngine] = None,
        models: Optional[ModelRegistry] = None,
        tests: Optional[TestRegistry] = None,
    ) -> None:
        self.models = models if models is not None else ModelRegistry()
        self.tests = tests if tests is not None else TestRegistry()
        if engine is not None:
            self.engine = engine
        else:
            self.engine = CheckEngine(backend=backend, jobs=jobs, kernel=kernel)
        # One comparator per comparison suite, so verdict vectors computed
        # for one compare request are reused by the next.
        self._comparators: Dict[Tuple[str, bool], ModelComparator] = {}
        # One synthesis engine per (space, suite), sharing this session's
        # check engine so repeated synthesize requests stay cache-warm.
        self._synth_engines: Dict[Tuple[str, str], SynthesisEngine] = {}
        # Digest-keyed memo of whole exploration results, the explore
        # analogue of serve's verdict-cache fast path: a repeat explore
        # over the same model set (by semantic digest) and suite returns
        # the memoized result without touching the engine.  Only active
        # when the engine has a verdict cache (the digests come from it).
        self._explore_memo: "OrderedDict[tuple, ExplorationResult]" = OrderedDict()
        # id(suite) -> (suite ref, digest): suites are memoized objects, so
        # identity is stable; the ref pins them against id reuse.
        self._suite_digests: Dict[int, Tuple[object, str]] = {}

    # ------------------------------------------------------------------
    # per-connection views
    # ------------------------------------------------------------------
    def view(self) -> "Session":
        """A lightweight per-connection view sharing this session's engine.

        The view gets private registry overlays (one connection's
        ``register``/``replace`` cannot affect another) while the engine —
        and with it every warm cache, the verdict cache and the counters —
        is shared.  The registries' memoized suites are shared by
        reference, so requests through any view resolve the same test
        objects and hit the shared engine's identity-keyed caches.
        """
        view = Session(
            engine=self.engine,
            models=self.models.view(),
            tests=self.tests.view(),
        )
        # The explore memo rides with the engine's caches: digest-keyed
        # results are view-independent (overlays change *which* models a
        # name resolves to, but the key is the resolved models' digests).
        view._explore_memo = self._explore_memo
        view._suite_digests = self._suite_digests
        return view

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> EngineStats:
        """The engine's cumulative counters for this session."""
        return self.engine.stats

    @property
    def backend_name(self) -> str:
        return self.engine.strategy.name

    @property
    def kernel_name(self) -> str:
        """The engine's kernel backend name, or ``""`` for non-kernel strategies."""
        kernel = getattr(self.engine, "kernel", None)
        return kernel.name if kernel is not None else ""

    def info(self) -> Dict[str, object]:
        """A JSON-safe description of this session (for the serve stats op)."""
        return {
            "backend": self.backend_name,
            "kernel": self.kernel_name,
            "models_registered": len(list(self.models)),
            "path_specs_allowed": bool(self.tests.allow_paths),
        }

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def run(self, request: Request) -> Result:
        """Execute one declarative request and return its result object."""
        faults.fire("session.run", op=getattr(request, "op", None))
        if isinstance(request, CheckRequest):
            return self._run_check(request)
        if isinstance(request, CompareRequest):
            return self._run_compare(request)
        if isinstance(request, ExploreRequest):
            return self._run_explore(request)
        if isinstance(request, OutcomesRequest):
            return self._run_outcomes(request)
        if isinstance(request, ExhaustiveRequest):
            return self._run_exhaustive(request)
        if isinstance(request, SynthesizeRequest):
            return self._run_synthesize(request)
        raise TypeError(f"unknown request type {type(request).__name__}")

    def run_batch(self, requests: Sequence[Request]) -> BatchResult:
        """Execute requests in order over the shared engine.

        Later requests see every context the earlier ones built; the
        returned :class:`BatchResult` carries the aggregate engine-stats
        delta for the whole batch.
        """
        before = self.engine.stats.snapshot()
        results = [self.run(request) for request in requests]
        return BatchResult(results=results, stats=self.engine.stats.since(before))

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _run_check(self, request: CheckRequest) -> CheckResult:
        test = self.tests.resolve(request.test)
        model = self.models.resolve(request.model)
        allowed = self.engine.check(test, model)
        witness = None
        reason = ""
        if request.witness:
            from repro.checker.explicit import ExplicitChecker

            detailed = ExplicitChecker(kernel=getattr(self.engine, "kernel", None)).check(
                test, model
            )
            # The engine's verdict is authoritative (the backends are
            # cross-validated); attach the witness/reason only when the
            # witness checker agrees, so a hypothetical disagreement cannot
            # mislabel evidence or crash the serve loop.
            if detailed.allowed == allowed:
                witness = detailed.witness
                reason = detailed.reason
        return CheckResult(
            allowed=allowed,
            test_name=test.name,
            model_name=model.name,
            witness=witness,
            reason=reason,
        )

    def comparator(self, suite: str = "standard", include_named: bool = True) -> ModelComparator:
        """Return (creating and caching) the comparator for a suite."""
        key = (suite, include_named)
        if key not in self._comparators:
            tests = self.tests.comparison_tests(suite, include_named=include_named)
            self._comparators[key] = ModelComparator(tests, self.engine)
        return self._comparators[key]

    def _run_compare(self, request: CompareRequest) -> ComparisonResult:
        first = self.models.resolve(request.first)
        second = self.models.resolve(request.second)
        comparator = self.comparator(request.suite, request.include_named)
        return comparator.compare(first, second)

    #: explore-memo entries kept (an exploration result is small; 64 of
    #: them cover any realistic serve rotation of spaces and suites)
    _EXPLORE_MEMO_LIMIT = 64

    def _suite_digest(self, suite: Sequence[object]) -> str:
        """A content digest of a memoized suite, computed once per object.

        Deliberately *not* the verdict cache's per-test digest: that one
        only covers the canonical kernel fragment (dependency-bearing
        suites would be unkeyable), while the JSON serialization covers
        every test the registry can hand out.
        """
        entry = self._suite_digests.get(id(suite))
        if entry is not None and entry[0] is suite:
            return entry[1]
        from repro.api.serialize import test_to_json

        digest = hashlib.sha256()
        for test in suite:
            digest.update(
                json.dumps(test_to_json(test), sort_keys=True).encode("utf-8")
            )
            digest.update(b"\x00")
        hexdigest = digest.hexdigest()
        self._suite_digests[id(suite)] = (suite, hexdigest)
        return hexdigest

    def _run_explore(self, request: ExploreRequest) -> ExplorationResult:
        if request.models is not None:
            models = self.models.resolve_all(request.models)
        else:
            models = self.models.space(request.space)
        suite = self.tests.suite(request.suite_key())
        preferred = self.tests.preferred_tests() if request.preferred else []
        # The serve fast path for explore: key the whole result by the
        # resolved models' semantic digests plus the suite's content
        # digest.  Any non-digestable model (opaque callables) disables
        # the memo for that request; verdicts never go stale because the
        # digest pins the full semantics of both sides.
        memo_key = None
        vcache = self.engine.verdict_cache
        if vcache is not None:
            model_digests = tuple(vcache.model_digest(model) for model in models)
            if all(digest is not None for digest in model_digests):
                memo_key = (
                    model_digests,
                    self._suite_digest(suite),
                    bool(request.preferred),
                )
                memoized = self._explore_memo.get(memo_key)
                if memoized is not None:
                    self._explore_memo.move_to_end(memo_key)
                    vcache.note_hit()
                    return memoized
        result = explore_models(
            models, suite, checker=self.engine, preferred_tests=preferred
        )
        if memo_key is not None:
            self._explore_memo[memo_key] = result
            while len(self._explore_memo) > self._EXPLORE_MEMO_LIMIT:
                self._explore_memo.popitem(last=False)
        return result

    def _run_outcomes(self, request: OutcomesRequest) -> OutcomeSet:
        test = self.tests.resolve(request.test)
        model = self.models.resolve(request.model)
        return allowed_outcome_set(test, model, checker=self.engine)

    def synthesis_engine(
        self, space: str = "deps", suite: Optional[str] = None
    ) -> SynthesisEngine:
        """Return (creating and caching) the synthesis engine for a space.

        The engine shares this session's :class:`CheckEngine`, so verdict
        columns computed by earlier explore/compare requests answer later
        synthesize requests from warm caches (and vice versa).
        """
        from repro.api.registry import canonical_space

        space_key = canonical_space(space)
        suite_key = suite if suite is not None else (
            "standard" if space_key == "deps" else "no_deps"
        )
        cache_key = (space_key, suite_key)
        if cache_key not in self._synth_engines:
            self._synth_engines[cache_key] = SynthesisEngine(
                models=self.models.space(space_key),
                comparison_tests=self.tests.comparison_tests(suite_key),
                engine=self.engine,
                preferred_tests=self.tests.preferred_tests(),
                space=space_key,
            )
        return self._synth_engines[cache_key]

    def _run_synthesize(self, request: SynthesizeRequest) -> SynthesisResult:
        synth = self.synthesis_engine(request.space, request.suite)
        resolved = [
            (self.tests.resolve(observation.test), bool(observation.allowed))
            for observation in request.observations
        ]
        return synth.synthesize(
            resolved,
            backend=request.backend,
            suggest_tests=request.suggest_tests,
        )

    def _run_exhaustive(self, request: ExhaustiveRequest) -> EquivalenceReport:
        from repro.pipeline.run import PipelineConfig, run_pipeline

        if request.run_dir is not None and not self.tests.allow_paths:
            # Mirrors the test-spec path restriction: network-facing serve
            # sessions must not let remote clients choose server-side paths.
            raise ValueError("run_dir is not available on path-restricted sessions")
        if request.partition_checkpoint is not None and not self.tests.allow_paths:
            raise ValueError(
                "partition_checkpoint is not available on path-restricted sessions"
            )
        config = PipelineConfig(
            bound=request.bound,
            space=request.space,
            suite=request.suite,
            backend=self.backend_name,
            kernel=self.kernel_name or "auto",
            jobs=request.jobs,
            shard_size=request.shard_size,
            limit=request.limit,
            run_dir=request.run_dir,
            resume=request.resume,
            shard_timeout=request.shard_timeout,
            shard_retries=request.shard_retries,
            adaptive=request.adaptive,
            audit_rate=request.audit_rate,
            partition_checkpoint=request.partition_checkpoint,
        )
        return run_pipeline(
            config,
            models=self.models.space(request.space),
            suite_tests=self.tests.suite(config.suite_key()),
            engine=self.engine,
        )
