"""repro.api — the session-oriented public API surface.

This package is the stable boundary every external caller (the CLI, the
``serve`` loop, future sharding/async backends) goes through:

* :class:`~repro.api.session.Session` — owns the model/test registries and
  one persistent :class:`~repro.engine.engine.CheckEngine`, so caches
  survive across calls;
* request dataclasses (:class:`~repro.api.requests.CheckRequest`,
  :class:`~repro.api.requests.CompareRequest`,
  :class:`~repro.api.requests.ExploreRequest`,
  :class:`~repro.api.requests.OutcomesRequest`,
  :class:`~repro.api.requests.ExhaustiveRequest`) dispatched via
  :meth:`~repro.api.session.Session.run` /
  :meth:`~repro.api.session.Session.run_batch`;
* schema-versioned JSON serialization for every result type
  (:mod:`repro.api.serialize`) and a round-trip validator
  (``python -m repro.api.validate``);
* a JSON-lines batch server (:mod:`repro.api.serve`).

Quickstart::

    from repro.api import Session, CheckRequest, CompareRequest

    session = Session(backend="explicit")
    verdict = session.run(CheckRequest(test="A", model="TSO"))
    assert verdict.allowed
    relation = session.run(CompareRequest(first="TSO", second="x86",
                                          suite="no_deps"))
    assert relation.equivalent
"""

from repro.api.registry import (
    ModelRegistry,
    TestRegistry,
    UnknownModelError,
    UnknownTestError,
)
from repro.api.requests import (
    CheckRequest,
    CompareRequest,
    ExhaustiveRequest,
    ExploreRequest,
    OutcomesRequest,
    Request,
    request_from_json,
    request_to_json,
)
from repro.api.serialize import (
    SCHEMA_VERSION,
    SchemaVersionError,
    SerializationError,
    from_json,
    to_json,
)
from repro.api.serve import serve
from repro.api.session import BatchResult, Session

__all__ = [
    "Session",
    "BatchResult",
    "ModelRegistry",
    "TestRegistry",
    "UnknownModelError",
    "UnknownTestError",
    "CheckRequest",
    "CompareRequest",
    "ExploreRequest",
    "OutcomesRequest",
    "ExhaustiveRequest",
    "Request",
    "request_to_json",
    "request_from_json",
    "SCHEMA_VERSION",
    "SerializationError",
    "SchemaVersionError",
    "to_json",
    "from_json",
    "serve",
]
