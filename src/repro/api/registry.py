"""Model and test registries: the one place names are resolved.

:class:`ModelRegistry` folds the previously duplicated resolution logic
(``cli.resolve_model`` on one side, ``core.catalog.named_models`` on the
other) into a single object that also accepts user-registered models.  A
spec resolves, in order, to

1. a live :class:`~repro.core.model.MemoryModel`;
2. a serialized ``repro/model`` document (so ``serve`` clients can send
   inline model definitions the server has never seen);
3. a registered or catalogued model (exact match, then case-insensitive);
4. a parametric model of the paper's family (``M4044`` and friends);
5. a ``.model`` file path (parsed once and cached by path, unless the
   registry is path-restricted);

anything else raises :class:`UnknownModelError` with the known names.

:class:`TestRegistry` plays the same role for litmus tests: the paper's
named tests (Test A, L1..L9), tests registered by the user, ``.litmus``
files (parsed once and cached by path), inline litmus text, and the
generated template suites (``"standard"``, ``"no_deps"``, ``"extended"``
— built once and memoized).  Memoization matters beyond speed: returning
the *same* :class:`~repro.core.litmus.LitmusTest` objects on every call is
what lets a shared :class:`~repro.engine.engine.CheckEngine` answer later
requests from its per-test context cache.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple, Union

from repro.core.catalog import named_models
from repro.core.litmus import LitmusTest
from repro.core.model import MemoryModel
from repro.core.parametric import model_space, parametric_model

#: Anything that resolves to a model: an instance, a name, a ``.model``
#: path, or a serialized ``repro/model`` document.
ModelSpec = Union[MemoryModel, str, Mapping]

#: Anything that resolves to a test: an instance, a name, a ``.litmus``
#: path, inline litmus text, or a serialized litmus-test document.
TestSpec = Union[LitmusTest, str, Mapping]


#: Accepted aliases for the two parametric spaces: the paper-facing names
#: (``paper90``/``paper36``) resolve to the canonical keys.
SPACE_ALIASES = {"paper90": "deps", "paper36": "no_deps"}


def canonical_space(key: str) -> str:
    """Resolve a space key or alias to its canonical name.

    Raises :class:`UnknownModelError` for anything else.
    """
    resolved = SPACE_ALIASES.get(key, key)
    if resolved not in ("deps", "no_deps"):
        raise UnknownModelError(
            f"unknown model space {key!r} (expected 'deps', 'no_deps', "
            "'paper90' or 'paper36')"
        )
    return resolved


class UnknownModelError(ValueError):
    """Raised when a model name cannot be resolved."""


class UnknownTestError(ValueError):
    """Raised when a test name cannot be resolved."""


class ModelRegistry:
    """Resolves model names; holds the catalog plus user-registered models."""

    def __init__(self, include_catalog: bool = True, allow_paths: bool = True) -> None:
        #: whether string specs may name filesystem paths.  Network-facing
        #: callers (``repro serve --port``) turn this off so remote clients
        #: cannot probe or read server-side files through model specs.
        self.allow_paths = allow_paths
        self._models: Dict[str, MemoryModel] = {}
        if include_catalog:
            self._models.update(named_models())
        self._spaces: Dict[bool, List[MemoryModel]] = {}
        self._files: Dict[str, MemoryModel] = {}

    # ------------------------------------------------------------------
    def register(self, model: MemoryModel, replace: bool = False) -> MemoryModel:
        """Register a model under its name; returns the model for chaining."""
        if not replace and model.name in self._models:
            raise ValueError(f"model {model.name!r} is already registered")
        self._models[model.name] = model
        return model

    def names(self) -> Tuple[str, ...]:
        return tuple(self._models)

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def __iter__(self) -> Iterator[MemoryModel]:
        return iter(self._models.values())

    def __len__(self) -> int:
        return len(self._models)

    def view(self) -> "ModelRegistry":
        """A private overlay of this registry (one per serve connection).

        The view starts with this registry's current models and may
        register or replace freely without the change leaking back.  The
        memoized parametric spaces and the parsed-file cache are shared
        *by reference*: every view resolves the same space/model objects,
        which is what keeps a shared engine's identity-keyed caches warm
        across connections.
        """
        view = ModelRegistry.__new__(ModelRegistry)
        view.allow_paths = self.allow_paths
        view._models = dict(self._models)
        view._spaces = self._spaces
        view._files = self._files
        return view

    # ------------------------------------------------------------------
    def load(self, path: Union[str, os.PathLike]) -> MemoryModel:
        """Parse a ``.model`` file, caching the result by absolute path."""
        from repro.io.model_file import parse_model_file

        key = os.path.abspath(os.fspath(path))
        if key not in self._files:
            self._files[key] = parse_model_file(key)
        return self._files[key]

    def _load_for_resolve(self, spec: str) -> MemoryModel:
        """Load a path-shaped spec, keeping :meth:`resolve`'s error contract:
        a missing or malformed file is an unresolvable spec, so it surfaces
        as :class:`UnknownModelError` (with the underlying detail chained),
        not as a raw ``OSError``/``ModelFileError``."""
        from repro.io.model_file import ModelFileError

        try:
            return self.load(spec)
        except (OSError, ModelFileError) as error:
            raise UnknownModelError(str(error)) from error

    def resolve(self, spec: ModelSpec) -> MemoryModel:
        """Resolve a model spec.

        Accepts a :class:`MemoryModel`, a serialized ``repro/model``
        document (inline model definitions in requests), a
        registered/catalog name, a parametric ``Mxxxx`` name, or a path to
        a ``.model`` file.
        """
        if isinstance(spec, MemoryModel):
            return spec
        if isinstance(spec, Mapping):
            from repro.api.serialize import model_from_json

            return model_from_json(dict(spec))
        if not isinstance(spec, str):
            raise UnknownModelError(f"cannot resolve model spec {spec!r}")
        if spec in self._models:
            return self._models[spec]
        for name, model in self._models.items():
            if name.lower() == spec.lower():
                return model
        if self.allow_paths and (spec.endswith(".model") or os.sep in spec):
            return self._load_for_resolve(spec)
        if spec.startswith("M") and spec[1:].isdigit():
            try:
                return parametric_model(spec)
            except ValueError as error:
                raise UnknownModelError(str(error)) from error
        if self.allow_paths and os.path.exists(spec):
            return self._load_for_resolve(spec)
        raise UnknownModelError(
            f"unknown model {spec!r}; use one of {', '.join(self._models)}, "
            "a parametric name like M4044, or a .model file path"
        )

    def resolve_all(self, specs: Sequence[ModelSpec]) -> List[MemoryModel]:
        return [self.resolve(spec) for spec in specs]

    def space(self, key: str = "no_deps") -> List[MemoryModel]:
        """Return a memoized parametric model space.

        ``"deps"`` (alias ``"paper90"``) is the full 90-model space of
        Section 4.2; ``"no_deps"`` (alias ``"paper36"``) the 36-model
        dependency-free space of Figure 4.
        """
        include = canonical_space(key) == "deps"
        if include not in self._spaces:
            self._spaces[include] = model_space(include_data_dependencies=include)
        return self._spaces[include]

    # ------------------------------------------------------------------
    def summary(self) -> List[str]:
        """Return one formatted line per registered model."""
        lines = []
        for name, model in self._models.items():
            formula = model.formula if model.formula is not None else "<python function>"
            lines.append(f"{name:10s} F(x, y) = {formula}")
        return lines


class TestRegistry:
    """Resolves litmus tests from names, files, inline text and documents."""

    #: not a pytest test class, despite the name
    __test__ = False

    #: Suite keys understood by :meth:`suite`.
    SUITE_KEYS = ("standard", "no_deps", "extended")

    def __init__(self, include_named: bool = True, allow_paths: bool = True) -> None:
        #: whether string specs may name filesystem paths.  Network-facing
        #: callers (``repro serve --port``) turn this off so remote clients
        #: cannot probe or read server-side files through test specs.
        self.allow_paths = allow_paths
        self._tests: Dict[str, LitmusTest] = {}
        if include_named:
            from repro.generation.named_tests import all_named_tests

            self._tests.update(all_named_tests())
        self._files: Dict[str, LitmusTest] = {}
        self._suites: Dict[str, List[LitmusTest]] = {}
        self._comparison_suites: Dict[Tuple[str, bool], List[LitmusTest]] = {}

    # ------------------------------------------------------------------
    def register(self, test: LitmusTest, replace: bool = False) -> LitmusTest:
        """Register a test under its name; returns the test for chaining."""
        if not replace and test.name in self._tests:
            raise ValueError(f"test {test.name!r} is already registered")
        self._tests[test.name] = test
        return test

    def names(self) -> Tuple[str, ...]:
        return tuple(self._tests)

    def __contains__(self, name: str) -> bool:
        return name in self._tests

    def view(self) -> "TestRegistry":
        """A private overlay of this registry (one per serve connection).

        Registered tests are copied (register/replace stays private); the
        memoized suites, comparison suites and parsed-file cache are
        shared by reference so every view returns the *same* test objects
        — the object identity a shared engine's per-test caches key on.
        """
        view = TestRegistry.__new__(TestRegistry)
        view.allow_paths = self.allow_paths
        view._tests = dict(self._tests)
        view._files = self._files
        view._suites = self._suites
        view._comparison_suites = self._comparison_suites
        return view

    # ------------------------------------------------------------------
    def load(self, path: Union[str, os.PathLike]) -> LitmusTest:
        """Parse a ``.litmus`` file, caching the result by absolute path."""
        from repro.io.parser import parse_litmus_file

        key = os.path.abspath(os.fspath(path))
        if key not in self._files:
            self._files[key] = parse_litmus_file(key)
        return self._files[key]

    def resolve(self, spec: TestSpec) -> LitmusTest:
        """Resolve a test spec.

        Accepts a :class:`LitmusTest`, a serialized litmus-test document, a
        registered test name, a path to a ``.litmus`` file, or inline litmus
        text (recognised by containing a newline).
        """
        if isinstance(spec, LitmusTest):
            return spec
        if isinstance(spec, Mapping):
            from repro.api.serialize import test_from_json

            return test_from_json(dict(spec))
        if not isinstance(spec, str):
            raise UnknownTestError(f"cannot resolve test spec {spec!r}")
        if spec in self._tests:
            return self._tests[spec]
        if "\n" in spec:
            from repro.io.parser import parse_litmus

            return parse_litmus(spec)
        if self.allow_paths and (
            spec.endswith(".litmus") or os.sep in spec or os.path.exists(spec)
        ):
            return self.load(spec)
        raise UnknownTestError(
            f"unknown test {spec!r}; use a registered name "
            f"({', '.join(self._tests)}), a .litmus path, or inline litmus text"
        )

    # ------------------------------------------------------------------
    def suite(self, key: str = "standard") -> List[LitmusTest]:
        """Return a memoized generated template suite.

        ``"standard"`` is the paper's 230-instantiation suite (with data
        dependencies), ``"no_deps"`` the 124-instantiation dependency-free
        suite, and ``"extended"`` the suite over the control-dependency
        predicate set.  Repeated calls return the same test objects, so a
        shared engine keeps its per-test caches warm across requests.
        """
        if key not in self._suites:
            if key not in self.SUITE_KEYS:
                raise UnknownTestError(
                    f"unknown suite {key!r} (expected one of {', '.join(self.SUITE_KEYS)})"
                )
            from repro.core.predicates import EXTENDED_PREDICATES
            from repro.generation.suite import generate_suite, no_dependency_suite, standard_suite

            if key == "standard":
                self._suites[key] = standard_suite().tests()
            elif key == "no_deps":
                self._suites[key] = no_dependency_suite().tests()
            else:
                self._suites[key] = generate_suite(EXTENDED_PREDICATES).tests()
        return self._suites[key]

    def comparison_tests(self, key: str = "standard", include_named: bool = True) -> List[LitmusTest]:
        """Return a memoized comparison suite: template suite + L1..L9.

        This is the suite the comparison entry points historically used
        (``suite.tests() + list(L_TESTS)``), with stable object identity.
        """
        cache_key = (key, include_named)
        if cache_key not in self._comparison_suites:
            tests = list(self.suite(key))
            if include_named:
                from repro.generation.named_tests import L_TESTS

                names = {test.name for test in tests}
                tests.extend(test for test in L_TESTS if test.name not in names)
            self._comparison_suites[cache_key] = tests
        return self._comparison_suites[cache_key]

    def preferred_tests(self) -> List[LitmusTest]:
        """The paper's nine preferred edge-label tests, L1..L9."""
        from repro.generation.named_tests import L_TESTS

        return list(L_TESTS)
