"""Serve observability: request metrics and their Prometheus exposition.

:class:`ServeMetrics` is the per-process metrics registry the serve loop
feeds: request counts keyed by ``(op, code)`` and fixed-bucket latency
histograms keyed by op.  :func:`metrics_document` renders everything the
server knows — request metrics, server gauges, engine counters, verdict
cache and persistent-store state — as one JSON document (the
``{"op": "metrics"}`` builtin); :func:`prometheus_text` renders the same
data in the Prometheus text exposition format, and
:func:`start_metrics_server` serves it over HTTP (``--metrics-port``).

Exported series (all prefixed ``repro_``):

================================== ======== ==============================
series                             labels   meaning
================================== ======== ==============================
repro_serve_requests_total         op, code finished requests; ``code`` is
                                            ``ok`` or the error code
repro_serve_request_seconds        op       latency histogram
  (_bucket/_sum/_count)
repro_serve_in_flight              —        requests currently executing
repro_serve_queue_depth            —        dispatcher queue backlog
repro_serve_connections_active     —        open connections
repro_serve_connections_total      —        connections accepted, ever
repro_serve_connections_shed       —        connections shed by backpressure
repro_serve_draining               —        1 while draining
repro_serve_uptime_seconds         —        seconds since serve_start
repro_cache_hits_total             —        verdict-cache memory-tier hits
repro_cache_misses_total           —        verdict-cache lookups that missed
repro_cache_stores_total           —        verdicts inserted
repro_cache_evictions_total        —        LRU evictions
repro_cache_entries                —        current memory-tier size
repro_cache_persisted_loaded_total —        entries recovered at startup
repro_cache_persisted_skipped_total —       corrupt lines skipped at startup
repro_cache_persisted_written_total —       entries appended to disk
repro_engine_<counter>_total       —        every :class:`EngineStats` counter
repro_engine_info                  backend, always 1; the label values carry
                                   kernel   the resolved strategy/kernel
================================== ======== ==============================
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Histogram bucket upper bounds in seconds, spanning a 15µs cache hit to
#: a multi-second exhaustive exploration.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Histogram:
    """A fixed-bucket latency histogram (cumulative on export).

    Not thread-safe on its own; :class:`ServeMetrics` serialises access.
    """

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(buckets)
        # one count per bucket plus the +Inf overflow bucket
        self.counts = [0] * (len(self.buckets) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum_seconds": round(self.total, 6),
            "buckets": [
                {"le": bound, "count": count}
                for bound, count in self.cumulative()
                if bound != float("inf")
            ],
        }


class ServeMetrics:
    """Thread-safe request counters and per-op latency histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests: Dict[Tuple[str, str], int] = {}
        self._latency: Dict[str, Histogram] = {}

    def record(self, op: Optional[str], code: str, seconds: float) -> None:
        """Count one finished request: its op, outcome code and latency."""
        label = op if isinstance(op, str) and op else "unknown"
        with self._lock:
            key = (label, code)
            self._requests[key] = self._requests.get(key, 0) + 1
            histogram = self._latency.get(label)
            if histogram is None:
                histogram = self._latency[label] = Histogram()
            histogram.observe(seconds)

    def requests(self) -> Dict[Tuple[str, str], int]:
        with self._lock:
            return dict(self._requests)

    def latency(self) -> Dict[str, Histogram]:
        with self._lock:
            return dict(self._latency)

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "requests": [
                    {"op": op, "code": code, "count": count}
                    for (op, code), count in sorted(self._requests.items())
                ],
                "latency": {
                    op: histogram.as_dict()
                    for op, histogram in sorted(self._latency.items())
                },
            }


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _cache_section(session: Any) -> Dict[str, object]:
    cache = getattr(session.engine, "verdict_cache", None)
    if cache is None:
        return {"enabled": False}
    from repro.cache.persist import store_info

    section: Dict[str, object] = {"enabled": True}
    section.update(cache.stats.as_dict())
    section["store"] = store_info(cache.store)
    return section


def metrics_document(state: Any, session: Any, exclude_self: bool = False) -> Dict[str, object]:
    """Everything the server knows, as one JSON document.

    ``exclude_self`` subtracts the metrics request itself from the
    in-flight gauge (set when answering the ``metrics`` builtin, which is
    itself a counted request).
    """
    return {
        "server": state.snapshot(exclude_self=exclude_self),
        **state.metrics.as_dict(),
        "engine": session.engine.stats.as_dict(),
        "cache": _cache_section(session),
    }


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_bound(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    text = repr(bound)
    return text


def prometheus_text(state: Any, session: Any) -> str:
    """The Prometheus text exposition of :func:`metrics_document`."""
    lines: List[str] = []

    def emit(name: str, value: object, **labels: str) -> None:
        if labels:
            rendered = ",".join(
                f'{key}="{_escape_label(str(val))}"' for key, val in labels.items()
            )
            lines.append(f"{name}{{{rendered}}} {value}")
        else:
            lines.append(f"{name} {value}")

    lines.append("# HELP repro_serve_requests_total Finished requests by op and outcome code.")
    lines.append("# TYPE repro_serve_requests_total counter")
    for (op, code), count in sorted(state.metrics.requests().items()):
        emit("repro_serve_requests_total", count, op=op, code=code)

    lines.append("# HELP repro_serve_request_seconds Request latency by op.")
    lines.append("# TYPE repro_serve_request_seconds histogram")
    for op, histogram in sorted(state.metrics.latency().items()):
        for bound, cumulative in histogram.cumulative():
            emit(
                "repro_serve_request_seconds_bucket",
                cumulative,
                op=op,
                le=_format_bound(bound),
            )
        emit("repro_serve_request_seconds_sum", round(histogram.total, 6), op=op)
        emit("repro_serve_request_seconds_count", histogram.count, op=op)

    snapshot = state.snapshot()
    gauges = (
        ("repro_serve_in_flight", "Requests currently executing.", snapshot["in_flight"]),
        ("repro_serve_queue_depth", "Dispatcher queue backlog.", snapshot.get("queue_depth", 0)),
        ("repro_serve_connections_active", "Open connections.", snapshot["connections_active"]),
        ("repro_serve_connections_total", "Connections accepted.", snapshot["connections_total"]),
        ("repro_serve_connections_shed", "Connections shed by backpressure.", snapshot["connections_shed"]),
        ("repro_serve_draining", "1 while draining.", int(bool(snapshot["draining"]))),
        ("repro_serve_uptime_seconds", "Seconds since serve start.", snapshot["uptime_seconds"]),
    )
    for name, help_text, value in gauges:
        lines.append(f"# HELP {name} {help_text}")
        kind = "counter" if name.endswith("_total") or name.endswith("_shed") else "gauge"
        lines.append(f"# TYPE {name} {kind}")
        emit(name, value)

    cache = _cache_section(session)
    lines.append("# HELP repro_cache Verdict-cache counters.")
    if cache.get("enabled"):
        for field, suffix in (
            ("hits", "hits_total"),
            ("misses", "misses_total"),
            ("stores", "stores_total"),
            ("evictions", "evictions_total"),
            ("entries", "entries"),
            ("persisted_loaded", "persisted_loaded_total"),
            ("persisted_skipped", "persisted_skipped_total"),
            ("persisted_written", "persisted_written_total"),
        ):
            emit(f"repro_cache_{suffix}", cache.get(field, 0))
    emit("repro_cache_enabled", int(bool(cache.get("enabled"))))

    lines.append("# HELP repro_engine Engine counters (see EngineStats).")
    engine_stats = session.engine.stats.as_dict()
    for name, value in engine_stats.items():
        if name == "kernel_backend":
            continue
        emit(f"repro_engine_{name}_total", value)
    emit(
        "repro_engine_info",
        1,
        backend=session.backend_name,
        kernel=engine_stats.get("kernel_backend", "") or "none",
    )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# the HTTP endpoint
# ----------------------------------------------------------------------
class _MetricsHandler(BaseHTTPRequestHandler):
    server: "MetricsServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = prometheus_text(self.server.state, self.server.session).encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/metrics.json":
            document = metrics_document(self.server.state, self.server.session)
            body = (json.dumps(document) + "\n").encode("utf-8")
            content_type = "application/json"
        else:
            self.send_error(404, "unknown path (try /metrics)")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        # Scrapes are frequent and boring; keep them out of the structured
        # log (errors still surface through send_error's status line).
        pass


class MetricsServer(ThreadingHTTPServer):
    """The ``--metrics-port`` HTTP endpoint (``/metrics``, ``/metrics.json``)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], state: Any, session: Any) -> None:
        super().__init__(address, _MetricsHandler)
        self.state = state
        self.session = session


def start_metrics_server(host: str, port: int, state: Any, session: Any) -> MetricsServer:
    """Bind and start the metrics endpoint on a daemon thread."""
    server = MetricsServer((host, port), state, session)
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.2},
        daemon=True,
        name="repro-serve-metrics",
    )
    thread.start()
    return server
