"""Declarative request objects dispatched through :meth:`Session.run`.

Every operation of the public API is a frozen dataclass describing *what* to
compute, not *how*: model and test fields accept either live objects or
specs (names, paths, inline litmus text, serialized documents) that the
session's registries resolve.  In particular every model field — including
``CompareRequest.first``/``second`` and ``ExploreRequest.models`` — accepts
an inline ``repro/model`` document, so a ``serve`` client can have the
server check models it has never seen; the compile layer's digest-keyed
caches make a resent definition as cheap as a registered name.  Requests
round-trip through JSON — the ``serve`` loop reads one request document per
line — via :func:`request_to_json` / :func:`request_from_json`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.api.registry import ModelSpec, TestSpec
from repro.core.litmus import LitmusTest
from repro.core.model import MemoryModel


@dataclass(frozen=True)
class CheckRequest:
    """Is ``test``'s candidate execution allowed under ``model``?

    With ``witness=True`` the result carries a happens-before witness when
    the execution is allowed (at the cost of one extra witness-producing
    check outside the engine's cached fast path).
    """

    test: TestSpec
    model: ModelSpec
    witness: bool = False

    op = "check"


@dataclass(frozen=True)
class CompareRequest:
    """Compare two models over a comparison suite.

    ``suite`` names a generated template suite (``"standard"``,
    ``"no_deps"`` or ``"extended"``); with ``include_named=True`` the
    paper's nine tests L1..L9 are appended, matching the classic CLI
    behaviour.  ``first``/``second`` accept names, live models, or inline
    ``repro/model`` documents.
    """

    first: ModelSpec
    second: ModelSpec
    suite: str = "standard"
    include_named: bool = True

    op = "compare"


@dataclass(frozen=True)
class ExploreRequest:
    """Explore a family of models over a template suite.

    By default the parametric space named by ``space`` (``"no_deps"`` for
    the 36-model Figure 4 space, ``"deps"`` for the full 90-model space) is
    explored over the matching template suite; an explicit ``models`` tuple
    — names, live models, or inline ``repro/model`` documents — overrides
    the space.  With ``preferred=True`` the paper's nine tests label the
    Hasse edges.
    """

    space: str = "no_deps"
    models: Optional[Tuple[ModelSpec, ...]] = None
    suite: Optional[str] = None
    preferred: bool = True

    def __post_init__(self) -> None:
        if self.models is not None and not isinstance(self.models, tuple):
            object.__setattr__(self, "models", tuple(self.models))

    def suite_key(self) -> str:
        """The template suite to use: explicit, or matched to the space."""
        if self.suite is not None:
            return self.suite
        return "standard" if self.space == "deps" else "no_deps"

    op = "explore"


@dataclass(frozen=True)
class OutcomesRequest:
    """Enumerate the outcomes ``model`` allows for ``test``'s program."""

    test: TestSpec
    model: ModelSpec

    op = "outcomes"


@dataclass(frozen=True)
class ExhaustiveRequest:
    """Run the sharded exhaustive-enumeration verification pipeline.

    Streams the naive bounded enumeration (``bound`` names a configuration
    from :data:`repro.pipeline.run.BOUNDS`) through the symmetry-reducing
    canonicalizer, checks every kernel-distinct survivor against the whole
    ``space``, and reports whether the induced model partition equals the
    template suite's — the paper's completeness claim.  With a ``run_dir``
    each completed shard is checkpointed as JSON lines; ``resume=True``
    answers completed shards from disk instead of re-checking them.
    """

    bound: str = "small"
    space: str = "no_deps"
    suite: Optional[str] = None
    jobs: int = 1
    shard_size: int = 512
    limit: Optional[int] = None
    run_dir: Optional[str] = None
    resume: bool = False
    #: wall-clock seconds a parallel worker may spend on one shard before
    #: it is killed and the shard retried on a fresh worker; None = no limit
    shard_timeout: Optional[float] = None
    #: retries per shard (beyond the first attempt) before quarantine
    shard_retries: int = 2
    #: partition-guided adaptive layer: profile/frontier skipping with
    #: certificates, monotone verdict derivation, partition checkpointing
    adaptive: bool = False
    #: fraction of skipped tests re-checked end-of-run (requires adaptive)
    audit_rate: float = 0.0
    #: partition checkpoint path override (requires adaptive; defaults to
    #: ``<run_dir>/partition.json`` when a run_dir is set)
    partition_checkpoint: Optional[str] = None

    op = "exhaustive"


@dataclass(frozen=True)
class SynthesizeRequest:
    """Find the models of a parametric space consistent with observations.

    ``observations`` is a tuple of :class:`~repro.synth.observations.
    Observation` objects (plain ``{"test": ..., "allowed": ...}`` mappings
    are coerced); each ``test`` spec resolves through the session's test
    registry, so path specs honor the registry's path restrictions.
    ``space`` accepts the canonical keys (``"deps"``/``"no_deps"``) and
    their paper-facing aliases (``"paper90"``/``"paper36"``); ``backend``
    picks the verdict-column strategy (``"enum"``, ``"sat"`` or ``"auto"``
    to follow the session's engine backend); ``suggest_tests`` caps the
    number of distinguishing-test suggestions when the answer is ambiguous.
    """

    observations: Tuple["Observation", ...] = ()
    space: str = "deps"
    backend: str = "auto"
    suggest_tests: int = 3
    suite: Optional[str] = None

    def __post_init__(self) -> None:
        from repro.synth.observations import Observation, _observation_from_json

        coerced = tuple(
            obs if isinstance(obs, Observation) else _observation_from_json(obs)
            for obs in self.observations
        )
        object.__setattr__(self, "observations", coerced)

    def suite_key(self) -> str:
        """The comparison suite: explicit, or matched to the space."""
        if self.suite is not None:
            return self.suite
        from repro.api.registry import canonical_space

        return "standard" if canonical_space(self.space) == "deps" else "no_deps"

    op = "synthesize"


Request = Union[
    CheckRequest,
    CompareRequest,
    ExploreRequest,
    OutcomesRequest,
    ExhaustiveRequest,
    SynthesizeRequest,
]

_REQUEST_TYPES: Dict[str, type] = {
    cls.op: cls
    for cls in (
        CheckRequest,
        CompareRequest,
        ExploreRequest,
        OutcomesRequest,
        ExhaustiveRequest,
        SynthesizeRequest,
    )
}


def _spec_to_json(spec: Any) -> Any:
    """Serialize a model/test spec field: names pass through, objects embed."""
    if isinstance(spec, (MemoryModel, LitmusTest)):
        from repro.api.serialize import to_json

        return to_json(spec)
    if isinstance(spec, Mapping):
        return dict(spec)
    return spec


def request_to_json(request: Request) -> Dict[str, Any]:
    """Serialize a request to a schema-versioned JSON document."""
    from repro.api.serialize import envelope

    document = envelope("request")
    document["op"] = request.op
    for field_info in fields(request):
        value = getattr(request, field_info.name)
        if field_info.name in ("test", "model", "first", "second"):
            value = _spec_to_json(value)
        elif field_info.name == "models" and value is not None:
            value = [_spec_to_json(spec) for spec in value]
        elif field_info.name == "observations":
            from repro.synth.observations import _observation_to_json

            value = [_observation_to_json(obs) for obs in value]
        document[field_info.name] = value
    return document


def request_from_json(document: Mapping[str, Any]) -> Request:
    """Rebuild a request from a document written by :func:`request_to_json`.

    The envelope is validated when present; bare ``{"op": ..., ...}``
    dictionaries (convenient for hand-written ``serve`` input) are accepted
    too.
    """
    from repro.api.serialize import SerializationError, check_envelope

    if not isinstance(document, Mapping):
        # A JSON array or scalar on a serve line must be a structured
        # bad-request error, not an AttributeError escaping the loop.
        raise SerializationError(
            f"request document must be a JSON object, not {type(document).__name__}"
        )
    if "schema" in document or "schema_version" in document:
        check_envelope(dict(document), "request")
    op = document.get("op")
    if not isinstance(op, str):
        raise SerializationError(
            f"request op must be a string (expected one of {', '.join(_REQUEST_TYPES)})"
        )
    cls = _REQUEST_TYPES.get(op)
    if cls is None:
        raise SerializationError(
            f"unknown request op {op!r} (expected one of {', '.join(_REQUEST_TYPES)})"
        )
    kwargs: Dict[str, Any] = {}
    known = {field_info.name for field_info in fields(cls)}
    for key, value in document.items():
        if key in ("schema", "schema_version", "op"):
            continue
        if key not in known:
            raise SerializationError(f"unknown field {key!r} for request op {op!r}")
        if key == "models" and value is not None:
            value = tuple(value)
        elif key == "observations":
            if not isinstance(value, (list, tuple)):
                raise SerializationError(
                    "'observations' must be a JSON array of "
                    '{"test": ..., "allowed": ...} objects'
                )
            value = tuple(value)
        kwargs[key] = value
    try:
        return cls(**kwargs)
    except TypeError as error:
        raise SerializationError(f"malformed {op!r} request: {error}") from error
