"""``python -m repro.api.validate``: round-trip-validate a result document.

Reads one JSON document (a file argument or stdin), deserializes it with
:func:`repro.api.serialize.from_json`, re-serializes the reconstructed
object, and checks the two documents are identical — i.e. the document
survives a full decode/encode round trip bit-identically.  Prints a
one-line summary to stderr and exits 0 on success, 1 on any failure
(malformed JSON, unknown schema, version mismatch, or a lossy round trip).

With ``--echo`` the canonical re-serialized document is written to stdout,
so the tool composes as a validating filter::

    repro explore --format json | python -m repro.api.validate --echo | ...
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import IO, Optional, Sequence

from repro.api.serialize import (
    SCHEMA_VERSION,
    SerializationError,
    check_envelope,
    from_json,
    to_json,
)


def validate_document(text: str) -> "tuple[str, dict]":
    """Validate one serialized result document.

    Returns ``(kind, canonical)`` where ``canonical`` is the re-serialized
    document (identical content; the serializer's canonical key order).
    Raises :class:`SerializationError` (or ``json.JSONDecodeError``) when
    the document is malformed, unsupported, or does not round-trip exactly.
    """
    document = json.loads(text)
    kind = check_envelope(document)
    obj = from_json(document)
    round_tripped = to_json(obj)
    if round_tripped != document:
        raise SerializationError(
            f"{kind} document does not survive a decode/encode round trip"
        )
    return kind, round_tripped


def main(
    argv: Optional[Sequence[str]] = None,
    input_stream: Optional[IO[str]] = None,
    output_stream: Optional[IO[str]] = None,
) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api.validate",
        description="Validate a schema-versioned repro result document (round-trip check).",
    )
    parser.add_argument("file", nargs="?", help="document to validate (default: stdin)")
    parser.add_argument(
        "--echo",
        action="store_true",
        help="write the canonical re-serialized document to stdout",
    )
    args = parser.parse_args(argv)

    if args.file:
        with open(args.file) as handle:
            text = handle.read()
    else:
        text = (input_stream if input_stream is not None else sys.stdin).read()

    try:
        kind, canonical = validate_document(text)
    except (json.JSONDecodeError, LookupError, TypeError, ValueError) as error:
        print(f"INVALID: {error}", file=sys.stderr)
        return 1

    if args.echo:
        out = output_stream if output_stream is not None else sys.stdout
        json.dump(canonical, out)
        out.write("\n")
    print(
        f"OK: valid {kind} document (schema_version {SCHEMA_VERSION}, exact round trip)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
