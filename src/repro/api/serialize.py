"""Schema-versioned JSON serialization for every public result type.

Every top-level document carries two envelope fields::

    {"schema": "repro/<kind>", "schema_version": 2, ...payload...}

``to_json`` turns a result object into a plain-JSON dictionary (nothing but
dicts, lists, strings, numbers, booleans and ``None``) and ``from_json``
turns such a dictionary back into the original object, dispatching on the
``schema`` kind.  Round trips are exact: for every supported object ``x``,
``from_json(to_json(x)) == x`` and ``to_json(from_json(doc)) == doc``.

Documents whose ``schema_version`` differs from :data:`SCHEMA_VERSION` are
rejected with :class:`SchemaVersionError` — readers must not silently
reinterpret a payload written by an incompatible producer.

The serializable types are

* :class:`~repro.checker.result.CheckResult` (with its witness),
* :class:`~repro.checker.outcomes.OutcomeSet`,
* :class:`~repro.comparison.compare.ComparisonResult`,
* :class:`~repro.comparison.exploration.ExplorationResult`
  (including :class:`~repro.engine.engine.EngineStats` and Hasse edges),
* :class:`~repro.pipeline.report.EquivalenceReport` (the exhaustive
  enumeration pipeline's partition-vs-template verdict),
* :class:`~repro.synth.engine.SynthesisResult` (consistent/weakest/
  strongest models, exclusion witnesses, conflict core, suggestions),
* :class:`~repro.synth.observations.ObservationSet` and
  :class:`~repro.synth.observations.VerdictDocument` (the synthesis
  inputs: observed verdicts, and the exported models×tests matrix),
* :class:`~repro.core.litmus.LitmusTest` (full program structure),
* formula-defined :class:`~repro.core.model.MemoryModel` objects
  (models backed by arbitrary Python callables cannot travel as JSON and
  raise :class:`SerializationError`).

``repro/model`` documents are also accepted *inline* wherever a request
takes a model spec (:mod:`repro.api.requests`), which is how ``serve``
clients ship models the server has never seen; the ``.model`` text format
of :mod:`repro.io.model_file` carries the same four fields.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.checker.outcomes import OutcomeSet
from repro.checker.result import CheckResult, CheckWitness, HbEdge
from repro.comparison.compare import ComparisonResult, Relation
from repro.comparison.exploration import ExplorationResult, HasseEdge
from repro.core.events import Event
from repro.core.expr import BinOp, Const, Expr, Loc, Reg
from repro.core.formula import parse_formula
from repro.core.instructions import Branch, Fence, Instruction, Load, Op, Store
from repro.core.litmus import LitmusTest
from repro.core.model import MemoryModel
from repro.core.predicates import PredicateSet, default_registry
from repro.core.program import Program, Thread
from repro.engine.engine import EngineStats
from repro.pipeline.report import EquivalenceReport

#: The version every document written by this module carries.  Version 2
#: added the synthesis document kinds and the synthesis counters in every
#: serialized ``EngineStats`` payload; version 3 added the adaptive
#: pipeline's counters (``adaptive``/``profile_skips``/``frontier_skips``/
#: ``audits_performed`` on equivalence reports, ``derived_verdicts`` in
#: ``EngineStats``).  Older documents are rejected (regenerate them, or
#: strip the envelope for request documents).
SCHEMA_VERSION = 3

#: ``schema`` kind strings, one per top-level document type.
SCHEMA_PREFIX = "repro/"


class SerializationError(ValueError):
    """Raised when an object cannot be serialized or a document is malformed."""


class SchemaVersionError(SerializationError):
    """Raised when a document's ``schema_version`` is not :data:`SCHEMA_VERSION`."""


def envelope(kind: str) -> Dict[str, Any]:
    """Return a fresh document envelope for ``kind``."""
    return {"schema": SCHEMA_PREFIX + kind, "schema_version": SCHEMA_VERSION}


def check_envelope(document: Any, kind: Optional[str] = None) -> str:
    """Validate a document's envelope; return its kind (without the prefix)."""
    if not isinstance(document, dict):
        raise SerializationError(f"expected a JSON object, got {type(document).__name__}")
    schema = document.get("schema")
    if not isinstance(schema, str) or not schema.startswith(SCHEMA_PREFIX):
        raise SerializationError(f"missing or malformed 'schema' field: {schema!r}")
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SchemaVersionError(
            f"schema_version {version!r} is not supported (expected {SCHEMA_VERSION})"
        )
    found = schema[len(SCHEMA_PREFIX) :]
    if kind is not None and found != kind:
        raise SerializationError(f"expected a {kind!r} document, found {found!r}")
    return found


# ----------------------------------------------------------------------
# expressions and instructions
# ----------------------------------------------------------------------
def _expr_to_json(expr: Expr) -> Dict[str, Any]:
    if isinstance(expr, Const):
        return {"kind": "const", "value": expr.value}
    if isinstance(expr, Reg):
        return {"kind": "reg", "name": expr.name}
    if isinstance(expr, Loc):
        return {"kind": "loc", "name": expr.name}
    if isinstance(expr, BinOp):
        return {
            "kind": "binop",
            "op": expr.op,
            "left": _expr_to_json(expr.left),
            "right": _expr_to_json(expr.right),
        }
    raise SerializationError(f"cannot serialize expression {expr!r}")


def _expr_from_json(data: Dict[str, Any]) -> Expr:
    kind = data.get("kind")
    if kind == "const":
        return Const(data["value"])
    if kind == "reg":
        return Reg(data["name"])
    if kind == "loc":
        return Loc(data["name"])
    if kind == "binop":
        return BinOp(data["op"], _expr_from_json(data["left"]), _expr_from_json(data["right"]))
    raise SerializationError(f"unknown expression kind {kind!r}")


def _instruction_to_json(instruction: Instruction) -> Dict[str, Any]:
    if isinstance(instruction, Load):
        return {"kind": "load", "dest": instruction.dest, "address": _expr_to_json(instruction.address)}
    if isinstance(instruction, Store):
        return {
            "kind": "store",
            "address": _expr_to_json(instruction.address),
            "value": _expr_to_json(instruction.value),
        }
    if isinstance(instruction, Fence):
        return {"kind": "fence", "fence_kind": instruction.kind}
    if isinstance(instruction, Op):
        return {"kind": "op", "dest": instruction.dest, "expr": _expr_to_json(instruction.expr)}
    if isinstance(instruction, Branch):
        return {"kind": "branch", "expr": _expr_to_json(instruction.expr), "label": instruction.label}
    raise SerializationError(f"cannot serialize instruction {instruction!r}")


def _instruction_from_json(data: Dict[str, Any]) -> Instruction:
    kind = data.get("kind")
    if kind == "load":
        return Load(data["dest"], _expr_from_json(data["address"]))
    if kind == "store":
        return Store(_expr_from_json(data["address"]), _expr_from_json(data["value"]))
    if kind == "fence":
        return Fence(data["fence_kind"])
    if kind == "op":
        return Op(data["dest"], _expr_from_json(data["expr"]))
    if kind == "branch":
        return Branch(_expr_from_json(data["expr"]), data["label"])
    raise SerializationError(f"unknown instruction kind {kind!r}")


# ----------------------------------------------------------------------
# programs, litmus tests and models
# ----------------------------------------------------------------------
def _program_to_json(program: Program) -> Dict[str, Any]:
    return {
        "threads": [
            {
                "name": thread.name,
                "instructions": [_instruction_to_json(i) for i in thread.instructions],
            }
            for thread in program.threads
        ]
    }


def _program_from_json(data: Dict[str, Any]) -> Program:
    return Program(
        Thread(thread["name"], [_instruction_from_json(i) for i in thread["instructions"]])
        for thread in data["threads"]
    )


def test_to_json(test: LitmusTest) -> Dict[str, Any]:
    """Serialize a litmus test with its full program structure."""
    document = envelope("litmus_test")
    document.update(
        {
            "name": test.name,
            "description": test.description,
            "program": _program_to_json(test.program),
            "outcome": [
                [[key[0], key[1]], value] for key, value in test.outcome.read_values
            ],
        }
    )
    return document


def test_from_json(document: Dict[str, Any]) -> LitmusTest:
    """Rebuild a litmus test serialized by :func:`test_to_json`."""
    check_envelope(document, "litmus_test")
    outcome = {(key[0], key[1]): value for key, value in document["outcome"]}
    return LitmusTest(
        document["name"],
        _program_from_json(document["program"]),
        outcome,
        document.get("description", ""),
    )


def model_to_json(model: MemoryModel) -> Dict[str, Any]:
    """Serialize a formula-defined memory model.

    Models whose must-not-reorder function is an arbitrary Python callable
    have no JSON representation and raise :class:`SerializationError`.
    """
    if model.formula is None:
        raise SerializationError(
            f"model {model.name!r} is defined by a Python callable and cannot be "
            "serialized; express it in the formula DSL to make it portable"
        )
    document = envelope("model")
    document.update(
        {
            "name": model.name,
            "formula": str(model.formula),
            "predicates": list(model.predicates.names()),
            "description": model.description,
        }
    )
    return document


def model_from_json(document: Dict[str, Any]) -> MemoryModel:
    """Rebuild a memory model serialized by :func:`model_to_json`."""
    check_envelope(document, "model")
    registry = default_registry()
    predicates = []
    for name in document["predicates"]:
        if name not in registry:
            raise SerializationError(f"unknown predicate {name!r} in model document")
        predicates.append(registry[name])
    return MemoryModel(
        document["name"],
        parse_formula(document["formula"]),
        PredicateSet(predicates),
        document.get("description", ""),
    )


# ----------------------------------------------------------------------
# events and witnesses
# ----------------------------------------------------------------------
def _event_to_json(event: Event) -> Dict[str, Any]:
    return {
        "thread": event.thread_index,
        "index": event.index,
        "instruction": _instruction_to_json(event.instruction),
    }


def _event_from_json(data: Dict[str, Any]) -> Event:
    return Event(data["thread"], data["index"], _instruction_from_json(data["instruction"]))


def _witness_to_json(witness: CheckWitness) -> Dict[str, Any]:
    return {
        "read_from": [
            [_event_to_json(load), None if store is None else _event_to_json(store)]
            for load, store in witness.read_from
        ],
        "coherence": [
            [location, [_event_to_json(store) for store in stores]]
            for location, stores in witness.coherence
        ],
        "edges": [
            [_event_to_json(source), _event_to_json(target), kind]
            for source, target, kind in witness.edges
        ],
    }


def _witness_from_json(data: Dict[str, Any]) -> CheckWitness:
    read_from: Tuple[Tuple[Event, Optional[Event]], ...] = tuple(
        (_event_from_json(load), None if store is None else _event_from_json(store))
        for load, store in data["read_from"]
    )
    coherence = tuple(
        (location, tuple(_event_from_json(store) for store in stores))
        for location, stores in data["coherence"]
    )
    edges: Tuple[HbEdge, ...] = tuple(
        (_event_from_json(source), _event_from_json(target), kind)
        for source, target, kind in data["edges"]
    )
    return CheckWitness(read_from, coherence, edges)


# ----------------------------------------------------------------------
# result types
# ----------------------------------------------------------------------
def check_result_to_json(result: CheckResult) -> Dict[str, Any]:
    document = envelope("check_result")
    document.update(
        {
            "allowed": result.allowed,
            "test_name": result.test_name,
            "model_name": result.model_name,
            "reason": result.reason,
            "witness": None if result.witness is None else _witness_to_json(result.witness),
        }
    )
    return document


def check_result_from_json(document: Dict[str, Any]) -> CheckResult:
    check_envelope(document, "check_result")
    witness = document.get("witness")
    return CheckResult(
        allowed=document["allowed"],
        test_name=document.get("test_name", ""),
        model_name=document.get("model_name", ""),
        witness=None if witness is None else _witness_from_json(witness),
        reason=document.get("reason", ""),
    )


def comparison_result_to_json(result: ComparisonResult) -> Dict[str, Any]:
    document = envelope("comparison_result")
    document.update(
        {
            "first": result.first,
            "second": result.second,
            "relation": result.relation.value,
            "only_first": list(result.only_first),
            "only_second": list(result.only_second),
        }
    )
    return document


def comparison_result_from_json(document: Dict[str, Any]) -> ComparisonResult:
    check_envelope(document, "comparison_result")
    return ComparisonResult(
        first=document["first"],
        second=document["second"],
        relation=Relation(document["relation"]),
        only_first=tuple(document["only_first"]),
        only_second=tuple(document["only_second"]),
    )


def engine_stats_to_json(stats: EngineStats) -> Dict[str, Any]:
    return dict(stats.as_dict())


def engine_stats_from_json(data: Dict[str, Any]) -> EngineStats:
    known = EngineStats().as_dict()
    unknown = [key for key in data if key not in known]
    if unknown:
        raise SerializationError(f"unknown EngineStats counters: {unknown}")
    return EngineStats(**data)


def _hasse_edge_to_json(edge: HasseEdge) -> Dict[str, Any]:
    return {
        "weaker": edge.weaker,
        "stronger": edge.stronger,
        "tests": list(edge.tests),
        "preferred_tests": list(edge.preferred_tests),
    }


def _hasse_edge_from_json(data: Dict[str, Any]) -> HasseEdge:
    return HasseEdge(
        weaker=data["weaker"],
        stronger=data["stronger"],
        tests=tuple(data["tests"]),
        preferred_tests=tuple(data.get("preferred_tests", ())),
    )


def exploration_result_to_json(result: ExplorationResult) -> Dict[str, Any]:
    document = envelope("exploration_result")
    document.update(
        {
            "models": [model_to_json(model) for model in result.models],
            "tests": [test_to_json(test) for test in result.tests],
            "vectors": {
                name: list(vector) for name, vector in result.vectors.items()
            },
            "equivalence_classes": [list(cls) for cls in result.equivalence_classes],
            "hasse_edges": [_hasse_edge_to_json(edge) for edge in result.hasse_edges],
            "checks_performed": result.checks_performed,
            "stats": None if result.stats is None else engine_stats_to_json(result.stats),
        }
    )
    return document


def exploration_result_from_json(document: Dict[str, Any]) -> ExplorationResult:
    check_envelope(document, "exploration_result")
    stats = document.get("stats")
    return ExplorationResult(
        models=[model_from_json(model) for model in document["models"]],
        tests=[test_from_json(test) for test in document["tests"]],
        vectors={
            name: tuple(vector) for name, vector in document["vectors"].items()
        },
        equivalence_classes=[tuple(cls) for cls in document["equivalence_classes"]],
        hasse_edges=[_hasse_edge_from_json(edge) for edge in document["hasse_edges"]],
        checks_performed=document.get("checks_performed", 0),
        stats=None if stats is None else engine_stats_from_json(stats),
    )


def equivalence_report_to_json(report: EquivalenceReport) -> Dict[str, Any]:
    document = envelope("equivalence_report")
    document.update(
        {
            "bound": report.bound,
            "space": report.space,
            "suite": report.suite,
            "backend": report.backend,
            "model_names": list(report.model_names),
            "raw_tests": report.raw_tests,
            "unique_tests": report.unique_tests,
            "shards_total": report.shards_total,
            "shards_checked": report.shards_checked,
            "shards_resumed": report.shards_resumed,
            "checks_performed": report.checks_performed,
            "equivalence_classes": [list(cls) for cls in report.equivalence_classes],
            "hasse_edges": [list(edge) for edge in report.hasse_edges],
            "template_classes": [list(cls) for cls in report.template_classes],
            "template_hasse_edges": [list(edge) for edge in report.template_hasse_edges],
            "matches_template": report.matches_template,
            "mismatches": list(report.mismatches),
            "stats": None if report.stats is None else engine_stats_to_json(report.stats),
            "elapsed_seconds": report.elapsed_seconds,
            "shards_quarantined": report.shards_quarantined,
            "quarantined_shards": list(report.quarantined_shards),
            "complete": report.complete,
            "adaptive": report.adaptive,
            "profile_skips": report.profile_skips,
            "frontier_skips": report.frontier_skips,
            "audits_performed": report.audits_performed,
        }
    )
    return document


def equivalence_report_from_json(document: Dict[str, Any]) -> EquivalenceReport:
    check_envelope(document, "equivalence_report")
    stats = document.get("stats")
    return EquivalenceReport(
        bound=document["bound"],
        space=document["space"],
        suite=document["suite"],
        backend=document["backend"],
        model_names=list(document["model_names"]),
        raw_tests=document["raw_tests"],
        unique_tests=document["unique_tests"],
        shards_total=document["shards_total"],
        shards_checked=document["shards_checked"],
        shards_resumed=document["shards_resumed"],
        checks_performed=document["checks_performed"],
        equivalence_classes=[tuple(cls) for cls in document["equivalence_classes"]],
        hasse_edges=[(edge[0], edge[1]) for edge in document["hasse_edges"]],
        template_classes=[tuple(cls) for cls in document["template_classes"]],
        template_hasse_edges=[
            (edge[0], edge[1]) for edge in document["template_hasse_edges"]
        ],
        matches_template=document["matches_template"],
        mismatches=list(document.get("mismatches", [])),
        stats=None if stats is None else engine_stats_from_json(stats),
        elapsed_seconds=document.get("elapsed_seconds", 0.0),
        # Absent in pre-fault-tolerance documents: default to a complete run.
        shards_quarantined=document.get("shards_quarantined", 0),
        quarantined_shards=list(document.get("quarantined_shards", [])),
        complete=document.get("complete", True),
        # Absent in pre-adaptive documents: default to a brute-force run.
        adaptive=document.get("adaptive", False),
        profile_skips=document.get("profile_skips", 0),
        frontier_skips=document.get("frontier_skips", 0),
        audits_performed=document.get("audits_performed", 0),
    )


def synthesis_result_to_json(result: "SynthesisResult") -> Dict[str, Any]:
    document = envelope("synthesis_result")
    document.update(
        {
            "space": result.space,
            "backend": result.backend,
            "observations": [[name, allowed] for name, allowed in result.observations],
            "models_considered": result.models_considered,
            "consistent_models": list(result.consistent_models),
            "weakest": list(result.weakest),
            "strongest": list(result.strongest),
            "witnesses": [
                {
                    "model": witness.model,
                    "test": witness.test,
                    "observed": witness.observed,
                    "predicted": witness.predicted,
                }
                for witness in result.witnesses
            ],
            "conflict_core": list(result.conflict_core),
            "suggestions": [
                {
                    "test": suggestion.test,
                    "separates_pairs": suggestion.separates_pairs,
                    "allowed_models": suggestion.allowed_models,
                    "forbidden_models": suggestion.forbidden_models,
                }
                for suggestion in result.suggestions
            ],
            "stats": None if result.stats is None else engine_stats_to_json(result.stats),
        }
    )
    return document


def synthesis_result_from_json(document: Dict[str, Any]) -> "SynthesisResult":
    from repro.synth.engine import ExclusionWitness, SynthesisResult, TestSuggestion

    check_envelope(document, "synthesis_result")
    stats = document.get("stats")
    return SynthesisResult(
        space=document["space"],
        backend=document["backend"],
        observations=tuple(
            (name, allowed) for name, allowed in document["observations"]
        ),
        models_considered=document["models_considered"],
        consistent_models=tuple(document["consistent_models"]),
        weakest=tuple(document["weakest"]),
        strongest=tuple(document["strongest"]),
        witnesses=tuple(
            ExclusionWitness(
                model=witness["model"],
                test=witness["test"],
                observed=witness["observed"],
                predicted=witness["predicted"],
            )
            for witness in document["witnesses"]
        ),
        conflict_core=tuple(document.get("conflict_core", ())),
        suggestions=tuple(
            TestSuggestion(
                test=suggestion["test"],
                separates_pairs=suggestion["separates_pairs"],
                allowed_models=suggestion["allowed_models"],
                forbidden_models=suggestion["forbidden_models"],
            )
            for suggestion in document.get("suggestions", ())
        ),
        stats=None if stats is None else engine_stats_from_json(stats),
    )


def outcome_set_to_json(result: OutcomeSet) -> Dict[str, Any]:
    document = envelope("outcome_set")
    document.update(
        {
            "test_name": result.test_name,
            "model_name": result.model_name,
            "outcomes": [dict(outcome) for outcome in result.outcomes],
        }
    )
    return document


def outcome_set_from_json(document: Dict[str, Any]) -> OutcomeSet:
    check_envelope(document, "outcome_set")
    return OutcomeSet(
        test_name=document["test_name"],
        model_name=document["model_name"],
        outcomes=[dict(outcome) for outcome in document["outcomes"]],
    )


# ----------------------------------------------------------------------
# generic dispatch
# ----------------------------------------------------------------------
def _synth_types():
    # Deferred: repro.synth imports this module for envelopes.
    from repro.synth.engine import SynthesisResult
    from repro.synth.observations import ObservationSet, VerdictDocument

    return SynthesisResult, ObservationSet, VerdictDocument


_TO_JSON: Tuple[Tuple[type, Callable[[Any], Dict[str, Any]]], ...] = (
    (CheckResult, check_result_to_json),
    (ComparisonResult, comparison_result_to_json),
    (ExplorationResult, exploration_result_to_json),
    (EquivalenceReport, equivalence_report_to_json),
    (OutcomeSet, outcome_set_to_json),
    (LitmusTest, test_to_json),
    (MemoryModel, model_to_json),
    (EngineStats, lambda stats: dict(envelope("engine_stats"), counters=engine_stats_to_json(stats))),
)

_FROM_JSON: Dict[str, Callable[[Dict[str, Any]], Any]] = {
    "check_result": check_result_from_json,
    "comparison_result": comparison_result_from_json,
    "exploration_result": exploration_result_from_json,
    "equivalence_report": equivalence_report_from_json,
    "outcome_set": outcome_set_from_json,
    "litmus_test": test_from_json,
    "model": model_from_json,
    "engine_stats": lambda document: engine_stats_from_json(document["counters"]),
    "synthesis_result": synthesis_result_from_json,
    "observations": lambda document: _synth_types()[1].from_json(document),
    "verdicts": lambda document: _synth_types()[2].from_json(document),
}


def to_json(obj: Any) -> Dict[str, Any]:
    """Serialize any supported result object to a schema-versioned document."""
    for cls, writer in _TO_JSON:
        if isinstance(obj, cls):
            return writer(obj)
    SynthesisResult, ObservationSet, VerdictDocument = _synth_types()
    if isinstance(obj, SynthesisResult):
        return synthesis_result_to_json(obj)
    if isinstance(obj, (ObservationSet, VerdictDocument)):
        return obj.to_json()
    raise SerializationError(f"cannot serialize objects of type {type(obj).__name__}")


def from_json(document: Dict[str, Any]) -> Any:
    """Rebuild an object from any document written by :func:`to_json`."""
    kind = check_envelope(document)
    reader = _FROM_JSON.get(kind)
    if reader is None:
        raise SerializationError(f"unknown document kind {kind!r}")
    return reader(document)
