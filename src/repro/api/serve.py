"""``repro serve``: a production-hardened JSON-lines request/response loop.

One warm :class:`~repro.api.session.Session` answers a stream of request
documents, one JSON object per line, writing one JSON response object per
line.  Because the session (and therefore the engine and its caches)
persists across requests, a ``compare`` following an ``explore`` over the
same suite is answered almost entirely from cache — each response carries
the per-request :class:`~repro.engine.engine.EngineStats` delta so the
reuse is observable.

Transports:

* stdin/stdout (the default; also ``python -m repro.api.serve``);
* a TCP socket (``--port``): one JSON-lines conversation per connection.
  Each connection gets its own lightweight :meth:`Session.view` (private
  registries over one shared engine); engine-touching requests execute on
  a bounded worker pool (``--workers``), while ``check`` requests whose
  verdict is already in the shared digest-keyed verdict cache
  (``--cache-dir``; see :mod:`repro.cache`) are answered on the
  connection thread without queueing at all — the concurrency fast path.

Protocol::

    -> {"op": "check", "test": "SB.litmus", "model": "TSO"}
    <- {"schema": "repro/response", "schema_version": 1, "ok": true,
        "op": "check", "result": {...}, "stats": {...}}

Request lines may be bare ``{"op": ...}`` objects or full
``repro/request`` documents (see :mod:`repro.api.requests`).  Three ops
are built into the server itself: ``{"op": "health"}`` (liveness, uptime,
in-flight/queue depth, drain status), ``{"op": "stats"}`` (request
counters plus the engine's cumulative :class:`EngineStats`, including the
resolved ``kernel_backend``) and ``{"op": "metrics"}`` (the full metrics
document of :func:`repro.api.metrics.metrics_document`); all three bypass
the dispatcher and the deadline so they answer even while the engine is
busy.  With ``--metrics-port`` the same metrics are scrapeable over HTTP
in the Prometheus text format.

Robustness (see ``docs/operations.md`` for the full operational story):

* **Errors are machine-readable.**  Failures answer
  ``{"ok": false, "error": {"code": ..., "message": ...}}`` with a code
  from :data:`ERROR_CODES`; ``internal`` is the catch-all, so no
  exception class can kill a connection loop (the traceback goes to the
  structured log, not the client).
* **Deadlines.**  With a ``--timeout``, each request runs under a
  watchdog; past the deadline the client gets ``deadline_exceeded`` and
  the request is abandoned (its worker thread finishes in the
  background).
* **Bounded input.**  Request lines longer than ``--max-line-bytes``
  answer ``request_too_large`` (the oversized line is discarded without
  buffering it).
* **Backpressure.**  At most ``--max-connections`` conversations run
  concurrently; beyond that, connections wait in a bounded admission
  queue and are shed with a one-line ``overloaded`` error once the queue
  is full (or the wait exceeds the admission timeout).
* **Idle timeouts.**  Socket connections idle past ``--idle-timeout``
  are closed.
* **Graceful drain.**  SIGTERM/SIGINT stop the accept loop, let in-flight
  requests finish (bounded by ``--drain-grace``), flush, and exit 0.
* **Structured logs.**  One JSON object per line on stderr
  (``serve_start``, ``conn_open``, ``request``, ``drain_begin``, ...).

A malformed line produces an ``{"ok": false, "error": {...}}`` response
and the loop continues; the loop ends at end of input or on drain.
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import signal
import sys
import socketserver
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, IO, Iterator, Optional, Sequence, Tuple, Union

from repro.api.metrics import ServeMetrics, metrics_document, start_metrics_server
from repro.api.requests import request_from_json
from repro.api.serialize import envelope, to_json
from repro.api.session import Session
from repro.util import faults

# ----------------------------------------------------------------------
# error taxonomy
# ----------------------------------------------------------------------
#: Machine-readable error codes, the full taxonomy:
#:
#: ================== ==================================================
#: invalid_request    malformed JSON, unknown op/field, schema mismatch,
#:                    unknown model/test name, malformed embedded docs
#: request_too_large  request line exceeded ``max_line_bytes``
#: deadline_exceeded  request ran past ``timeout`` and was abandoned
#: overloaded         shed by the connection cap / admission queue
#: unavailable        server is draining and takes no new requests
#: internal           unexpected exception (catch-all; traceback logged)
#: ================== ==================================================
ERROR_CODES = (
    "invalid_request",
    "request_too_large",
    "deadline_exceeded",
    "overloaded",
    "unavailable",
    "internal",
)

#: Ops answered by the server itself, without touching the dispatcher.
BUILTIN_OPS = ("health", "stats", "metrics")


class ServeError(Exception):
    """A failure with a machine-readable code from :data:`ERROR_CODES`."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        assert code in ERROR_CODES, code
        self.code = code

    def body(self) -> Dict[str, str]:
        return error_body(self.code, str(self))


def error_body(code: str, message: str) -> Dict[str, str]:
    """The ``error`` field of a failed response."""
    return {"code": code, "message": message}


def error_response(code: str, message: str, op: Optional[str] = None) -> Dict[str, Any]:
    """A complete one-line error response document."""
    response = envelope("response")
    response["ok"] = False
    if op is not None:
        response["op"] = op
    response["error"] = error_body(code, message)
    return response


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
def _env_value(name: str, cast: Callable, default):
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return cast(raw)
    except ValueError:
        return default


@dataclass
class ServeConfig:
    """Limits and operational knobs for the serve loop.

    Every field has a CLI flag and a ``REPRO_SERVE_*`` environment
    variable (flag > env > default); see :meth:`from_env`.
    """

    #: per-request deadline in seconds; None = unbounded
    timeout: Optional[float] = None
    #: maximum request line length in bytes
    max_line_bytes: int = 10 * 1024 * 1024
    #: maximum concurrently-served connections
    max_connections: int = 64
    #: connections allowed to wait for a slot before being shed
    admission_queue: int = 128
    #: how long a queued connection waits for a slot before being shed
    admission_timeout: float = 10.0
    #: close socket connections idle this long; None = never
    idle_timeout: Optional[float] = 300.0
    #: how long a drain waits for in-flight requests before giving up
    drain_grace: float = 30.0
    #: engine-touching requests executing concurrently (the worker pool)
    workers: int = 4
    #: requests allowed to queue for a worker before being shed
    queue_limit: int = 256
    #: directory for the persistent verdict-cache tier; None = memory only
    cache_dir: Optional[str] = None
    #: verdict-cache memory-tier entry cap
    cache_capacity: int = 1 << 20
    #: serve Prometheus metrics over HTTP on this port; None = off
    metrics_port: Optional[int] = None
    #: structured-log destination; None = stderr
    log_stream: Optional[IO[str]] = None
    #: emit structured log events at all
    log_enabled: bool = True

    @classmethod
    def from_env(cls, **overrides: object) -> "ServeConfig":
        """Build a config from ``REPRO_SERVE_*`` variables plus overrides.

        Overrides whose value is ``None`` are ignored, so CLI flags that
        were not passed fall through to the environment, then defaults.
        """
        config = cls(
            timeout=_env_value("REPRO_SERVE_TIMEOUT", float, None),
            max_line_bytes=_env_value("REPRO_SERVE_MAX_LINE_BYTES", int, cls.max_line_bytes),
            max_connections=_env_value("REPRO_SERVE_MAX_CONNECTIONS", int, cls.max_connections),
            admission_queue=_env_value("REPRO_SERVE_ADMISSION_QUEUE", int, cls.admission_queue),
            admission_timeout=_env_value(
                "REPRO_SERVE_ADMISSION_TIMEOUT", float, cls.admission_timeout
            ),
            idle_timeout=_env_value("REPRO_SERVE_IDLE_TIMEOUT", float, cls.idle_timeout),
            drain_grace=_env_value("REPRO_SERVE_DRAIN_GRACE", float, cls.drain_grace),
            workers=_env_value("REPRO_SERVE_WORKERS", int, cls.workers),
            queue_limit=_env_value("REPRO_SERVE_QUEUE_LIMIT", int, cls.queue_limit),
            cache_dir=_env_value("REPRO_SERVE_CACHE_DIR", str, None),
            cache_capacity=_env_value("REPRO_SERVE_CACHE_CAPACITY", int, cls.cache_capacity),
            metrics_port=_env_value("REPRO_SERVE_METRICS_PORT", int, None),
        )
        for name, value in overrides.items():
            if value is not None:
                setattr(config, name, value)
        return config


class ServerState:
    """Shared mutable server state: counters, in-flight depth, drain flag."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.lock = threading.Lock()
        self._idle = threading.Condition(self.lock)
        self.started_monotonic = time.monotonic()
        self.started_at = time.time()
        self.requests_total = 0
        self.requests_ok = 0
        self.errors_by_code: Dict[str, int] = {}
        self.in_flight = 0
        self.connections_active = 0
        self.connections_total = 0
        self.connections_shed = 0
        self.waiting = 0
        self.draining = False
        #: True while the stdio transport is blocked reading the next line
        #: (the drain signal handler may only interrupt an idle read).
        self.reading = False
        #: per-op request counters and latency histograms
        self.metrics = ServeMetrics()
        #: the worker pool, when the socket transport created one (its
        #: queue depth feeds the snapshot/metrics gauges)
        self.dispatcher: Optional["Dispatcher"] = None

    # -- structured logging --------------------------------------------
    def log(self, event: str, **fields: object) -> None:
        if not self.config.log_enabled:
            return
        record: Dict[str, object] = {"ts": round(time.time(), 3), "event": event}
        record.update(fields)
        stream = self.config.log_stream if self.config.log_stream is not None else sys.stderr
        try:
            stream.write(json.dumps(record) + "\n")
            stream.flush()
        except (OSError, ValueError):  # a closed log stream must never kill serving
            pass

    # -- request accounting --------------------------------------------
    def begin_request(self) -> None:
        with self.lock:
            self.in_flight += 1

    def end_request(self, response: Dict[str, Any]) -> None:
        """Count a finished request *after* its response was written."""
        with self._idle:
            self.in_flight -= 1
            self.requests_total += 1
            if response.get("ok"):
                self.requests_ok += 1
            else:
                code = (response.get("error") or {}).get("code", "internal")
                self.errors_by_code[code] = self.errors_by_code.get(code, 0) + 1
            self._idle.notify_all()

    def wait_idle(self, grace: float) -> bool:
        """Wait until no request is in flight; False if ``grace`` ran out."""
        deadline = time.monotonic() + grace
        with self._idle:
            while self.in_flight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(min(remaining, 0.5))
        return True

    def uptime(self) -> float:
        return time.monotonic() - self.started_monotonic

    def snapshot(self, exclude_self: bool = False) -> Dict[str, object]:
        """The server counters; truthful by default.

        ``exclude_self`` subtracts the *calling* request from the
        in-flight gauge — set only when the snapshot is taken from inside
        a counted builtin request, so that a direct ``snapshot()`` call
        (tests, the metrics endpoint's scrape thread) reports the real
        depth instead of the old unconditional ``in_flight - 1`` hack.
        """
        dispatcher = self.dispatcher
        queue_depth = dispatcher.depth() if dispatcher is not None else 0
        with self.lock:
            in_flight = self.in_flight
            if exclude_self:
                in_flight = max(0, in_flight - 1)
            return {
                "uptime_seconds": round(self.uptime(), 3),
                "requests_total": self.requests_total,
                "requests_ok": self.requests_ok,
                "errors_by_code": dict(self.errors_by_code),
                "in_flight": in_flight,
                "queue_depth": queue_depth,
                "connections_active": self.connections_active,
                "connections_total": self.connections_total,
                "connections_shed": self.connections_shed,
                "draining": self.draining,
            }


# ----------------------------------------------------------------------
# the worker-pool dispatcher
# ----------------------------------------------------------------------
class _Job:
    """One queued request: a thunk plus its completion event."""

    __slots__ = ("fn", "done", "result", "error")

    def __init__(self, fn: Callable[[], Any]) -> None:
        self.fn = fn
        self.done = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            self.result = self.fn()
        except BaseException as error:  # delivered to the waiting caller
            self.error = error
        finally:
            self.done.set()

    def wait(self, timeout: Optional[float]) -> bool:
        """True when the job finished in time; re-raises what it raised.

        On timeout the job is simply abandoned: the worker finishes it in
        the background (any lock it needs is acquired inside ``fn``, so
        an abandoned job cannot leak one to its waiter).
        """
        if not self.done.wait(timeout):
            return False
        if self.error is not None:
            raise self.error
        return True


class Dispatcher:
    """A bounded pool of worker threads executing engine-touching requests.

    Connections enqueue jobs and wait (bounded by the per-request
    deadline); the queue itself is bounded, so a flood of slow requests
    sheds with ``overloaded`` instead of accumulating unbounded work.
    Cache-hit ``check`` requests never come here — the serve fast path
    answers them on the connection thread.
    """

    def __init__(self, workers: int = 4, queue_limit: int = 256) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._queue: "queue.Queue[Optional[_Job]]" = queue.Queue(maxsize=max(1, queue_limit))
        self._threads = [
            threading.Thread(target=self._loop, daemon=True, name=f"repro-serve-worker-{i}")
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def _loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            job.run()

    def submit(self, fn: Callable[[], Any]) -> _Job:
        """Enqueue a thunk; raises ``overloaded`` when the queue is full."""
        job = _Job(fn)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            raise ServeError(
                "overloaded", f"request queue is full ({self._queue.maxsize} waiting)"
            )
        return job

    def depth(self) -> int:
        """Jobs waiting for a worker (approximate, lock-free)."""
        return self._queue.qsize()

    def close(self) -> None:
        """Stop the workers after the queue drains (used at shutdown)."""
        for _ in self._threads:
            self._queue.put(None)


# ----------------------------------------------------------------------
# request handling
# ----------------------------------------------------------------------
def _call_with_deadline(fn: Callable[[], Any], timeout: float) -> Tuple[bool, Any]:
    """Run ``fn`` on a watchdog-supervised thread.

    Returns ``(True, result)`` when it finished within ``timeout`` —
    re-raising anything it raised — or ``(False, None)`` when the deadline
    passed and the request was abandoned (the thread keeps running to
    completion in the background; any lock it needs is acquired inside
    ``fn``, so an abandoned request releases the engine when it is done).
    """
    box: Dict[str, Any] = {}
    done = threading.Event()

    def target() -> None:
        try:
            box["result"] = fn()
        except BaseException as error:  # re-raised on the caller's thread
            box["error"] = error
        finally:
            done.set()

    thread = threading.Thread(target=target, daemon=True, name="repro-serve-request")
    thread.start()
    if not done.wait(timeout):
        return False, None
    if "error" in box:
        raise box["error"]
    return True, box["result"]


def _builtin_result(
    op: str, session: Session, state: Optional[ServerState], counted: bool = False
) -> Dict[str, Any]:
    """Answer a built-in ``health`` / ``stats`` / ``metrics`` op.

    ``counted`` is True when the caller already counted this request
    in-flight (the serve loops do; direct ``handle_request_line`` calls
    do not), so the in-flight gauge can exclude exactly the builtin
    request itself and nothing else.
    """
    if state is None:
        state = ServerState(ServeConfig(log_enabled=False))
    if op == "health":
        dispatcher = state.dispatcher
        with state.lock:
            in_flight = state.in_flight
        if counted:
            in_flight = max(0, in_flight - 1)
        return {
            "status": "draining" if state.draining else "ok",
            "uptime_seconds": round(state.uptime(), 3),
            "in_flight": in_flight,
            "queue_depth": dispatcher.depth() if dispatcher is not None else 0,
        }
    if op == "metrics":
        return metrics_document(state, session, exclude_self=counted)
    return {
        "server": state.snapshot(exclude_self=counted),
        "engine": session.engine.stats.as_dict(),
        "session": session.info(),
    }


#: Request-document keys the cache fast path understands; anything else
#: (enveloped documents, unknown fields) takes the full validation path.
_FAST_CHECK_KEYS = frozenset(("op", "test", "model", "witness"))


def _fast_check(session: Session, document: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """Answer a warm ``check`` from the verdict cache, or None to fall through.

    This is the serve concurrency fast path: no request dataclass, no
    dispatcher queue, no engine dispatch, no full stats snapshot — just
    two registry dict hits, one cache lookup and one brief engine-lock
    acquisition for the counters.  Only taken when it provably answers
    exactly what the slow path would: a bare witness-less ``check`` of a
    registered test name against a registered model name whose
    ``(model digest, test digest)`` verdict is already cached.
    """
    engine = session.engine
    vcache = engine.verdict_cache
    if vcache is None or not engine._cacheable or faults._FAULTS:
        return None
    if document.get("witness") or not _FAST_CHECK_KEYS.issuperset(document):
        return None
    test_spec = document.get("test")
    model_spec = document.get("model")
    if not isinstance(test_spec, str) or not isinstance(model_spec, str):
        return None
    if test_spec not in session.tests or model_spec not in session.models:
        return None
    test = session.tests.resolve(test_spec)
    model = session.models.resolve(model_spec)
    key = vcache.key_for(test, model)
    if key is None:
        return None
    verdict = vcache.get(key)
    if verdict is None:
        return None
    with engine.lock:
        engine.stats.checks_performed += 1
        engine.stats.verdict_cache_hits += 1
        kernel_backend = engine.stats.kernel_backend
    from repro.checker.result import CheckResult
    from repro.engine.engine import EngineStats

    result = CheckResult(
        allowed=verdict, test_name=test.name, model_name=model.name,
        witness=None, reason="",
    )
    delta = EngineStats(
        checks_performed=1, verdict_cache_hits=1, kernel_backend=kernel_backend
    )
    response = envelope("response")
    response.update(
        {"ok": True, "op": "check", "result": to_json(result), "stats": delta.as_dict()}
    )
    return response


#: Per-connection response-memo capacity (distinct request lines).
_MEMO_LIMIT = 1024


def _count_memo_hit(session: Session) -> None:
    """Book a memoised cache-hit check with exactly the fast path's delta."""
    engine = session.engine
    with engine.lock:
        engine.stats.checks_performed += 1
        engine.stats.verdict_cache_hits += 1
    vcache = engine.verdict_cache
    if vcache is not None:
        vcache.note_hit()


def handle_request_line(
    session: Session,
    line: str,
    state: Optional[ServerState] = None,
    config: Optional[ServeConfig] = None,
    lock: Optional[threading.Lock] = None,
    dispatcher: Optional[Dispatcher] = None,
    counted: bool = False,
    memo: Optional[Dict[str, Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Answer one JSON request line; never raises on any input.

    ``dispatcher`` routes engine-touching requests through the worker
    pool; without one, ``lock`` serialises engine access when several
    transports share one session (both are acquired *inside* the possibly
    deadline-supervised request body so an abandoned request cannot leak
    them).  ``counted`` tells builtin ops whether the caller already
    counted this request in the in-flight gauge.

    ``memo`` is the connection-private response memo (L1 of the cache
    hierarchy, above the process verdict cache and its persistent tier):
    a repeated verbatim fast-path check line is answered from it with one
    dict hit plus the counter bump.  Deterministic verdicts make the
    repeat response byte-identical, so only registry rebinding can
    invalidate it — any request that reaches the generic path clears the
    memo wholesale.
    """
    if config is None:
        config = state.config if state is not None else ServeConfig()
    response = envelope("response")
    op: Optional[str] = None
    preserve_memo = False
    started = time.monotonic()
    try:
        if memo is not None and not faults._FAULTS:
            hit = memo.get(line)
            if hit is not None:
                op = "check"
                _count_memo_hit(session)
                preserve_memo = True
                response = hit
                return response
        try:
            document = json.loads(line)
        except ValueError as error:
            raise ServeError("invalid_request", f"malformed JSON: {error}")
        if isinstance(document, dict):
            raw_op = document.get("op")
            op = raw_op if isinstance(raw_op, str) else None
        if op in BUILTIN_OPS:
            # Built-in ops bypass the dispatcher and the deadline so they
            # answer even while the engine is wedged on a long request.
            preserve_memo = True  # read-only: cannot rebind registries
            response.update(
                {"ok": True, "op": op,
                 "result": _builtin_result(op, session, state, counted=counted)}
            )
            return response
        if op == "check":
            fast = _fast_check(session, document)
            if fast is not None:
                if memo is not None and not faults._FAULTS and len(memo) < _MEMO_LIMIT:
                    memo[line] = fast
                preserve_memo = True
                response = fast
                return response
        request = request_from_json(document)
        op = request.op

        def run() -> Tuple[Any, Any]:
            faults.fire("serve.request", op=op)
            if lock is not None:
                with lock:
                    return _dispatch(session, request)
            return _dispatch(session, request)

        if dispatcher is not None:
            job = dispatcher.submit(run)
            if not job.wait(config.timeout):
                if state is not None:
                    state.log("deadline_exceeded", op=op, timeout=config.timeout)
                raise ServeError(
                    "deadline_exceeded",
                    f"request exceeded the {config.timeout:g}s deadline and was abandoned",
                )
            value = job.result
        elif config.timeout is not None:
            finished, value = _call_with_deadline(run, config.timeout)
            if not finished:
                if state is not None:
                    state.log("deadline_exceeded", op=op, timeout=config.timeout)
                raise ServeError(
                    "deadline_exceeded",
                    f"request exceeded the {config.timeout:g}s deadline and was abandoned",
                )
        else:
            value = run()
        result, stats_delta = value
        response.update(
            {"ok": True, "op": op, "result": to_json(result), "stats": stats_delta.as_dict()}
        )
    except ServeError as error:
        if op is not None:
            response["op"] = op
        response.update({"ok": False, "error": error.body()})
    except (ValueError, TypeError, LookupError, OSError) as error:
        # The expected bad-request family: JSONDecodeError/SerializationError
        # (ValueError), KeyErrors from malformed documents (LookupError),
        # missing files behind path specs (OSError).
        if op is not None:
            response["op"] = op
        response.update({"ok": False, "error": error_body("invalid_request", str(error))})
    except Exception as error:  # noqa: BLE001 - the catch-all IS the contract:
        # no exception class may kill the connection loop.  The client gets
        # a structured `internal` error; the traceback goes to the log.
        if op is not None:
            response["op"] = op
        if state is not None:
            state.log(
                "internal_error",
                op=op,
                error=f"{type(error).__name__}: {error}",
                traceback=traceback.format_exc(limit=20),
            )
        response.update(
            {
                "ok": False,
                "error": error_body("internal", f"{type(error).__name__}: {error}"),
            }
        )
    finally:
        if memo is not None and not preserve_memo and memo:
            # Anything that reached the generic path may have rebound a
            # registry name out from under a memoised response.
            memo.clear()
        if state is not None:
            duration = time.monotonic() - started
            code = (response.get("error") or {}).get("code")
            state.metrics.record(op, code if code else "ok", duration)
            state.log(
                "request",
                op=op,
                ok=bool(response.get("ok")),
                code=code,
                duration_ms=round(duration * 1000.0, 3),
            )
    return response


def _dispatch(session: Session, request: Any) -> Tuple[Any, Any]:
    # The engine lock is held across the whole dispatch so the
    # snapshot/since delta is exactly this request's work even when other
    # workers run concurrently (the fast path never comes here — it
    # builds its own one-counter delta under a brief lock acquisition).
    engine = session.engine
    with engine.lock:
        before = engine.stats.snapshot()
        result = session.run(request)
        return result, engine.stats.since(before)


# ----------------------------------------------------------------------
# line transport
# ----------------------------------------------------------------------
#: Sentinel yielded by :func:`_iter_limited_lines` for an oversized line.
OVERSIZED = object()


def _iter_limited_lines(stream: Any, max_len: int) -> Iterator[Union[str, object]]:
    """Yield request lines, or :data:`OVERSIZED` for over-limit lines.

    Oversized lines are discarded chunk by chunk (never buffered whole),
    so a hostile peer cannot make the server hold an arbitrarily large
    line in memory.  Streams without ``readline`` (plain iterables, used
    by some tests) are iterated directly with a post-hoc length check.
    """
    readline = getattr(stream, "readline", None)
    if readline is None:
        for line in stream:
            yield OVERSIZED if len(line) > max_len + 1 else line
        return
    while True:
        line = stream.readline(max_len + 1)
        if not line:
            return
        if len(line) > max_len and not line.endswith("\n"):
            while True:  # discard the rest of the oversized line
                rest = stream.readline(max_len + 1)
                if not rest or rest.endswith("\n"):
                    break
            yield OVERSIZED
            continue
        yield line


def serve_stream(
    session: Session,
    input_stream: Any,
    output_stream: IO[str],
    lock: Optional[threading.Lock] = None,
    state: Optional[ServerState] = None,
    config: Optional[ServeConfig] = None,
    dispatcher: Optional[Dispatcher] = None,
) -> int:
    """Answer request lines from ``input_stream`` until end of input.

    Returns the number of lines answered.  ``lock`` serialises engine
    access when several transports share one session; with a ``state``
    the loop also counts requests, honours the drain flag (stop after
    the current response once draining), and enforces the configured
    line-length limit.
    """
    if config is None:
        config = state.config if state is not None else ServeConfig()
    answered = 0
    #: connection-private response memo (line -> response dict) plus the
    #: rendered text of each memoised response, so a repeated line costs
    #: neither a JSON parse nor a JSON dump.  ``rendered`` entries are
    #: only trusted when the memo still returns the identical dict.
    memo: Dict[str, Dict[str, Any]] = {}
    rendered: Dict[str, Tuple[Dict[str, Any], str]] = {}
    for line in _iter_limited_lines(input_stream, config.max_line_bytes):
        if line is OVERSIZED:
            response = error_response(
                "request_too_large",
                f"request line exceeds {config.max_line_bytes} bytes",
            )
        else:
            line = line.strip()
            if not line:
                continue
            if state is not None and state.draining:
                response = error_response("unavailable", "server is draining")
                if state is not None:
                    state.begin_request()
                try:
                    output_stream.write(json.dumps(response) + "\n")
                    output_stream.flush()
                    answered += 1
                finally:
                    state.end_request(response)
                break
            response = None
        if state is not None:
            state.begin_request()
        try:
            if response is None:
                response = handle_request_line(
                    session, line, state=state, config=config, lock=lock,
                    dispatcher=dispatcher, counted=state is not None, memo=memo,
                )
            cached = rendered.get(line)
            if cached is not None and cached[0] is response:
                text = cached[1]
            else:
                text = json.dumps(response) + "\n"
                if memo.get(line) is response:
                    rendered[line] = (response, text)
                elif not memo and rendered:
                    rendered.clear()  # the memo was invalidated wholesale
            output_stream.write(text)
            output_stream.flush()
            answered += 1
        finally:
            if state is not None:
                state.end_request(response if response is not None else {})
        if state is not None and state.draining:
            break
    return answered


# ----------------------------------------------------------------------
# socket transport
# ----------------------------------------------------------------------
class _Utf8LineReader:
    """Byte-accurate bounded line reads over the connection's raw socket.

    Buffers reads itself (the handler runs with ``rbufsize=0``) so the
    writer can ask :meth:`has_buffered_line` — "is another complete
    request already in hand?" — without risking a blocking read.  That
    question is what lets the transport batch responses to pipelined
    clients while still answering lockstep clients immediately.
    """

    def __init__(self, rfile: IO[bytes], chunk_size: int = 1 << 16) -> None:
        self._rfile = rfile
        self._chunk_size = chunk_size
        self._buffer = bytearray()
        self._eof = False

    def has_buffered_line(self) -> bool:
        return b"\n" in self._buffer

    def readline(self, limit: int = -1) -> str:
        """Read one ``\\n``-terminated line, returning at most ``limit``
        bytes (the ``BufferedReader.readline`` bounded contract)."""
        buffer = self._buffer
        while True:
            newline = buffer.find(b"\n")
            if newline >= 0 and (limit < 0 or newline < limit):
                end = newline + 1
                break
            if 0 <= limit <= len(buffer):
                end = limit
                break
            if self._eof:
                end = len(buffer)
                break
            chunk = self._rfile.read(self._chunk_size)
            if not chunk:
                self._eof = True
            else:
                buffer += chunk
        data = bytes(buffer[:end])
        del buffer[:end]
        return data.decode("utf-8", "replace")


class _SocketWriter:
    """Response writer with adaptive batching for pipelined clients.

    Responses accumulate in a local buffer; :meth:`flush` only performs
    the ``send`` when the paired reader holds no further complete request
    (or the buffer has grown past ``max_buffered``).  A lockstep client —
    one request in flight at a time — therefore sees every response
    immediately, while a client that pipelines N requests receives its N
    responses in a handful of packets instead of N.
    """

    def __init__(
        self,
        wfile: IO[bytes],
        reader: Optional[_Utf8LineReader] = None,
        max_buffered: int = 1 << 20,
    ) -> None:
        self._wfile = wfile
        self._reader = reader
        self._max_buffered = max_buffered
        self._buffer = bytearray()

    def write(self, text: str) -> None:
        self._buffer += text.encode("utf-8")

    def flush(self) -> None:
        if (
            self._reader is not None
            and self._reader.has_buffered_line()
            and len(self._buffer) < self._max_buffered
        ):
            return  # another request is already in hand: keep batching
        self.flush_hard()

    def flush_hard(self) -> None:
        if self._buffer:
            self._wfile.write(bytes(self._buffer))
            self._buffer.clear()
        self._wfile.flush()


class ServeServer(socketserver.ThreadingTCPServer):
    """The TCP transport: one JSON-lines conversation per connection."""

    allow_reuse_address = True
    daemon_threads = True
    # The socketserver default backlog (5) drops SYNs when a fleet of
    # clients connects at once, and the 1s retransmit dwarfs any request.
    request_queue_size = 128

    def __init__(
        self,
        address: Tuple[str, int],
        session: Session,
        config: ServeConfig,
        state: ServerState,
    ) -> None:
        super().__init__(address, _ConnectionHandler)
        self.session = session
        self.config = config
        self.state = state
        self.capacity = threading.Semaphore(config.max_connections)
        #: engine-touching requests from every connection funnel through
        #: this pool; cache-hit checks bypass it on the connection thread
        self.dispatcher = Dispatcher(
            workers=config.workers, queue_limit=config.queue_limit
        )
        state.dispatcher = self.dispatcher

    def server_close(self) -> None:
        self.dispatcher.close()
        super().server_close()


class _ConnectionHandler(socketserver.StreamRequestHandler):
    server: ServeServer  # narrowed for readability

    #: raw reads: _Utf8LineReader buffers for itself so response batching
    #: can see whether another pipelined request is already buffered
    rbufsize = 0

    def handle(self) -> None:
        state, config = self.server.state, self.server.config
        peer = "%s:%s" % self.client_address[:2]
        if state.draining:
            self._shed("unavailable", "server is draining", peer)
            return
        if not self._admit(state, config, peer):
            return
        with state.lock:
            state.connections_active += 1
            state.connections_total += 1
        state.log("conn_open", peer=peer)
        try:
            if config.idle_timeout is not None:
                self.connection.settimeout(config.idle_timeout)
            # Each connection converses through its own session view:
            # private registries (a model registered on one connection is
            # invisible to the others) over the one shared warm engine.
            reader = _Utf8LineReader(self.rfile)
            writer = _SocketWriter(self.wfile, reader=reader)
            serve_stream(
                self.server.session.view(),
                reader,
                writer,
                state=state,
                config=config,
                dispatcher=self.server.dispatcher,
            )
            writer.flush_hard()
        except TimeoutError:
            state.log("conn_idle_timeout", peer=peer, idle_timeout=config.idle_timeout)
        except (OSError, ValueError):
            # The peer vanished mid-read or mid-write; nothing to answer.
            pass
        finally:
            self.server.capacity.release()
            with state.lock:
                state.connections_active -= 1
            state.log("conn_close", peer=peer)

    def _admit(self, state: ServerState, config: ServeConfig, peer: str) -> bool:
        """Admission control: bounded queue in front of the connection cap."""
        if self.server.capacity.acquire(blocking=False):
            return True  # a slot is free: no queueing needed
        with state.lock:
            if state.waiting >= config.admission_queue:
                shed_now = True
            else:
                shed_now = False
                state.waiting += 1
        if shed_now:
            self._shed("overloaded", "admission queue is full", peer)
            return False
        try:
            admitted = self.server.capacity.acquire(timeout=config.admission_timeout)
        finally:
            with state.lock:
                state.waiting -= 1
        if not admitted:
            self._shed(
                "overloaded",
                f"no connection slot within {config.admission_timeout:g}s",
                peer,
            )
            return False
        return True

    def _shed(self, code: str, message: str, peer: str) -> None:
        state = self.server.state
        with state.lock:
            state.connections_shed += 1
        state.log("conn_shed", peer=peer, code=code)
        try:
            self.wfile.write((json.dumps(error_response(code, message)) + "\n").encode("utf-8"))
            self.wfile.flush()
        except (OSError, ValueError):
            pass


def serve_socket(
    session: Session,
    host: str,
    port: int,
    config: Optional[ServeConfig] = None,
    state: Optional[ServerState] = None,
) -> ServeServer:
    """Return a bound-but-not-running TCP server sharing ``session``.

    The caller drives it (``serve_forever`` / ``shutdown``); each
    connection is one JSON-lines conversation.  Without an explicit
    ``state``, structured logging is off — the ``serve()`` entry point is
    what wires a logging state in.
    """
    if config is None:
        config = ServeConfig(log_enabled=False)
    if state is None:
        state = ServerState(config)
    return ServeServer((host, port), session, config, state)


# ----------------------------------------------------------------------
# the entry point: transports + graceful drain
# ----------------------------------------------------------------------
class _DrainInterrupt(Exception):
    """Raised by the stdio drain handler to interrupt an idle read."""


class _InterruptibleReader:
    """Marks the state as idle-reading so the drain handler may interrupt."""

    def __init__(self, stream: Any, state: ServerState) -> None:
        self._stream = stream
        self._state = state

    def readline(self, limit: int = -1) -> str:
        self._state.reading = True
        try:
            return self._stream.readline(limit)
        finally:
            self._state.reading = False


def _install_drain_handlers(
    begin_drain: Callable[[str], None], raise_when_reading: Optional[ServerState] = None
) -> Optional[Dict[int, object]]:
    """Route SIGTERM/SIGINT into the drain path; return the old handlers.

    Returns None when not on the main thread (``signal.signal`` would
    raise there), in which case the caller simply serves without signal
    integration — tests drive drain through the state flag directly.
    """
    if threading.current_thread() is not threading.main_thread():
        return None

    def handler(signum: int, frame: object) -> None:
        begin_drain(signal.Signals(signum).name)
        if raise_when_reading is not None and raise_when_reading.reading:
            raise _DrainInterrupt()

    previous: Dict[int, object] = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, handler)
    return previous


def _restore_handlers(previous: Optional[Dict[int, object]]) -> None:
    if previous is None:
        return
    for signum, old in previous.items():
        signal.signal(signum, old)


def _limits_fields(config: ServeConfig) -> Dict[str, object]:
    return {
        "timeout": config.timeout,
        "max_line_bytes": config.max_line_bytes,
        "max_connections": config.max_connections,
        "admission_queue": config.admission_queue,
        "idle_timeout": config.idle_timeout,
        "drain_grace": config.drain_grace,
    }


def serve(
    session: Optional[Session] = None,
    input_stream: Optional[IO[str]] = None,
    output_stream: Optional[IO[str]] = None,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    config: Optional[ServeConfig] = None,
    install_signal_handlers: bool = True,
) -> int:
    """Run the serve loop on stdin/stdout, or on a TCP socket with ``port``.

    Either way SIGTERM and SIGINT drain gracefully: stop taking new work,
    finish in-flight requests (bounded by ``config.drain_grace``), flush
    (including the persistent verdict-cache tier), and return 0.
    """
    session = session if session is not None else Session()
    config = config if config is not None else ServeConfig.from_env()
    state = ServerState(config)
    if session.engine.verdict_cache is None and config.cache_capacity > 0:
        from repro.cache import VerdictCache

        # The memory tier is always on for serving; --cache-dir adds the
        # persistent tier (and --cache-capacity 0 turns the cache off).
        if config.cache_dir is not None:
            cache = VerdictCache.open(config.cache_dir, capacity=config.cache_capacity)
            cache_stats = cache.stats
            state.log(
                "cache_open",
                path=cache.store.path,
                loaded=cache_stats.persisted_loaded,
                skipped=cache_stats.persisted_skipped,
            )
        else:
            cache = VerdictCache(capacity=config.cache_capacity)
        session.engine.verdict_cache = cache
    metrics_server = None
    if config.metrics_port is not None:
        metrics_server = start_metrics_server(host, config.metrics_port, state, session)
        state.log("metrics_start", port=metrics_server.server_address[1])
    try:
        if port is not None:
            return _serve_socket_until_drained(session, host, port, config, state,
                                               install_signal_handlers)
        return _serve_stdio_until_drained(
            session,
            input_stream if input_stream is not None else sys.stdin,
            output_stream if output_stream is not None else sys.stdout,
            config,
            state,
            install_signal_handlers,
        )
    finally:
        if metrics_server is not None:
            metrics_server.shutdown()
            metrics_server.server_close()
        cache = session.engine.verdict_cache
        if cache is not None:
            cache.close()


def _serve_socket_until_drained(
    session: Session,
    host: str,
    port: int,
    config: ServeConfig,
    state: ServerState,
    install_signal_handlers: bool,
) -> int:
    # Remote clients must not be able to read server-side files by
    # sending path-shaped test or model specs; registered names, inline
    # litmus text and embedded documents remain available.
    session.tests.allow_paths = False
    session.models.allow_paths = False
    server = serve_socket(session, host, port, config=config, state=state)
    bound = server.server_address[1]

    def begin_drain(cause: str) -> None:
        with state.lock:
            if state.draining:
                return
            state.draining = True
        state.log("drain_begin", cause=cause, in_flight=state.in_flight)
        # shutdown() blocks until the accept loop exits, so it must not run
        # on the thread executing serve_forever (or in its signal handler).
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = _install_drain_handlers(begin_drain) if install_signal_handlers else None
    state.log(
        "serve_start",
        transport="socket",
        host=host,
        port=bound,
        pid=os.getpid(),
        backend=session.backend_name,
        kernel=session.kernel_name,
        limits=_limits_fields(config),
    )
    try:
        try:
            server.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:  # handlers not installed (e.g. nested use)
            begin_drain("KeyboardInterrupt")
        drained = state.wait_idle(config.drain_grace)
        server.server_close()
        state.log(
            "serve_stop",
            drained=drained,
            requests_total=state.requests_total,
            uptime_seconds=round(state.uptime(), 3),
        )
    finally:
        _restore_handlers(previous)
    return 0


def _serve_stdio_until_drained(
    session: Session,
    input_stream: IO[str],
    output_stream: IO[str],
    config: ServeConfig,
    state: ServerState,
    install_signal_handlers: bool,
) -> int:
    def begin_drain(cause: str) -> None:
        with state.lock:
            if state.draining:
                return
            state.draining = True
        state.log("drain_begin", cause=cause, in_flight=state.in_flight)

    previous = (
        _install_drain_handlers(begin_drain, raise_when_reading=state)
        if install_signal_handlers
        else None
    )
    state.log(
        "serve_start",
        transport="stdio",
        pid=os.getpid(),
        backend=session.backend_name,
        kernel=session.kernel_name,
        limits=_limits_fields(config),
    )
    reader = (
        _InterruptibleReader(input_stream, state)
        if hasattr(input_stream, "readline")
        else input_stream
    )
    answered = 0
    try:
        answered = serve_stream(
            session, reader, output_stream, state=state, config=config
        )
    except _DrainInterrupt:
        pass  # the drain signal interrupted an idle read: clean exit
    finally:
        _restore_handlers(previous)
    drained = state.wait_idle(config.drain_grace) if state.in_flight else True
    state.log(
        "serve_stop",
        drained=drained,
        requests_total=state.requests_total,
        answered=answered,
        uptime_seconds=round(state.uptime(), 3),
    )
    return 0


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """The serve limit flags, shared by the CLI and ``python -m`` entry."""
    parser.add_argument("--host", default="127.0.0.1", help="bind address for --port")
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="serve on a TCP socket instead of stdin/stdout",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-request deadline; past it the client gets a structured "
        "deadline_exceeded error (default: unbounded; env REPRO_SERVE_TIMEOUT)")
    parser.add_argument(
        "--max-line-bytes", type=int, default=None, metavar="N",
        help="maximum request line length; longer lines answer "
        "request_too_large (default: 10MiB; env REPRO_SERVE_MAX_LINE_BYTES)")
    parser.add_argument(
        "--max-connections", type=int, default=None, metavar="N",
        help="maximum concurrently-served connections "
        "(default: 64; env REPRO_SERVE_MAX_CONNECTIONS)")
    parser.add_argument(
        "--admission-queue", type=int, default=None, metavar="N",
        help="connections allowed to wait for a slot before being shed with "
        "an overloaded error (default: 128; env REPRO_SERVE_ADMISSION_QUEUE)")
    parser.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="close connections idle this long "
        "(default: 300; env REPRO_SERVE_IDLE_TIMEOUT)")
    parser.add_argument(
        "--drain-grace", type=float, default=None, metavar="SECONDS",
        help="how long a SIGTERM/SIGINT drain waits for in-flight requests "
        "(default: 30; env REPRO_SERVE_DRAIN_GRACE)")
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="engine worker threads executing requests concurrently "
        "(default: 4; env REPRO_SERVE_WORKERS)")
    parser.add_argument(
        "--queue-limit", type=int, default=None, metavar="N",
        help="requests allowed to queue for a worker before being shed with "
        "an overloaded error (default: 256; env REPRO_SERVE_QUEUE_LIMIT)")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist verdict-cache entries to DIR/verdicts.jsonl so warm "
        "verdicts survive restarts and can be shared between replicas "
        "(default: memory-only cache off; env REPRO_SERVE_CACHE_DIR)")
    parser.add_argument(
        "--cache-capacity", type=int, default=None, metavar="N",
        help="verdict-cache memory-tier entry cap "
        "(default: 1048576; env REPRO_SERVE_CACHE_CAPACITY)")
    parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve Prometheus metrics over HTTP on this port "
        "(GET /metrics; default: off; env REPRO_SERVE_METRICS_PORT)")


def config_from_args(args: argparse.Namespace) -> ServeConfig:
    """Resolve a :class:`ServeConfig` from parsed flags over the environment."""
    return ServeConfig.from_env(
        timeout=args.timeout,
        max_line_bytes=args.max_line_bytes,
        max_connections=args.max_connections,
        admission_queue=args.admission_queue,
        idle_timeout=args.idle_timeout,
        drain_grace=args.drain_grace,
        workers=args.workers,
        queue_limit=args.queue_limit,
        cache_dir=args.cache_dir,
        cache_capacity=args.cache_capacity,
        metrics_port=args.metrics_port,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.api.serve``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.api.serve",
        description="Serve JSON-lines check/compare/explore/outcomes requests over one warm session.",
    )
    parser.add_argument(
        "--backend",
        choices=("explicit", "enumeration", "sat"),
        default="explicit",
        help="admissibility backend for the session's engine",
    )
    from repro.native.backend import KERNEL_CHOICES

    parser.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default=None,
        help="explicit-backend checking kernel (default 'auto': the C "
        "extension when built, else the bigint kernel)",
    )
    add_serve_arguments(parser)
    args = parser.parse_args(argv)
    session = Session(backend=args.backend, kernel=args.kernel)
    return serve(session, host=args.host, port=args.port, config=config_from_args(args))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
