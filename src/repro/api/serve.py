"""``repro serve``: a production-hardened JSON-lines request/response loop.

One warm :class:`~repro.api.session.Session` answers a stream of request
documents, one JSON object per line, writing one JSON response object per
line.  Because the session (and therefore the engine and its caches)
persists across requests, a ``compare`` following an ``explore`` over the
same suite is answered almost entirely from cache — each response carries
the per-request :class:`~repro.engine.engine.EngineStats` delta so the
reuse is observable.

Transports:

* stdin/stdout (the default; also ``python -m repro.api.serve``);
* a TCP socket (``--port``), one JSON-lines conversation per connection,
  all connections sharing one session behind a lock.

Protocol::

    -> {"op": "check", "test": "SB.litmus", "model": "TSO"}
    <- {"schema": "repro/response", "schema_version": 1, "ok": true,
        "op": "check", "result": {...}, "stats": {...}}

Request lines may be bare ``{"op": ...}`` objects or full
``repro/request`` documents (see :mod:`repro.api.requests`).  Two ops are
built into the server itself: ``{"op": "health"}`` (liveness, uptime,
in-flight depth, drain status) and ``{"op": "stats"}`` (request counters
plus the engine's cumulative :class:`EngineStats`, including the resolved
``kernel_backend``); both bypass the session lock and the deadline so
they answer even while the engine is busy.

Robustness (see ``docs/operations.md`` for the full operational story):

* **Errors are machine-readable.**  Failures answer
  ``{"ok": false, "error": {"code": ..., "message": ...}}`` with a code
  from :data:`ERROR_CODES`; ``internal`` is the catch-all, so no
  exception class can kill a connection loop (the traceback goes to the
  structured log, not the client).
* **Deadlines.**  With a ``--timeout``, each request runs under a
  watchdog; past the deadline the client gets ``deadline_exceeded`` and
  the request is abandoned (its worker thread finishes in the
  background).
* **Bounded input.**  Request lines longer than ``--max-line-bytes``
  answer ``request_too_large`` (the oversized line is discarded without
  buffering it).
* **Backpressure.**  At most ``--max-connections`` conversations run
  concurrently; beyond that, connections wait in a bounded admission
  queue and are shed with a one-line ``overloaded`` error once the queue
  is full (or the wait exceeds the admission timeout).
* **Idle timeouts.**  Socket connections idle past ``--idle-timeout``
  are closed.
* **Graceful drain.**  SIGTERM/SIGINT stop the accept loop, let in-flight
  requests finish (bounded by ``--drain-grace``), flush, and exit 0.
* **Structured logs.**  One JSON object per line on stderr
  (``serve_start``, ``conn_open``, ``request``, ``drain_begin``, ...).

A malformed line produces an ``{"ok": false, "error": {...}}`` response
and the loop continues; the loop ends at end of input or on drain.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import socketserver
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, IO, Iterator, Optional, Sequence, Tuple, Union

from repro.api.requests import request_from_json
from repro.api.serialize import envelope, to_json
from repro.api.session import Session
from repro.util import faults

# ----------------------------------------------------------------------
# error taxonomy
# ----------------------------------------------------------------------
#: Machine-readable error codes, the full taxonomy:
#:
#: ================== ==================================================
#: invalid_request    malformed JSON, unknown op/field, schema mismatch,
#:                    unknown model/test name, malformed embedded docs
#: request_too_large  request line exceeded ``max_line_bytes``
#: deadline_exceeded  request ran past ``timeout`` and was abandoned
#: overloaded         shed by the connection cap / admission queue
#: unavailable        server is draining and takes no new requests
#: internal           unexpected exception (catch-all; traceback logged)
#: ================== ==================================================
ERROR_CODES = (
    "invalid_request",
    "request_too_large",
    "deadline_exceeded",
    "overloaded",
    "unavailable",
    "internal",
)

#: Ops answered by the server itself, without touching the session lock.
BUILTIN_OPS = ("health", "stats")


class ServeError(Exception):
    """A failure with a machine-readable code from :data:`ERROR_CODES`."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        assert code in ERROR_CODES, code
        self.code = code

    def body(self) -> Dict[str, str]:
        return error_body(self.code, str(self))


def error_body(code: str, message: str) -> Dict[str, str]:
    """The ``error`` field of a failed response."""
    return {"code": code, "message": message}


def error_response(code: str, message: str, op: Optional[str] = None) -> Dict[str, Any]:
    """A complete one-line error response document."""
    response = envelope("response")
    response["ok"] = False
    if op is not None:
        response["op"] = op
    response["error"] = error_body(code, message)
    return response


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
def _env_value(name: str, cast: Callable, default):
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return cast(raw)
    except ValueError:
        return default


@dataclass
class ServeConfig:
    """Limits and operational knobs for the serve loop.

    Every field has a CLI flag and a ``REPRO_SERVE_*`` environment
    variable (flag > env > default); see :meth:`from_env`.
    """

    #: per-request deadline in seconds; None = unbounded
    timeout: Optional[float] = None
    #: maximum request line length in bytes
    max_line_bytes: int = 10 * 1024 * 1024
    #: maximum concurrently-served connections
    max_connections: int = 64
    #: connections allowed to wait for a slot before being shed
    admission_queue: int = 128
    #: how long a queued connection waits for a slot before being shed
    admission_timeout: float = 10.0
    #: close socket connections idle this long; None = never
    idle_timeout: Optional[float] = 300.0
    #: how long a drain waits for in-flight requests before giving up
    drain_grace: float = 30.0
    #: structured-log destination; None = stderr
    log_stream: Optional[IO[str]] = None
    #: emit structured log events at all
    log_enabled: bool = True

    @classmethod
    def from_env(cls, **overrides: object) -> "ServeConfig":
        """Build a config from ``REPRO_SERVE_*`` variables plus overrides.

        Overrides whose value is ``None`` are ignored, so CLI flags that
        were not passed fall through to the environment, then defaults.
        """
        config = cls(
            timeout=_env_value("REPRO_SERVE_TIMEOUT", float, None),
            max_line_bytes=_env_value("REPRO_SERVE_MAX_LINE_BYTES", int, cls.max_line_bytes),
            max_connections=_env_value("REPRO_SERVE_MAX_CONNECTIONS", int, cls.max_connections),
            admission_queue=_env_value("REPRO_SERVE_ADMISSION_QUEUE", int, cls.admission_queue),
            admission_timeout=_env_value(
                "REPRO_SERVE_ADMISSION_TIMEOUT", float, cls.admission_timeout
            ),
            idle_timeout=_env_value("REPRO_SERVE_IDLE_TIMEOUT", float, cls.idle_timeout),
            drain_grace=_env_value("REPRO_SERVE_DRAIN_GRACE", float, cls.drain_grace),
        )
        for name, value in overrides.items():
            if value is not None:
                setattr(config, name, value)
        return config


class ServerState:
    """Shared mutable server state: counters, in-flight depth, drain flag."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.lock = threading.Lock()
        self._idle = threading.Condition(self.lock)
        self.started_monotonic = time.monotonic()
        self.started_at = time.time()
        self.requests_total = 0
        self.requests_ok = 0
        self.errors_by_code: Dict[str, int] = {}
        self.in_flight = 0
        self.connections_active = 0
        self.connections_total = 0
        self.connections_shed = 0
        self.waiting = 0
        self.draining = False
        #: True while the stdio transport is blocked reading the next line
        #: (the drain signal handler may only interrupt an idle read).
        self.reading = False

    # -- structured logging --------------------------------------------
    def log(self, event: str, **fields: object) -> None:
        if not self.config.log_enabled:
            return
        record: Dict[str, object] = {"ts": round(time.time(), 3), "event": event}
        record.update(fields)
        stream = self.config.log_stream if self.config.log_stream is not None else sys.stderr
        try:
            stream.write(json.dumps(record) + "\n")
            stream.flush()
        except (OSError, ValueError):  # a closed log stream must never kill serving
            pass

    # -- request accounting --------------------------------------------
    def begin_request(self) -> None:
        with self.lock:
            self.in_flight += 1

    def end_request(self, response: Dict[str, Any]) -> None:
        """Count a finished request *after* its response was written."""
        with self._idle:
            self.in_flight -= 1
            self.requests_total += 1
            if response.get("ok"):
                self.requests_ok += 1
            else:
                code = (response.get("error") or {}).get("code", "internal")
                self.errors_by_code[code] = self.errors_by_code.get(code, 0) + 1
            self._idle.notify_all()

    def wait_idle(self, grace: float) -> bool:
        """Wait until no request is in flight; False if ``grace`` ran out."""
        deadline = time.monotonic() + grace
        with self._idle:
            while self.in_flight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(min(remaining, 0.5))
        return True

    def uptime(self) -> float:
        return time.monotonic() - self.started_monotonic

    def snapshot(self) -> Dict[str, object]:
        with self.lock:
            return {
                "uptime_seconds": round(self.uptime(), 3),
                "requests_total": self.requests_total,
                "requests_ok": self.requests_ok,
                "errors_by_code": dict(self.errors_by_code),
                "in_flight": max(0, self.in_flight - 1),  # excluding this request
                "connections_active": self.connections_active,
                "connections_total": self.connections_total,
                "connections_shed": self.connections_shed,
                "draining": self.draining,
            }


# ----------------------------------------------------------------------
# request handling
# ----------------------------------------------------------------------
def _call_with_deadline(fn: Callable[[], Any], timeout: float) -> Tuple[bool, Any]:
    """Run ``fn`` on a watchdog-supervised thread.

    Returns ``(True, result)`` when it finished within ``timeout`` —
    re-raising anything it raised — or ``(False, None)`` when the deadline
    passed and the request was abandoned (the thread keeps running to
    completion in the background; any lock it needs is acquired inside
    ``fn``, so an abandoned request releases the engine when it is done).
    """
    box: Dict[str, Any] = {}
    done = threading.Event()

    def target() -> None:
        try:
            box["result"] = fn()
        except BaseException as error:  # re-raised on the caller's thread
            box["error"] = error
        finally:
            done.set()

    thread = threading.Thread(target=target, daemon=True, name="repro-serve-request")
    thread.start()
    if not done.wait(timeout):
        return False, None
    if "error" in box:
        raise box["error"]
    return True, box["result"]


def _builtin_result(op: str, session: Session, state: Optional[ServerState]) -> Dict[str, Any]:
    """Answer a built-in ``health`` / ``stats`` op from server state."""
    if op == "health":
        return {
            "status": "draining" if state is not None and state.draining else "ok",
            "uptime_seconds": round(state.uptime(), 3) if state is not None else 0.0,
            "in_flight": max(0, state.in_flight - 1) if state is not None else 0,
        }
    return {
        "server": state.snapshot() if state is not None else {},
        "engine": session.engine.stats.as_dict(),
        "session": session.info(),
    }


def handle_request_line(
    session: Session,
    line: str,
    state: Optional[ServerState] = None,
    config: Optional[ServeConfig] = None,
    lock: Optional[threading.Lock] = None,
) -> Dict[str, Any]:
    """Answer one JSON request line; never raises on any input.

    ``lock`` serialises engine access when several transports share one
    session; it is acquired *inside* the (possibly deadline-supervised)
    request body so an abandoned request cannot leak it to the watchdog.
    """
    if config is None:
        config = state.config if state is not None else ServeConfig()
    response = envelope("response")
    op: Optional[str] = None
    started = time.monotonic()
    try:
        try:
            document = json.loads(line)
        except ValueError as error:
            raise ServeError("invalid_request", f"malformed JSON: {error}")
        if isinstance(document, dict):
            raw_op = document.get("op")
            op = raw_op if isinstance(raw_op, str) else None
        if op in BUILTIN_OPS:
            # Built-in ops bypass the session lock and the deadline so they
            # answer even while the engine is wedged on a long request.
            response.update({"ok": True, "op": op, "result": _builtin_result(op, session, state)})
            return response
        request = request_from_json(document)
        op = request.op

        def run() -> Tuple[Any, Any]:
            faults.fire("serve.request", op=op)
            if lock is not None:
                with lock:
                    return _dispatch(session, request)
            return _dispatch(session, request)

        if config.timeout is not None:
            finished, value = _call_with_deadline(run, config.timeout)
            if not finished:
                if state is not None:
                    state.log("deadline_exceeded", op=op, timeout=config.timeout)
                raise ServeError(
                    "deadline_exceeded",
                    f"request exceeded the {config.timeout:g}s deadline and was abandoned",
                )
        else:
            value = run()
        result, stats_delta = value
        response.update(
            {"ok": True, "op": op, "result": to_json(result), "stats": stats_delta.as_dict()}
        )
    except ServeError as error:
        if op is not None:
            response["op"] = op
        response.update({"ok": False, "error": error.body()})
    except (ValueError, TypeError, LookupError, OSError) as error:
        # The expected bad-request family: JSONDecodeError/SerializationError
        # (ValueError), KeyErrors from malformed documents (LookupError),
        # missing files behind path specs (OSError).
        if op is not None:
            response["op"] = op
        response.update({"ok": False, "error": error_body("invalid_request", str(error))})
    except Exception as error:  # noqa: BLE001 - the catch-all IS the contract:
        # no exception class may kill the connection loop.  The client gets
        # a structured `internal` error; the traceback goes to the log.
        if op is not None:
            response["op"] = op
        if state is not None:
            state.log(
                "internal_error",
                op=op,
                error=f"{type(error).__name__}: {error}",
                traceback=traceback.format_exc(limit=20),
            )
        response.update(
            {
                "ok": False,
                "error": error_body("internal", f"{type(error).__name__}: {error}"),
            }
        )
    finally:
        if state is not None:
            state.log(
                "request",
                op=op,
                ok=bool(response.get("ok")),
                code=(response.get("error") or {}).get("code"),
                duration_ms=round((time.monotonic() - started) * 1000.0, 3),
            )
    return response


def _dispatch(session: Session, request: Any) -> Tuple[Any, Any]:
    before = session.engine.stats.snapshot()
    result = session.run(request)
    return result, session.engine.stats.since(before)


# ----------------------------------------------------------------------
# line transport
# ----------------------------------------------------------------------
#: Sentinel yielded by :func:`_iter_limited_lines` for an oversized line.
OVERSIZED = object()


def _iter_limited_lines(stream: Any, max_len: int) -> Iterator[Union[str, object]]:
    """Yield request lines, or :data:`OVERSIZED` for over-limit lines.

    Oversized lines are discarded chunk by chunk (never buffered whole),
    so a hostile peer cannot make the server hold an arbitrarily large
    line in memory.  Streams without ``readline`` (plain iterables, used
    by some tests) are iterated directly with a post-hoc length check.
    """
    readline = getattr(stream, "readline", None)
    if readline is None:
        for line in stream:
            yield OVERSIZED if len(line) > max_len + 1 else line
        return
    while True:
        line = stream.readline(max_len + 1)
        if not line:
            return
        if len(line) > max_len and not line.endswith("\n"):
            while True:  # discard the rest of the oversized line
                rest = stream.readline(max_len + 1)
                if not rest or rest.endswith("\n"):
                    break
            yield OVERSIZED
            continue
        yield line


def serve_stream(
    session: Session,
    input_stream: Any,
    output_stream: IO[str],
    lock: Optional[threading.Lock] = None,
    state: Optional[ServerState] = None,
    config: Optional[ServeConfig] = None,
) -> int:
    """Answer request lines from ``input_stream`` until end of input.

    Returns the number of lines answered.  ``lock`` serialises engine
    access when several transports share one session; with a ``state``
    the loop also counts requests, honours the drain flag (stop after
    the current response once draining), and enforces the configured
    line-length limit.
    """
    if config is None:
        config = state.config if state is not None else ServeConfig()
    answered = 0
    for line in _iter_limited_lines(input_stream, config.max_line_bytes):
        if line is OVERSIZED:
            response = error_response(
                "request_too_large",
                f"request line exceeds {config.max_line_bytes} bytes",
            )
        else:
            line = line.strip()
            if not line:
                continue
            if state is not None and state.draining:
                response = error_response("unavailable", "server is draining")
                if state is not None:
                    state.begin_request()
                try:
                    output_stream.write(json.dumps(response) + "\n")
                    output_stream.flush()
                    answered += 1
                finally:
                    state.end_request(response)
                break
            response = None
        if state is not None:
            state.begin_request()
        try:
            if response is None:
                response = handle_request_line(
                    session, line, state=state, config=config, lock=lock
                )
            output_stream.write(json.dumps(response) + "\n")
            output_stream.flush()
            answered += 1
        finally:
            if state is not None:
                state.end_request(response if response is not None else {})
        if state is not None and state.draining:
            break
    return answered


# ----------------------------------------------------------------------
# socket transport
# ----------------------------------------------------------------------
class _SocketWriter:
    """Encode response lines onto the connection's binary write file."""

    def __init__(self, wfile: IO[bytes]) -> None:
        self._wfile = wfile

    def write(self, text: str) -> None:
        self._wfile.write(text.encode("utf-8"))

    def flush(self) -> None:
        self._wfile.flush()


class _Utf8LineReader:
    """Byte-accurate bounded line reads over the connection's read file."""

    def __init__(self, rfile: IO[bytes]) -> None:
        self._rfile = rfile

    def readline(self, limit: int = -1) -> str:
        return self._rfile.readline(limit).decode("utf-8", "replace")


class ServeServer(socketserver.ThreadingTCPServer):
    """The TCP transport: one JSON-lines conversation per connection."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        session: Session,
        config: ServeConfig,
        state: ServerState,
    ) -> None:
        super().__init__(address, _ConnectionHandler)
        self.session = session
        self.config = config
        self.state = state
        self.session_lock = threading.Lock()
        self.capacity = threading.Semaphore(config.max_connections)


class _ConnectionHandler(socketserver.StreamRequestHandler):
    server: ServeServer  # narrowed for readability

    def handle(self) -> None:
        state, config = self.server.state, self.server.config
        peer = "%s:%s" % self.client_address[:2]
        if state.draining:
            self._shed("unavailable", "server is draining", peer)
            return
        if not self._admit(state, config, peer):
            return
        with state.lock:
            state.connections_active += 1
            state.connections_total += 1
        state.log("conn_open", peer=peer)
        try:
            if config.idle_timeout is not None:
                self.connection.settimeout(config.idle_timeout)
            serve_stream(
                self.server.session,
                _Utf8LineReader(self.rfile),
                _SocketWriter(self.wfile),
                lock=self.server.session_lock,
                state=state,
                config=config,
            )
        except TimeoutError:
            state.log("conn_idle_timeout", peer=peer, idle_timeout=config.idle_timeout)
        except (OSError, ValueError):
            # The peer vanished mid-read or mid-write; nothing to answer.
            pass
        finally:
            self.server.capacity.release()
            with state.lock:
                state.connections_active -= 1
            state.log("conn_close", peer=peer)

    def _admit(self, state: ServerState, config: ServeConfig, peer: str) -> bool:
        """Admission control: bounded queue in front of the connection cap."""
        if self.server.capacity.acquire(blocking=False):
            return True  # a slot is free: no queueing needed
        with state.lock:
            if state.waiting >= config.admission_queue:
                shed_now = True
            else:
                shed_now = False
                state.waiting += 1
        if shed_now:
            self._shed("overloaded", "admission queue is full", peer)
            return False
        try:
            admitted = self.server.capacity.acquire(timeout=config.admission_timeout)
        finally:
            with state.lock:
                state.waiting -= 1
        if not admitted:
            self._shed(
                "overloaded",
                f"no connection slot within {config.admission_timeout:g}s",
                peer,
            )
            return False
        return True

    def _shed(self, code: str, message: str, peer: str) -> None:
        state = self.server.state
        with state.lock:
            state.connections_shed += 1
        state.log("conn_shed", peer=peer, code=code)
        try:
            self.wfile.write((json.dumps(error_response(code, message)) + "\n").encode("utf-8"))
            self.wfile.flush()
        except (OSError, ValueError):
            pass


def serve_socket(
    session: Session,
    host: str,
    port: int,
    config: Optional[ServeConfig] = None,
    state: Optional[ServerState] = None,
) -> ServeServer:
    """Return a bound-but-not-running TCP server sharing ``session``.

    The caller drives it (``serve_forever`` / ``shutdown``); each
    connection is one JSON-lines conversation.  Without an explicit
    ``state``, structured logging is off — the ``serve()`` entry point is
    what wires a logging state in.
    """
    if config is None:
        config = ServeConfig(log_enabled=False)
    if state is None:
        state = ServerState(config)
    return ServeServer((host, port), session, config, state)


# ----------------------------------------------------------------------
# the entry point: transports + graceful drain
# ----------------------------------------------------------------------
class _DrainInterrupt(Exception):
    """Raised by the stdio drain handler to interrupt an idle read."""


class _InterruptibleReader:
    """Marks the state as idle-reading so the drain handler may interrupt."""

    def __init__(self, stream: Any, state: ServerState) -> None:
        self._stream = stream
        self._state = state

    def readline(self, limit: int = -1) -> str:
        self._state.reading = True
        try:
            return self._stream.readline(limit)
        finally:
            self._state.reading = False


def _install_drain_handlers(
    begin_drain: Callable[[str], None], raise_when_reading: Optional[ServerState] = None
) -> Optional[Dict[int, object]]:
    """Route SIGTERM/SIGINT into the drain path; return the old handlers.

    Returns None when not on the main thread (``signal.signal`` would
    raise there), in which case the caller simply serves without signal
    integration — tests drive drain through the state flag directly.
    """
    if threading.current_thread() is not threading.main_thread():
        return None

    def handler(signum: int, frame: object) -> None:
        begin_drain(signal.Signals(signum).name)
        if raise_when_reading is not None and raise_when_reading.reading:
            raise _DrainInterrupt()

    previous: Dict[int, object] = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, handler)
    return previous


def _restore_handlers(previous: Optional[Dict[int, object]]) -> None:
    if previous is None:
        return
    for signum, old in previous.items():
        signal.signal(signum, old)


def _limits_fields(config: ServeConfig) -> Dict[str, object]:
    return {
        "timeout": config.timeout,
        "max_line_bytes": config.max_line_bytes,
        "max_connections": config.max_connections,
        "admission_queue": config.admission_queue,
        "idle_timeout": config.idle_timeout,
        "drain_grace": config.drain_grace,
    }


def serve(
    session: Optional[Session] = None,
    input_stream: Optional[IO[str]] = None,
    output_stream: Optional[IO[str]] = None,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    config: Optional[ServeConfig] = None,
    install_signal_handlers: bool = True,
) -> int:
    """Run the serve loop on stdin/stdout, or on a TCP socket with ``port``.

    Either way SIGTERM and SIGINT drain gracefully: stop taking new work,
    finish in-flight requests (bounded by ``config.drain_grace``), flush,
    and return 0.
    """
    session = session if session is not None else Session()
    config = config if config is not None else ServeConfig.from_env()
    state = ServerState(config)
    if port is not None:
        return _serve_socket_until_drained(session, host, port, config, state,
                                           install_signal_handlers)
    return _serve_stdio_until_drained(
        session,
        input_stream if input_stream is not None else sys.stdin,
        output_stream if output_stream is not None else sys.stdout,
        config,
        state,
        install_signal_handlers,
    )


def _serve_socket_until_drained(
    session: Session,
    host: str,
    port: int,
    config: ServeConfig,
    state: ServerState,
    install_signal_handlers: bool,
) -> int:
    # Remote clients must not be able to read server-side files by
    # sending path-shaped test or model specs; registered names, inline
    # litmus text and embedded documents remain available.
    session.tests.allow_paths = False
    session.models.allow_paths = False
    server = serve_socket(session, host, port, config=config, state=state)
    bound = server.server_address[1]

    def begin_drain(cause: str) -> None:
        with state.lock:
            if state.draining:
                return
            state.draining = True
        state.log("drain_begin", cause=cause, in_flight=state.in_flight)
        # shutdown() blocks until the accept loop exits, so it must not run
        # on the thread executing serve_forever (or in its signal handler).
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = _install_drain_handlers(begin_drain) if install_signal_handlers else None
    state.log(
        "serve_start",
        transport="socket",
        host=host,
        port=bound,
        pid=os.getpid(),
        backend=session.backend_name,
        kernel=session.kernel_name,
        limits=_limits_fields(config),
    )
    try:
        try:
            server.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:  # handlers not installed (e.g. nested use)
            begin_drain("KeyboardInterrupt")
        drained = state.wait_idle(config.drain_grace)
        server.server_close()
        state.log(
            "serve_stop",
            drained=drained,
            requests_total=state.requests_total,
            uptime_seconds=round(state.uptime(), 3),
        )
    finally:
        _restore_handlers(previous)
    return 0


def _serve_stdio_until_drained(
    session: Session,
    input_stream: IO[str],
    output_stream: IO[str],
    config: ServeConfig,
    state: ServerState,
    install_signal_handlers: bool,
) -> int:
    def begin_drain(cause: str) -> None:
        with state.lock:
            if state.draining:
                return
            state.draining = True
        state.log("drain_begin", cause=cause, in_flight=state.in_flight)

    previous = (
        _install_drain_handlers(begin_drain, raise_when_reading=state)
        if install_signal_handlers
        else None
    )
    state.log(
        "serve_start",
        transport="stdio",
        pid=os.getpid(),
        backend=session.backend_name,
        kernel=session.kernel_name,
        limits=_limits_fields(config),
    )
    reader = (
        _InterruptibleReader(input_stream, state)
        if hasattr(input_stream, "readline")
        else input_stream
    )
    answered = 0
    try:
        answered = serve_stream(
            session, reader, output_stream, state=state, config=config
        )
    except _DrainInterrupt:
        pass  # the drain signal interrupted an idle read: clean exit
    finally:
        _restore_handlers(previous)
    drained = state.wait_idle(config.drain_grace) if state.in_flight else True
    state.log(
        "serve_stop",
        drained=drained,
        requests_total=state.requests_total,
        answered=answered,
        uptime_seconds=round(state.uptime(), 3),
    )
    return 0


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """The serve limit flags, shared by the CLI and ``python -m`` entry."""
    parser.add_argument("--host", default="127.0.0.1", help="bind address for --port")
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="serve on a TCP socket instead of stdin/stdout",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-request deadline; past it the client gets a structured "
        "deadline_exceeded error (default: unbounded; env REPRO_SERVE_TIMEOUT)")
    parser.add_argument(
        "--max-line-bytes", type=int, default=None, metavar="N",
        help="maximum request line length; longer lines answer "
        "request_too_large (default: 10MiB; env REPRO_SERVE_MAX_LINE_BYTES)")
    parser.add_argument(
        "--max-connections", type=int, default=None, metavar="N",
        help="maximum concurrently-served connections "
        "(default: 64; env REPRO_SERVE_MAX_CONNECTIONS)")
    parser.add_argument(
        "--admission-queue", type=int, default=None, metavar="N",
        help="connections allowed to wait for a slot before being shed with "
        "an overloaded error (default: 128; env REPRO_SERVE_ADMISSION_QUEUE)")
    parser.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="close connections idle this long "
        "(default: 300; env REPRO_SERVE_IDLE_TIMEOUT)")
    parser.add_argument(
        "--drain-grace", type=float, default=None, metavar="SECONDS",
        help="how long a SIGTERM/SIGINT drain waits for in-flight requests "
        "(default: 30; env REPRO_SERVE_DRAIN_GRACE)")


def config_from_args(args: argparse.Namespace) -> ServeConfig:
    """Resolve a :class:`ServeConfig` from parsed flags over the environment."""
    return ServeConfig.from_env(
        timeout=args.timeout,
        max_line_bytes=args.max_line_bytes,
        max_connections=args.max_connections,
        admission_queue=args.admission_queue,
        idle_timeout=args.idle_timeout,
        drain_grace=args.drain_grace,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.api.serve``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.api.serve",
        description="Serve JSON-lines check/compare/explore/outcomes requests over one warm session.",
    )
    parser.add_argument(
        "--backend",
        choices=("explicit", "enumeration", "sat"),
        default="explicit",
        help="admissibility backend for the session's engine",
    )
    from repro.native.backend import KERNEL_CHOICES

    parser.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default=None,
        help="explicit-backend checking kernel (default 'auto': the C "
        "extension when built, else the bigint kernel)",
    )
    add_serve_arguments(parser)
    args = parser.parse_args(argv)
    session = Session(backend=args.backend, kernel=args.kernel)
    return serve(session, host=args.host, port=args.port, config=config_from_args(args))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
