"""``repro serve``: a long-lived JSON-lines request/response loop.

One warm :class:`~repro.api.session.Session` answers a stream of request
documents, one JSON object per line, writing one JSON response object per
line.  Because the session (and therefore the engine and its caches)
persists across requests, a ``compare`` following an ``explore`` over the
same suite is answered almost entirely from cache — each response carries
the per-request :class:`~repro.engine.engine.EngineStats` delta so the
reuse is observable.

Transports:

* stdin/stdout (the default; also ``python -m repro.api.serve``);
* a TCP socket (``--port``), one JSON-lines conversation per connection,
  all connections sharing one session behind a lock.

Protocol::

    -> {"op": "check", "test": "SB.litmus", "model": "TSO"}
    <- {"schema": "repro/response", "schema_version": 1, "ok": true,
        "op": "check", "result": {...}, "stats": {...}}

Request lines may be bare ``{"op": ...}`` objects or full
``repro/request`` documents (see :mod:`repro.api.requests`).  A malformed
line produces an ``{"ok": false, "error": ...}`` response and the loop
continues; the loop ends at end of input.
"""

from __future__ import annotations

import argparse
import json
import socketserver
import sys
import threading
from typing import Any, Dict, IO, Optional, Sequence

from repro.api.requests import request_from_json
from repro.api.serialize import envelope, to_json
from repro.api.session import Session


def handle_request_line(session: Session, line: str) -> Dict[str, Any]:
    """Answer one JSON request line; never raises on bad input."""
    response = envelope("response")
    try:
        document = json.loads(line)
        request = request_from_json(document)
        before = session.engine.stats.snapshot()
        result = session.run(request)
        response.update(
            {
                "ok": True,
                "op": request.op,
                "result": to_json(result),
                "stats": session.engine.stats.since(before).as_dict(),
            }
        )
    except (ValueError, TypeError, LookupError, OSError) as error:
        # ValueError covers JSONDecodeError and SerializationError;
        # LookupError covers the KeyErrors malformed documents raise.
        response.update({"ok": False, "error": str(error)})
    return response


def serve_stream(
    session: Session,
    input_stream: IO[str],
    output_stream: IO[str],
    lock: Optional[threading.Lock] = None,
) -> int:
    """Answer request lines from ``input_stream`` until end of input.

    Returns the number of lines answered.  ``lock`` serialises engine access
    when several transports share one session.
    """
    answered = 0
    for line in input_stream:
        line = line.strip()
        if not line:
            continue
        if lock is not None:
            with lock:
                response = handle_request_line(session, line)
        else:
            response = handle_request_line(session, line)
        output_stream.write(json.dumps(response) + "\n")
        output_stream.flush()
        answered += 1
    return answered


def serve_socket(session: Session, host: str, port: int) -> socketserver.ThreadingTCPServer:
    """Return a started-but-not-running TCP server sharing ``session``.

    The caller drives it (``serve_forever`` / ``handle_request`` /
    ``shutdown``); each connection is one JSON-lines conversation.
    """
    lock = threading.Lock()

    class Handler(socketserver.StreamRequestHandler):
        def handle(self) -> None:  # pragma: no cover - exercised via sockets
            reader = (raw.decode("utf-8") for raw in self.rfile)

            class _Writer:
                def write(inner, text: str) -> None:
                    self.wfile.write(text.encode("utf-8"))

                def flush(inner) -> None:
                    self.wfile.flush()

            serve_stream(session, reader, _Writer(), lock=lock)

    class Server(socketserver.ThreadingTCPServer):
        allow_reuse_address = True
        daemon_threads = True

    return Server((host, port), Handler)


def serve(
    session: Optional[Session] = None,
    input_stream: Optional[IO[str]] = None,
    output_stream: Optional[IO[str]] = None,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
) -> int:
    """Run the serve loop on stdin/stdout, or on a TCP socket with ``port``."""
    session = session if session is not None else Session()
    if port is not None:
        # Remote clients must not be able to read server-side files by
        # sending path-shaped test or model specs; registered names, inline
        # litmus text and embedded documents remain available.
        session.tests.allow_paths = False
        session.models.allow_paths = False
        with serve_socket(session, host, port) as server:
            bound = server.server_address[1]
            print(f"repro serve: listening on {host}:{bound}", file=sys.stderr)
            try:
                server.serve_forever()
            except KeyboardInterrupt:  # pragma: no cover - interactive only
                pass
        return 0
    return serve_stream(
        session,
        input_stream if input_stream is not None else sys.stdin,
        output_stream if output_stream is not None else sys.stdout,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.api.serve``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.api.serve",
        description="Serve JSON-lines check/compare/explore/outcomes requests over one warm session.",
    )
    parser.add_argument(
        "--backend",
        choices=("explicit", "enumeration", "sat"),
        default="explicit",
        help="admissibility backend for the session's engine",
    )
    from repro.native.backend import KERNEL_CHOICES

    parser.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default=None,
        help="explicit-backend checking kernel (default 'auto': the C "
        "extension when built, else the bigint kernel)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address for --port")
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="serve on a TCP socket instead of stdin/stdout",
    )
    args = parser.parse_args(argv)
    session = Session(backend=args.backend, kernel=args.kernel)
    serve(session, host=args.host, port=args.port)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
