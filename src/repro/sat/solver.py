"""A CDCL SAT solver.

This module plays the role MiniSat plays in the paper's tool: deciding the
satisfiability of the CNF encodings produced by
:mod:`repro.checker.encoder`.  It implements the standard conflict-driven
clause-learning loop:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning and non-chronological
  backjumping,
* VSIDS-style exponential variable activities with decay,
* phase saving,
* Luby-sequence restarts,
* learned-clause database reduction by activity.

The instances produced by litmus-test encodings are tiny (tens of variables),
but the solver is written to be a genuinely general-purpose solver and is
exercised on random and crafted instances in the test suite.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sat.cnf import CNF, Assignment, Clause, Literal


@dataclass
class SolverStats:
    """Lifetime counters for one :class:`SatSolver` instance.

    A solver may be reused for many :meth:`SatSolver.solve` calls (the
    engine keeps one per litmus test); the counters accumulate across every
    call, so per-call figures require snapshotting deltas around a call.
    """

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    max_decision_level: int = 0


@dataclass
class SatResult:
    """Outcome of a SAT call.

    Attributes:
        satisfiable: whether a model was found.
        assignment: a satisfying assignment (variable -> bool) when
            satisfiable, otherwise ``None``.  Variables that never occurred in
            any clause default to ``False``.
        stats: solver counters for benchmarking and diagnostics.
    """

    satisfiable: bool
    assignment: Optional[Assignment]
    stats: SolverStats = field(default_factory=SolverStats)

    def __bool__(self) -> bool:
        return self.satisfiable


class _ClauseRef:
    """Internal clause representation with watched literals and activity."""

    __slots__ = ("literals", "learned", "activity")

    def __init__(self, literals: List[Literal], learned: bool) -> None:
        self.literals = literals
        self.learned = learned
        self.activity = 0.0


def _luby(i: int) -> int:
    """Return the i-th element (1-based) of the Luby restart sequence.

    The sequence is 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
    """
    if i < 1:
        raise ValueError("the Luby sequence is 1-indexed")
    k = 1
    while (1 << k) - 1 < i:
        k += 1
    if i == (1 << k) - 1:
        return 1 << (k - 1)
    return _luby(i - ((1 << (k - 1)) - 1))


class SatSolver:
    """Conflict-driven clause-learning solver for a single CNF instance."""

    _UNASSIGNED = 0
    _TRUE = 1
    _FALSE = -1

    def __init__(self, cnf: CNF) -> None:
        self._num_vars = cnf.num_vars
        self.stats = SolverStats()

        self._assign: List[int] = [self._UNASSIGNED] * (self._num_vars + 1)
        self._level: List[int] = [0] * (self._num_vars + 1)
        self._reason: List[Optional[_ClauseRef]] = [None] * (self._num_vars + 1)
        self._phase: List[bool] = [False] * (self._num_vars + 1)
        self._activity: List[float] = [0.0] * (self._num_vars + 1)
        self._activity_inc = 1.0
        self._activity_decay = 0.95
        self._clause_activity_inc = 1.0

        self._trail: List[Literal] = []
        self._trail_limits: List[int] = []
        self._propagation_head = 0

        self._clauses: List[_ClauseRef] = []
        self._learned: List[_ClauseRef] = []
        # watches[lit] = clauses currently watching literal `lit`
        self._watches: Dict[Literal, List[_ClauseRef]] = {}

        #: learned clauses are reduced once their count reaches this bound
        self.reduce_learned_threshold = 200

        # Max-heap (via negated activities) of branching candidates, with lazy
        # deletion: entries whose variable is assigned or whose recorded
        # activity is stale are discarded at pop time.  Every bump, unassign
        # and rescale pushes/rebuilds fresh entries, so an unassigned variable
        # always has at least one up-to-date entry in the heap.
        self._order_heap: List[Tuple[float, int]] = [
            (0.0, variable) for variable in range(1, self._num_vars + 1)
        ]

        self._unsatisfiable = False
        for clause in cnf.clauses:
            self._add_input_clause(clause)

    # ------------------------------------------------------------------
    # clause management
    # ------------------------------------------------------------------
    def _add_input_clause(self, clause: Clause) -> None:
        if self._unsatisfiable:
            return
        # Remove duplicate literals; drop tautological clauses.
        seen = set()
        literals: List[Literal] = []
        for literal in clause:
            if -literal in seen:
                return  # tautology: always satisfied
            if literal not in seen:
                seen.add(literal)
                literals.append(literal)
        if not literals:
            self._unsatisfiable = True
            return
        if len(literals) == 1:
            if not self._enqueue(literals[0], None):
                self._unsatisfiable = True
            return
        ref = _ClauseRef(literals, learned=False)
        self._clauses.append(ref)
        self._watch(ref)

    def _watch(self, ref: _ClauseRef) -> None:
        self._watches.setdefault(ref.literals[0], []).append(ref)
        self._watches.setdefault(ref.literals[1], []).append(ref)

    def _ensure_variable(self, variable: int) -> None:
        """Grow the per-variable arrays to accommodate ``variable``.

        Needed when assumptions mention variables that never occur in any
        clause of the input formula.
        """
        while self._num_vars < variable:
            self._num_vars += 1
            self._assign.append(self._UNASSIGNED)
            self._level.append(0)
            self._reason.append(None)
            self._phase.append(False)
            self._activity.append(0.0)
            heapq.heappush(self._order_heap, (0.0, self._num_vars))

    # ------------------------------------------------------------------
    # assignment helpers
    # ------------------------------------------------------------------
    def _value(self, literal: Literal) -> int:
        value = self._assign[abs(literal)]
        if value == self._UNASSIGNED:
            return self._UNASSIGNED
        return value if literal > 0 else -value

    def _enqueue(self, literal: Literal, reason: Optional[_ClauseRef]) -> bool:
        current = self._value(literal)
        if current == self._TRUE:
            return True
        if current == self._FALSE:
            return False
        variable = abs(literal)
        self._assign[variable] = self._TRUE if literal > 0 else self._FALSE
        self._level[variable] = self._decision_level()
        self._reason[variable] = reason
        self._phase[variable] = literal > 0
        self._trail.append(literal)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_limits)

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[_ClauseRef]:
        """Run unit propagation; return a conflicting clause or None."""
        while self._propagation_head < len(self._trail):
            literal = self._trail[self._propagation_head]
            self._propagation_head += 1
            self.stats.propagations += 1
            falsified = -literal
            watchers = self._watches.get(falsified, [])
            new_watchers: List[_ClauseRef] = []
            conflict: Optional[_ClauseRef] = None
            for index, ref in enumerate(watchers):
                if conflict is not None:
                    new_watchers.extend(watchers[index:])
                    break
                literals = ref.literals
                # Ensure the falsified literal is at position 1.
                if literals[0] == falsified:
                    literals[0], literals[1] = literals[1], literals[0]
                first = literals[0]
                if self._value(first) == self._TRUE:
                    new_watchers.append(ref)
                    continue
                # Look for a replacement watch.
                replaced = False
                for position in range(2, len(literals)):
                    if self._value(literals[position]) != self._FALSE:
                        literals[1], literals[position] = literals[position], literals[1]
                        self._watches.setdefault(literals[1], []).append(ref)
                        replaced = True
                        break
                if replaced:
                    continue
                # Clause is unit or conflicting.
                new_watchers.append(ref)
                if not self._enqueue(first, ref):
                    conflict = ref
            self._watches[falsified] = new_watchers
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------
    # conflict analysis
    # ------------------------------------------------------------------
    def _bump_variable(self, variable: int) -> None:
        self._activity[variable] += self._activity_inc
        if self._activity[variable] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._activity_inc *= 1e-100
            # Rescaling invalidates every heap entry; rebuild from scratch.
            # Assigned variables re-enter the heap when they are unassigned.
            self._order_heap = [
                (-self._activity[v], v)
                for v in range(1, self._num_vars + 1)
                if self._assign[v] == self._UNASSIGNED
            ]
            heapq.heapify(self._order_heap)
        else:
            heapq.heappush(self._order_heap, (-self._activity[variable], variable))

    def _decay_activities(self) -> None:
        self._activity_inc /= self._activity_decay

    def _analyze(self, conflict: _ClauseRef) -> (List[Literal], int):
        """First-UIP conflict analysis.

        Returns the learned clause (with the asserting literal first) and the
        backjump level.
        """
        learned: List[Literal] = [0]  # placeholder for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        literal: Optional[Literal] = None
        reason: Optional[_ClauseRef] = conflict
        trail_index = len(self._trail) - 1
        current_level = self._decision_level()

        while True:
            assert reason is not None
            reason.activity += self._clause_activity_inc
            for clause_literal in reason.literals:
                if literal is not None and abs(clause_literal) == abs(literal):
                    continue  # skip the literal being resolved on
                variable = abs(clause_literal)
                if seen[variable] or self._level[variable] == 0:
                    continue
                seen[variable] = True
                self._bump_variable(variable)
                if self._level[variable] >= current_level:
                    counter += 1
                else:
                    learned.append(clause_literal)
            # Find the next literal to resolve on (most recent seen literal).
            while not seen[abs(self._trail[trail_index])]:
                trail_index -= 1
            resolved = self._trail[trail_index]
            literal = -resolved
            variable = abs(resolved)
            seen[variable] = False
            counter -= 1
            trail_index -= 1
            if counter == 0:
                learned[0] = literal
                break
            reason = self._reason[variable]

        # Compute backjump level: second-highest level in the clause.
        if len(learned) == 1:
            backjump_level = 0
        else:
            levels = sorted((self._level[abs(lit)] for lit in learned[1:]), reverse=True)
            backjump_level = levels[0]
        return learned, backjump_level

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self._trail_limits[level]
        for literal in reversed(self._trail[limit:]):
            variable = abs(literal)
            self._assign[variable] = self._UNASSIGNED
            self._reason[variable] = None
            heapq.heappush(self._order_heap, (-self._activity[variable], variable))
        del self._trail[limit:]
        del self._trail_limits[level:]
        self._propagation_head = len(self._trail)

    def _record_learned(self, literals: List[Literal], backjump_level: int) -> None:
        self._backtrack(backjump_level)
        if len(literals) == 1:
            self._enqueue(literals[0], None)
            return
        # Put a literal from the backjump level in the second watch position.
        for position in range(1, len(literals)):
            if self._level[abs(literals[position])] == backjump_level:
                literals[1], literals[position] = literals[position], literals[1]
                break
        ref = _ClauseRef(literals, learned=True)
        ref.activity = self._clause_activity_inc
        self._learned.append(ref)
        self._watch(ref)
        self.stats.learned_clauses += 1
        self._enqueue(literals[0], ref)

    def _reduce_learned(self) -> None:
        """Drop the less active half of the learned clauses."""
        if len(self._learned) < self.reduce_learned_threshold:
            return
        locked = {id(self._reason[abs(lit)]) for lit in self._trail if self._reason[abs(lit)] is not None}
        self._learned.sort(key=lambda ref: ref.activity)
        keep_from = len(self._learned) // 2
        dropped = [ref for ref in self._learned[:keep_from] if id(ref) not in locked and len(ref.literals) > 2]
        if not dropped:
            return
        dropped_ids = {id(ref) for ref in dropped}
        self._learned = [ref for ref in self._learned if id(ref) not in dropped_ids]
        watched_literals = {ref.literals[0] for ref in dropped} | {ref.literals[1] for ref in dropped}
        for watched in watched_literals:
            bucket = self._watches.get(watched)
            if bucket:
                self._watches[watched] = [ref for ref in bucket if id(ref) not in dropped_ids]

    def num_learned_clauses(self) -> int:
        """Number of learned clauses currently in the database (reuse metric)."""
        return len(self._learned)

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def _pick_branch_variable(self) -> Optional[int]:
        while self._order_heap:
            negated_activity, variable = heapq.heappop(self._order_heap)
            if self._assign[variable] != self._UNASSIGNED:
                continue
            if -negated_activity != self._activity[variable]:
                continue  # stale entry; a fresher one is further down the heap
            return variable
        return None

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[Literal] = ()) -> SatResult:
        """Decide satisfiability (optionally under unit assumptions)."""
        if self._unsatisfiable:
            return SatResult(False, None, self.stats)

        conflict = self._propagate()
        if conflict is not None:
            # A root-level conflict refutes the formula itself, not just this
            # call: remember it so a reused solver stays sound (the
            # propagation head has already advanced past the conflict).
            self._unsatisfiable = True
            return SatResult(False, None, self.stats)

        for literal in assumptions:
            self._ensure_variable(abs(literal))
        for literal in assumptions:
            if self._value(literal) == self._FALSE:
                # Undo any assumption levels already installed by this call;
                # leaking them would poison later calls on a reused solver.
                self._backtrack(0)
                return SatResult(False, None, self.stats)
            if self._value(literal) == self._UNASSIGNED:
                self._trail_limits.append(len(self._trail))
                self._enqueue(literal, None)
                conflict = self._propagate()
                if conflict is not None:
                    self._backtrack(0)
                    return SatResult(False, None, self.stats)
        assumption_level = self._decision_level()

        conflicts_since_restart = 0
        restart_index = 1
        restart_limit = 16 * _luby(restart_index)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() <= assumption_level:
                    if self._decision_level() == 0:
                        # Conflict below every assumption: the formula itself
                        # is unsatisfiable, for this and every future call.
                        self._unsatisfiable = True
                    self._backtrack(0)
                    return SatResult(False, None, self.stats)
                learned, backjump_level = self._analyze(conflict)
                backjump_level = max(backjump_level, assumption_level)
                self._record_learned(learned, backjump_level)
                self._decay_activities()
                self._clause_activity_inc *= 1.001
                continue

            if conflicts_since_restart >= restart_limit:
                self.stats.restarts += 1
                conflicts_since_restart = 0
                restart_index += 1
                restart_limit = 16 * _luby(restart_index)
                self._backtrack(assumption_level)
                self._reduce_learned()
                continue

            variable = self._pick_branch_variable()
            if variable is None:
                assignment = {
                    v: self._assign[v] == self._TRUE for v in range(1, self._num_vars + 1)
                }
                self._backtrack(0)
                return SatResult(True, assignment, self.stats)

            self.stats.decisions += 1
            self._trail_limits.append(len(self._trail))
            self.stats.max_decision_level = max(self.stats.max_decision_level, self._decision_level())
            literal = variable if self._phase[variable] else -variable
            self._enqueue(literal, None)


def solve(cnf: CNF, assumptions: Sequence[Literal] = ()) -> SatResult:
    """Convenience wrapper: solve ``cnf`` with a fresh :class:`SatSolver`."""
    return SatSolver(cnf).solve(assumptions)
