"""A self-contained SAT solving substrate.

The paper's tool decides whether a litmus test is admissible under a memory
model by encoding the happens-before axioms into propositional logic and
calling MiniSat.  We cannot ship MiniSat, so this package provides an
equivalent substrate written from scratch:

* :mod:`repro.sat.cnf` — literals, clauses, CNF formulas, DIMACS I/O;
* :mod:`repro.sat.tseitin` — Tseitin transformation of arbitrary boolean
  circuits into CNF;
* :mod:`repro.sat.solver` — a CDCL solver with two-watched literals,
  first-UIP conflict clause learning, VSIDS-style activities, phase saving
  and Luby restarts;
* :mod:`repro.sat.simplify` — lightweight preprocessing (unit propagation,
  pure-literal elimination, tautology and duplicate removal).

The solver is exact and is cross-validated against a truth-table oracle in
the test suite.
"""

from repro.sat.cnf import CNF, Clause
from repro.sat.solver import SatResult, SatSolver, solve
from repro.sat.tseitin import BoolExpr, BoolVar, conjoin, disjoin, negate, tseitin_encode

__all__ = [
    "CNF",
    "Clause",
    "SatResult",
    "SatSolver",
    "solve",
    "BoolExpr",
    "BoolVar",
    "conjoin",
    "disjoin",
    "negate",
    "tseitin_encode",
]
