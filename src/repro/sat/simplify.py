"""Lightweight CNF preprocessing.

These transformations are not needed for correctness (the CDCL solver handles
raw formulas fine) but they shrink the tiny litmus encodings further and give
the benchmark suite an ablation point: solving with and without
preprocessing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.sat.cnf import CNF, Literal


class Unsatisfiable(Exception):
    """Raised internally when preprocessing proves the formula unsatisfiable."""


def remove_tautologies(cnf: CNF) -> CNF:
    """Drop clauses containing both a literal and its negation."""
    result = CNF(cnf.num_vars)
    for clause in cnf.clauses:
        literals = set(clause)
        if any(-literal in literals for literal in literals):
            continue
        result.add_clause(sorted(literals, key=abs))
    return result


def propagate_units(cnf: CNF) -> Tuple[CNF, Dict[int, bool]]:
    """Exhaustively apply unit propagation.

    Returns the simplified CNF and the forced partial assignment.  Raises
    :class:`Unsatisfiable` when propagation derives a contradiction.
    """
    forced: Dict[int, bool] = {}
    clauses: List[List[Literal]] = [list(clause) for clause in cnf.clauses]

    changed = True
    while changed:
        changed = False
        units: Set[Literal] = set()
        for clause in clauses:
            if len(clause) == 1:
                units.add(clause[0])
        for unit in units:
            variable, value = abs(unit), unit > 0
            if variable in forced and forced[variable] != value:
                raise Unsatisfiable()
            if variable not in forced:
                forced[variable] = value
                changed = True
        if not changed:
            break
        new_clauses: List[List[Literal]] = []
        for clause in clauses:
            satisfied = False
            remaining: List[Literal] = []
            for literal in clause:
                variable = abs(literal)
                if variable in forced:
                    if forced[variable] == (literal > 0):
                        satisfied = True
                        break
                else:
                    remaining.append(literal)
            if satisfied:
                continue
            if not remaining:
                raise Unsatisfiable()
            new_clauses.append(remaining)
        clauses = new_clauses

    result = CNF(cnf.num_vars)
    for clause in clauses:
        result.add_clause(clause)
    return result, forced


def eliminate_pure_literals(cnf: CNF) -> Tuple[CNF, Dict[int, bool]]:
    """Assign variables that occur with a single polarity.

    Returns the simplified CNF and the chosen assignment for eliminated
    variables (any clause containing a pure literal is satisfied and dropped).
    """
    polarity: Dict[int, Set[bool]] = {}
    for clause in cnf.clauses:
        for literal in clause:
            polarity.setdefault(abs(literal), set()).add(literal > 0)
    pure: Dict[int, bool] = {
        variable: next(iter(signs)) for variable, signs in polarity.items() if len(signs) == 1
    }
    result = CNF(cnf.num_vars)
    for clause in cnf.clauses:
        if any(abs(literal) in pure and pure[abs(literal)] == (literal > 0) for literal in clause):
            continue
        result.add_clause(clause)
    return result, pure


def remove_duplicate_clauses(cnf: CNF) -> CNF:
    """Drop repeated clauses (as literal sets)."""
    seen: Set[Tuple[Literal, ...]] = set()
    result = CNF(cnf.num_vars)
    for clause in cnf.clauses:
        key = tuple(sorted(set(clause)))
        if key in seen:
            continue
        seen.add(key)
        result.add_clause(key)
    return result


def preprocess(cnf: CNF) -> Tuple[Optional[CNF], Dict[int, bool]]:
    """Run the full preprocessing pipeline.

    Returns ``(simplified_cnf, forced_assignment)``; the CNF is ``None`` when
    preprocessing alone proves unsatisfiability.
    """
    forced: Dict[int, bool] = {}
    current = remove_duplicate_clauses(remove_tautologies(cnf))
    try:
        current, units = propagate_units(current)
        forced.update(units)
        current, pure = eliminate_pure_literals(current)
        forced.update(pure)
        current, units = propagate_units(current)
        forced.update(units)
    except Unsatisfiable:
        return None, forced
    return current, forced
