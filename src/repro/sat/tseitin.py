"""Boolean expressions and Tseitin transformation to CNF.

The happens-before encoder builds constraints as small boolean circuits
(implications between edge selectors, conjunctions of read-from choices, ...)
and then lowers them to CNF with the classic Tseitin transformation so the
formula size stays linear in the circuit size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple, Union

from repro.sat.cnf import CNF, Literal


class BoolExpr:
    """Base class of the tiny boolean-expression AST."""

    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return conjoin([self, other])

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return disjoin([self, other])

    def __invert__(self) -> "BoolExpr":
        return negate(self)


@dataclass(frozen=True)
class BoolConst(BoolExpr):
    """A constant True/False."""

    value: bool


@dataclass(frozen=True)
class BoolVar(BoolExpr):
    """A named problem variable."""

    name: str


@dataclass(frozen=True)
class BoolNot(BoolExpr):
    operand: BoolExpr


@dataclass(frozen=True)
class BoolAnd(BoolExpr):
    operands: Tuple[BoolExpr, ...]


@dataclass(frozen=True)
class BoolOr(BoolExpr):
    operands: Tuple[BoolExpr, ...]


TRUE = BoolConst(True)
FALSE = BoolConst(False)


def conjoin(operands: Iterable[BoolExpr]) -> BoolExpr:
    """Return the conjunction of ``operands`` with light simplification."""
    flat: List[BoolExpr] = []
    for operand in operands:
        if isinstance(operand, BoolConst):
            if not operand.value:
                return FALSE
            continue
        if isinstance(operand, BoolAnd):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return BoolAnd(tuple(flat))


def disjoin(operands: Iterable[BoolExpr]) -> BoolExpr:
    """Return the disjunction of ``operands`` with light simplification."""
    flat: List[BoolExpr] = []
    for operand in operands:
        if isinstance(operand, BoolConst):
            if operand.value:
                return TRUE
            continue
        if isinstance(operand, BoolOr):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return BoolOr(tuple(flat))


def negate(operand: BoolExpr) -> BoolExpr:
    """Return the negation of ``operand`` with double-negation elimination."""
    if isinstance(operand, BoolConst):
        return BoolConst(not operand.value)
    if isinstance(operand, BoolNot):
        return operand.operand
    return BoolNot(operand)


def implies(antecedent: BoolExpr, consequent: BoolExpr) -> BoolExpr:
    """Return ``antecedent -> consequent``."""
    return disjoin([negate(antecedent), consequent])


def iff(left: BoolExpr, right: BoolExpr) -> BoolExpr:
    """Return ``left <-> right``."""
    return conjoin([implies(left, right), implies(right, left)])


class TseitinEncoder:
    """Incrementally lowers boolean expressions into a shared CNF."""

    def __init__(self, cnf: CNF) -> None:
        self.cnf = cnf
        self._var_ids: Dict[str, int] = {}
        self._cache: Dict[BoolExpr, Literal] = {}
        self._true_literal: Union[Literal, None] = None

    def variable(self, name: str) -> int:
        """Return (allocating if necessary) the CNF variable for ``name``."""
        if name not in self._var_ids:
            self._var_ids[name] = self.cnf.new_var(name)
        return self._var_ids[name]

    def variables(self) -> Dict[str, int]:
        """Return the mapping from names to CNF variables."""
        return dict(self._var_ids)

    def _constant_literal(self, value: bool) -> Literal:
        if self._true_literal is None:
            self._true_literal = self.cnf.new_var("__true__")
            self.cnf.add_clause([self._true_literal])
        return self._true_literal if value else -self._true_literal

    def literal_for(self, expression: BoolExpr) -> Literal:
        """Return a literal equisatisfiably equivalent to ``expression``."""
        if expression in self._cache:
            return self._cache[expression]
        literal = self._encode(expression)
        self._cache[expression] = literal
        return literal

    def _encode(self, expression: BoolExpr) -> Literal:
        if isinstance(expression, BoolConst):
            return self._constant_literal(expression.value)
        if isinstance(expression, BoolVar):
            return self.variable(expression.name)
        if isinstance(expression, BoolNot):
            return -self.literal_for(expression.operand)
        if isinstance(expression, BoolAnd):
            operand_literals = [self.literal_for(op) for op in expression.operands]
            output = self.cnf.new_var()
            for literal in operand_literals:
                self.cnf.add_clause([-output, literal])
            self.cnf.add_clause([output] + [-lit for lit in operand_literals])
            return output
        if isinstance(expression, BoolOr):
            operand_literals = [self.literal_for(op) for op in expression.operands]
            output = self.cnf.new_var()
            for literal in operand_literals:
                self.cnf.add_clause([-literal, output])
            self.cnf.add_clause([-output] + list(operand_literals))
            return output
        raise TypeError(f"unknown boolean expression: {expression!r}")

    def assert_true(self, expression: BoolExpr) -> None:
        """Add clauses forcing ``expression`` to be true."""
        # Top-level conjunctions can be asserted clause by clause, which keeps
        # the CNF smaller and avoids a needless auxiliary variable.
        if isinstance(expression, BoolConst):
            if not expression.value:
                self.cnf.add_clause([])
            return
        if isinstance(expression, BoolAnd):
            for operand in expression.operands:
                self.assert_true(operand)
            return
        if isinstance(expression, BoolOr):
            literals = [self.literal_for(op) for op in expression.operands]
            self.cnf.add_clause(literals)
            return
        self.cnf.add_clause([self.literal_for(expression)])


def tseitin_encode(expression: BoolExpr) -> Tuple[CNF, Dict[str, int]]:
    """Encode a single boolean expression into CNF.

    Returns the CNF together with the mapping from variable names to DIMACS
    variable indices.  The CNF is satisfiable iff the expression is.
    """
    cnf = CNF()
    encoder = TseitinEncoder(cnf)
    encoder.assert_true(expression)
    return cnf, encoder.variables()
