"""CNF formulas in DIMACS-style integer-literal representation.

A literal is a non-zero integer: ``v`` for the positive literal of variable
``v`` and ``-v`` for its negation (exactly the DIMACS convention, so encoding
and debugging against external tools is straightforward).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

Literal = int
Clause = Tuple[Literal, ...]
Assignment = Dict[int, bool]


def literal_variable(literal: Literal) -> int:
    """Return the variable of a literal (always positive)."""
    return abs(literal)


def literal_sign(literal: Literal) -> bool:
    """Return True for a positive literal, False for a negated one."""
    return literal > 0


def negate_literal(literal: Literal) -> Literal:
    """Return the complementary literal."""
    return -literal


class CNF:
    """A conjunction of clauses plus a variable allocator.

    The class owns the variable counter so that encoders can freely allocate
    auxiliary (Tseitin) variables without clashing with problem variables.
    """

    def __init__(self, num_vars: int = 0, clauses: Iterable[Sequence[Literal]] = ()) -> None:
        self.num_vars = num_vars
        self.clauses: List[Clause] = []
        self._names: Dict[int, str] = {}
        for clause in clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def new_var(self, name: Optional[str] = None) -> int:
        """Allocate and return a fresh variable (1-based)."""
        self.num_vars += 1
        if name is not None:
            self._names[self.num_vars] = name
        return self.num_vars

    def name_of(self, variable: int) -> Optional[str]:
        """Return the debug name of ``variable`` if one was given."""
        return self._names.get(variable)

    def add_clause(self, literals: Sequence[Literal]) -> None:
        """Add a clause (a disjunction of literals).

        The empty clause is legal and makes the formula trivially
        unsatisfiable.  Literals referring to variables beyond the current
        counter grow the counter.
        """
        clause = tuple(literals)
        for literal in clause:
            if literal == 0:
                raise ValueError("0 is not a valid DIMACS literal")
            self.num_vars = max(self.num_vars, abs(literal))
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Sequence[Literal]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def extend(self, other: "CNF") -> None:
        """Append all clauses of ``other`` (variables are shared, not shifted)."""
        self.num_vars = max(self.num_vars, other.num_vars)
        self.clauses.extend(other.clauses)

    # ------------------------------------------------------------------
    # inspection / evaluation
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def variables(self) -> List[int]:
        """Return the sorted list of variables that occur in some clause."""
        return sorted({abs(literal) for clause in self.clauses for literal in clause})

    def evaluate(self, assignment: Assignment) -> bool:
        """Evaluate the formula under a (total for occurring vars) assignment."""
        for clause in self.clauses:
            if not any(assignment.get(abs(lit), False) == (lit > 0) for lit in clause):
                return False
        return True

    def copy(self) -> "CNF":
        clone = CNF(self.num_vars)
        clone.clauses = list(self.clauses)
        clone._names = dict(self._names)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CNF(num_vars={self.num_vars}, clauses={len(self.clauses)})"

    # ------------------------------------------------------------------
    # DIMACS I/O
    # ------------------------------------------------------------------
    def to_dimacs(self) -> str:
        """Serialize in DIMACS CNF format."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse a DIMACS CNF string (comments and blank lines allowed)."""
        cnf = cls()
        declared_vars = 0
        pending: List[int] = []
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"malformed problem line: {line!r}")
                declared_vars = int(parts[2])
                continue
            for token in line.split():
                literal = int(token)
                if literal == 0:
                    cnf.add_clause(pending)
                    pending = []
                else:
                    pending.append(literal)
        if pending:
            raise ValueError("last clause is not terminated by 0")
        cnf.num_vars = max(cnf.num_vars, declared_vars)
        return cnf
