"""Core data model: litmus-test IR, executions, predicates and memory models.

The public API re-exported here is what the examples and most downstream
users need:

* building litmus tests (:class:`Program`, :class:`Thread`, the instruction
  constructors and :class:`LitmusTest`);
* defining memory models (:class:`MemoryModel`, the named catalog in
  :mod:`repro.core.catalog`, and the parametric family in
  :mod:`repro.core.parametric`);
* evaluating executions (:class:`Execution`).
"""

from repro.core.expr import Const, Loc, Reg, BinOp, evaluate_expr
from repro.core.instructions import Branch, Fence, Instruction, Load, Op, Store
from repro.core.program import Program, Thread
from repro.core.litmus import LitmusTest, Outcome
from repro.core.events import Event, build_events
from repro.core.execution import Execution
from repro.core.formula import (
    And,
    Atom,
    FalseFormula,
    Formula,
    Not,
    Or,
    TrueFormula,
    parse_formula,
)
from repro.core.model import MemoryModel
from repro.core.predicates import PredicateSet, STANDARD_PREDICATES
from repro.core.catalog import (
    ALPHA,
    IBM370,
    PSO,
    RMO,
    SC,
    TSO,
    X86,
    named_models,
)
from repro.core.parametric import ParametricModel, ReorderOption, model_space

__all__ = [
    "Const",
    "Loc",
    "Reg",
    "BinOp",
    "evaluate_expr",
    "Branch",
    "Fence",
    "Instruction",
    "Load",
    "Op",
    "Store",
    "Program",
    "Thread",
    "LitmusTest",
    "Outcome",
    "Event",
    "build_events",
    "Execution",
    "Formula",
    "Atom",
    "And",
    "Or",
    "Not",
    "TrueFormula",
    "FalseFormula",
    "parse_formula",
    "MemoryModel",
    "PredicateSet",
    "STANDARD_PREDICATES",
    "SC",
    "TSO",
    "X86",
    "PSO",
    "RMO",
    "IBM370",
    "ALPHA",
    "named_models",
    "ParametricModel",
    "ReorderOption",
    "model_space",
]
