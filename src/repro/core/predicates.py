"""Predicates on instruction executions.

Must-not-reorder functions are boolean combinations of predicates drawn from
a set ``D`` (Section 2.3 of the paper).  Each predicate is either unary
(``Read(x)``, ``Write(x)``, ``Fence(x)``) or binary (``SameAddr(x, y)``,
``DataDep(x, y)``, ``CtrlDep(x, y)``) and is evaluated on events of a
concrete :class:`~repro.core.execution.Execution`.

The choice of predicate set also drives litmus-test generation: it determines
how many distinct *local segments* exist (Section 3.3), and therefore how
many template instantiations are needed (Corollary 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.core.events import Event
from repro.core.execution import Execution

UnaryEvaluator = Callable[[Execution, Event], bool]
BinaryEvaluator = Callable[[Execution, Event, Event], bool]


@dataclass(frozen=True)
class Predicate:
    """A named predicate with its arity and evaluator."""

    name: str
    arity: int
    _unary: Optional[UnaryEvaluator] = None
    _binary: Optional[BinaryEvaluator] = None

    def evaluate(self, execution: Execution, x: Event, y: Optional[Event] = None) -> bool:
        """Evaluate the predicate on ``x`` (and ``y`` for binary predicates)."""
        if self.arity == 1:
            assert self._unary is not None
            return self._unary(execution, x)
        if y is None:
            raise ValueError(f"binary predicate {self.name} needs two events")
        assert self._binary is not None
        return self._binary(execution, x, y)


def unary(name: str, evaluator: UnaryEvaluator) -> Predicate:
    """Build a unary predicate."""
    return Predicate(name, 1, _unary=evaluator)


def binary(name: str, evaluator: BinaryEvaluator) -> Predicate:
    """Build a binary predicate."""
    return Predicate(name, 2, _binary=evaluator)


# ----------------------------------------------------------------------
# the standard predicates used throughout the paper
# ----------------------------------------------------------------------
READ = unary("Read", lambda execution, event: event.is_read)
WRITE = unary("Write", lambda execution, event: event.is_write)
FENCE = unary("Fence", lambda execution, event: event.is_fence)
MEMORY_ACCESS = unary("MemAccess", lambda execution, event: event.is_memory_access)
SAME_ADDR = binary("SameAddr", lambda execution, x, y: execution.same_address(x, y))
DATA_DEP = binary("DataDep", lambda execution, x, y: execution.data_dependent(x, y))
CTRL_DEP = binary("CtrlDep", lambda execution, x, y: execution.control_dependent(x, y))
#: Dependency of either kind; convenient for RMO/Alpha style specifications.
ANY_DEP = binary(
    "Dep",
    lambda execution, x, y: execution.data_dependent(x, y) or execution.control_dependent(x, y),
)


class PredicateSet:
    """The predicate vocabulary ``D`` available to a family of models.

    Besides predicate lookup for formula evaluation, the set records which
    *features* are present, which is what segment enumeration needs:

    * ``has_fence`` — fences may appear between two accesses of a segment;
    * ``has_data_dep`` — data dependencies may link a read to a later access;
    * ``has_ctrl_dep`` — control dependencies may link a read to a later
      access (an extension; the paper's tool did not implement them);
    * ``has_same_addr`` — segments distinguish same-address from
      different-address access pairs.
    """

    def __init__(self, predicates: Iterable[Predicate]) -> None:
        self._predicates: Dict[str, Predicate] = {}
        for predicate in predicates:
            if predicate.name in self._predicates:
                raise ValueError(f"duplicate predicate name {predicate.name!r}")
            self._predicates[predicate.name] = predicate

    def __contains__(self, name: str) -> bool:
        return name in self._predicates

    def __iter__(self):
        return iter(self._predicates.values())

    def __len__(self) -> int:
        return len(self._predicates)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._predicates)

    def get(self, name: str) -> Predicate:
        """Return the predicate called ``name`` (KeyError if absent)."""
        return self._predicates[name]

    def with_predicates(self, extra: Iterable[Predicate]) -> "PredicateSet":
        """Return a new set extended with ``extra`` predicates."""
        return PredicateSet(list(self._predicates.values()) + list(extra))

    # feature flags used by segment enumeration -------------------------------
    @property
    def has_fence(self) -> bool:
        return "Fence" in self

    @property
    def has_same_addr(self) -> bool:
        return "SameAddr" in self

    @property
    def has_data_dep(self) -> bool:
        return "DataDep" in self

    @property
    def has_ctrl_dep(self) -> bool:
        return "CtrlDep" in self

    def __repr__(self) -> str:
        return f"PredicateSet({', '.join(self.names())})"


#: The predicate set used for the paper's experimental exploration
#: (Section 4.2): Read, Write, Fence, SameAddr and DataDep.
STANDARD_PREDICATES = PredicateSet([READ, WRITE, FENCE, SAME_ADDR, DATA_DEP])

#: The same set without data dependencies (the Figure 4 space).
NO_DEP_PREDICATES = PredicateSet([READ, WRITE, FENCE, SAME_ADDR])

#: The extended set including control dependencies (needed for full RMO/Alpha).
EXTENDED_PREDICATES = PredicateSet([READ, WRITE, FENCE, SAME_ADDR, DATA_DEP, CTRL_DEP])


#: The one name -> predicate mapping of every built-in predicate, built at
#: import.  Hot paths (model registries, formula evaluation, the kernel's
#: reference mask interpreter) share this dict instead of rebuilding it per
#: call; treat it as read-only.
_SHARED_REGISTRY: Dict[str, Predicate] = {
    predicate.name: predicate
    for predicate in (READ, WRITE, FENCE, MEMORY_ACCESS, SAME_ADDR, DATA_DEP, CTRL_DEP, ANY_DEP)
}


def shared_registry() -> Dict[str, Predicate]:
    """Return the process-wide built-in registry (do not mutate it)."""
    return _SHARED_REGISTRY


def default_registry() -> Dict[str, Predicate]:
    """Return a fresh name -> predicate mapping of every built-in predicate.

    Callers that only read the mapping should prefer :func:`shared_registry`,
    which skips the copy.
    """
    return dict(_SHARED_REGISTRY)
