"""Named hardware memory models from Section 2.4 of the paper.

All models are expressed with the formula DSL so that their definitions read
exactly like the paper's:

* **SC** — no reordering at all (``F = True``; see the note below).
* **IBM 370** — writes may be reordered with later reads, *except* reads to
  the same address.
* **TSO / x86** — writes may be reordered with later reads, including reads
  to the same address (load forwarding).
* **PSO** — like TSO, and writes to different addresses may also be
  reordered with later writes.
* **RMO** — everything may be reordered except fences, dependent
  instructions, and accesses ordered by a write to the same address.
* **Alpha** — like RMO but without the dependency ordering requirements
  (Alpha famously allows reordering of dependent loads).

Note on SC: the paper's running text prints ``F_SC = False``, but by its own
definition (``F(x, y)`` true means the pair *cannot* be reordered) SC needs
``F_SC = True``.  We follow the definition; the discrepancy is documented in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.model import MemoryModel
from repro.core.predicates import EXTENDED_PREDICATES, NO_DEP_PREDICATES, STANDARD_PREDICATES

#: Sequential consistency: every pair stays in program order.
SC = MemoryModel(
    "SC",
    "True",
    NO_DEP_PREDICATES,
    description="Sequential consistency (Lamport): no reordering of any kind.",
)

#: IBM 370: write->read reordering allowed only for different addresses.
IBM370 = MemoryModel(
    "IBM370",
    "(Write(x) & Read(y) & SameAddr(x, y)) | (Write(x) & Write(y)) | Read(x) | Fence(x) | Fence(y)",
    NO_DEP_PREDICATES,
    description=(
        "IBM System/370: writes may pass later reads to different addresses; "
        "a read of the same address must wait for the write."
    ),
)

#: SPARC TSO (equivalently, the x86 memory model in this framework).
TSO = MemoryModel(
    "TSO",
    "(Write(x) & Write(y)) | Read(x) | Fence(x) | Fence(y)",
    NO_DEP_PREDICATES,
    description=(
        "SPARC Total Store Order / Intel x86: only write->read reordering is allowed, "
        "with load forwarding from the local store buffer."
    ),
)

#: Intel x86 is the same model as TSO in this class (store-atomic fragment).
X86 = TSO.renamed("x86")

#: SPARC PSO: additionally relaxes write->write to different addresses.
PSO = MemoryModel(
    "PSO",
    "(Write(x) & Write(y) & SameAddr(x, y)) | Read(x) | Fence(x) | Fence(y)",
    NO_DEP_PREDICATES,
    description="SPARC Partial Store Order: TSO plus write->write reordering to different addresses.",
)

#: SPARC RMO: relaxes everything except fences, dependencies and same-address
#: accesses ordered by a later write.
RMO = MemoryModel(
    "RMO",
    "(Write(y) & SameAddr(x, y)) | Fence(x) | Fence(y) | DataDep(x, y) | CtrlDep(x, y)",
    EXTENDED_PREDICATES,
    description=(
        "SPARC Relaxed Memory Order: reads and writes may be reordered freely except "
        "across fences, dependencies, and writes to the same address."
    ),
)

#: RMO restricted to data dependencies only (the variant the paper's tool explored).
RMO_DATA_DEP_ONLY = MemoryModel(
    "RMO-data",
    "(Write(y) & SameAddr(x, y)) | Fence(x) | Fence(y) | DataDep(x, y)",
    STANDARD_PREDICATES,
    description="RMO with only data dependencies enforced (control dependencies ignored).",
)

#: Alpha: like RMO but dependencies do not order anything.
ALPHA = MemoryModel(
    "Alpha",
    "(Write(y) & SameAddr(x, y)) | Fence(x) | Fence(y)",
    NO_DEP_PREDICATES,
    description=(
        "DEC Alpha (store-atomic fragment): no dependency ordering at all; only fences "
        "and same-address write ordering constrain execution."
    ),
)


def named_models() -> Dict[str, MemoryModel]:
    """Return every catalogued model keyed by name."""
    models = [SC, IBM370, TSO, X86, PSO, RMO, RMO_DATA_DEP_ONLY, ALPHA]
    return {model.name: model for model in models}


def catalog_summary() -> List[str]:
    """Return one formatted line per catalogued model (for reports/examples).

    Name resolution and formatting live in
    :class:`repro.api.registry.ModelRegistry`, the single owner of the model
    namespace; this wrapper summarises a catalog-only registry.
    """
    from repro.api.registry import ModelRegistry

    return ModelRegistry().summary()
