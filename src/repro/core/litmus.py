"""Litmus tests.

A litmus test is a small parallel program together with one *candidate
execution* (the values every load observes), usually summarised in the paper
as a condition on the final register values, e.g.::

    Test L5
    T1              T2
    Read X -> r1    Read Y -> r2
    Write Y <- 1    Write X <- 1
    Outcome: r1 = 1; r2 = 1

Asking whether a memory model *allows* a litmus test means asking whether
that candidate execution is admitted by the model's axioms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.execution import EventKey, Execution
from repro.core.instructions import Load
from repro.core.program import Program


@dataclass(frozen=True)
class Outcome:
    """The observed values of a litmus test.

    ``read_values`` is the canonical form: the value observed by every load,
    keyed by ``(thread_index, instruction_index)``.  ``registers`` is the
    equivalent final-register condition used for display; for the
    single-assignment programs this library works with the two are
    interchangeable.
    """

    read_values: Tuple[Tuple[EventKey, int], ...]

    def __init__(self, read_values: Mapping[EventKey, int]) -> None:
        object.__setattr__(
            self, "read_values", tuple(sorted(read_values.items()))
        )

    def as_dict(self) -> Dict[EventKey, int]:
        return dict(self.read_values)

    def __len__(self) -> int:
        return len(self.read_values)


@dataclass(frozen=True)
class LitmusTest:
    """A named litmus test: program plus candidate outcome."""

    name: str
    program: Program
    outcome: Outcome
    description: str = ""

    def __init__(
        self,
        name: str,
        program: Program,
        outcome: Mapping[EventKey, int],
        description: str = "",
    ) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "program", program)
        if isinstance(outcome, Outcome):
            object.__setattr__(self, "outcome", outcome)
        else:
            object.__setattr__(self, "outcome", Outcome(outcome))
        object.__setattr__(self, "description", description)
        self._check_outcome_covers_loads()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_register_outcome(
        cls,
        name: str,
        program: Program,
        register_values: Mapping[str, int],
        description: str = "",
    ) -> "LitmusTest":
        """Build a test from a final-register condition.

        Every load destination register must appear in ``register_values``;
        values for non-load registers (the ``t`` temporaries of dependency
        idioms) are ignored because they are implied.
        """
        read_values: Dict[EventKey, int] = {}
        for thread_index, thread in enumerate(program.threads):
            for instruction_index, instruction in enumerate(thread.instructions):
                if isinstance(instruction, Load):
                    if instruction.dest not in register_values:
                        raise ValueError(
                            f"register outcome does not constrain load register "
                            f"{instruction.dest!r} in thread {thread.name}"
                        )
                    read_values[(thread_index, instruction_index)] = register_values[
                        instruction.dest
                    ]
        return cls(name, program, read_values, description)

    def _check_outcome_covers_loads(self) -> None:
        outcome = self.outcome.as_dict()
        for thread_index, thread in enumerate(self.program.threads):
            for instruction_index, instruction in enumerate(thread.instructions):
                key = (thread_index, instruction_index)
                if isinstance(instruction, Load) and key not in outcome:
                    raise ValueError(
                        f"test {self.name!r}: outcome does not give a value for load "
                        f"T{thread_index + 1}.{instruction_index}"
                    )

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def execution(self, initial_values: Optional[Mapping[str, int]] = None) -> Execution:
        """Return the candidate :class:`Execution` described by the outcome."""
        return Execution(self.program, self.outcome.as_dict(), initial_values)

    def register_outcome(self) -> Dict[str, int]:
        """Return the outcome as final register values (load registers only)."""
        outcome = self.outcome.as_dict()
        result: Dict[str, int] = {}
        for thread_index, thread in enumerate(self.program.threads):
            for instruction_index, instruction in enumerate(thread.instructions):
                if isinstance(instruction, Load):
                    result[instruction.dest] = outcome[(thread_index, instruction_index)]
        return result

    def num_memory_accesses(self) -> int:
        return self.program.num_memory_accesses()

    def num_threads(self) -> int:
        return len(self.program)

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------
    def pretty(self) -> str:
        """Render the test in the paper's two-column style."""
        columns: List[List[str]] = []
        for thread in self.program.threads:
            columns.append([str(instruction) for instruction in thread.instructions])
        header = [thread.name for thread in self.program.threads]
        widths = [
            max([len(header[i])] + [len(line) for line in column]) for i, column in enumerate(columns)
        ]
        height = max(len(column) for column in columns) if columns else 0

        lines = [f"Test {self.name}"]
        lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(columns))))
        for row in range(height):
            cells = []
            for i, column in enumerate(columns):
                cell = column[row] if row < len(column) else ""
                cells.append(cell.ljust(widths[i]))
            lines.append("  ".join(cells).rstrip())
        condition = "; ".join(
            f"{register} = {value}" for register, value in sorted(self.register_outcome().items())
        )
        lines.append(f"Outcome: {condition}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.pretty()
