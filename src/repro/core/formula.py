"""Boolean formulas over predicates, and a small text DSL.

A must-not-reorder function is written as a boolean combination of predicate
applications, for example SPARC TSO (Section 2.4)::

    (Write(x) & Write(y)) | Read(x) | Fence(x) | Fence(y)

The paper restricts the class to *quantifier-free positive* functions; the
AST nevertheless supports negation (:class:`Not`) so that users can write
experimental models, and :meth:`Formula.is_positive` reports whether a
formula stays inside the paper's class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.core.events import Event
from repro.core.execution import Execution
from repro.core.predicates import Predicate, default_registry


class FormulaError(ValueError):
    """Raised for malformed formulas or parse errors.

    Parse errors carry the offending ``source`` text and the character
    ``position`` the parser stopped at; the rendered message then includes
    the source line with a caret under the position::

        unexpected token ')' at position 11
            Write(x) & ) | Read(y)
                       ^

    Errors raised outside parsing (unknown predicates at evaluation time,
    malformed hand-built atoms) have ``source`` and ``position`` set to
    ``None`` and render as the bare message.
    """

    def __init__(
        self,
        message: str,
        source: Optional[str] = None,
        position: Optional[int] = None,
    ) -> None:
        self.message = message
        self.source = source
        self.position = position
        super().__init__(self._render())

    def _render(self) -> str:
        if self.source is None or self.position is None:
            return self.message
        # Locate the offending line for multi-line sources.
        start = self.source.rfind("\n", 0, self.position) + 1
        end = self.source.find("\n", self.position)
        line = self.source[start:] if end < 0 else self.source[start:end]
        column = self.position - start
        caret = " " * column + "^"
        return f"{self.message} at position {self.position}\n    {line}\n    {caret}"


class Formula:
    """Base class for must-not-reorder formulas."""

    def evaluate(
        self,
        execution: Execution,
        x: Event,
        y: Event,
        registry: Optional[Dict[str, Predicate]] = None,
    ) -> bool:
        """Evaluate the formula on the ordered event pair ``(x, y)``."""
        raise NotImplementedError

    def atoms(self) -> Tuple["Atom", ...]:
        """Return every predicate application occurring in the formula."""
        raise NotImplementedError

    def is_positive(self) -> bool:
        """Return True iff the formula contains no negation."""
        raise NotImplementedError

    # operator sugar -----------------------------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class TrueFormula(Formula):
    """The constant ``True``: every program-order pair must stay in order.

    This is the must-not-reorder function of sequential consistency.  (The
    paper's Section 2.4 prints ``F_SC = False``, which is inconsistent with
    its own definition that ``F(x, y)`` true means *cannot* be reordered; we
    follow the definition, so SC uses ``True`` — see
    :mod:`repro.core.catalog` and EXPERIMENTS.md.)
    """

    def evaluate(self, execution, x, y, registry=None) -> bool:
        return True

    def atoms(self) -> Tuple["Atom", ...]:
        return ()

    def is_positive(self) -> bool:
        return True

    def __str__(self) -> str:
        return "True"


@dataclass(frozen=True)
class FalseFormula(Formula):
    """The constant ``False`` (no pair is forced to stay in order)."""

    def evaluate(self, execution, x, y, registry=None) -> bool:
        return False

    def atoms(self) -> Tuple["Atom", ...]:
        return ()

    def is_positive(self) -> bool:
        return True

    def __str__(self) -> str:
        return "False"


@dataclass(frozen=True)
class Atom(Formula):
    """A predicate application, e.g. ``SameAddr(x, y)`` or ``Read(x)``.

    ``args`` is a tuple of the formal names ``"x"`` and/or ``"y"``; a unary
    predicate applied to ``"y"`` (such as ``Fence(y)``) is therefore
    ``Atom("Fence", ("y",))``.
    """

    predicate: str
    args: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.args or len(self.args) > 2:
            raise FormulaError(f"predicate {self.predicate} must take one or two arguments")
        for arg in self.args:
            if arg not in ("x", "y"):
                raise FormulaError(f"unknown formula variable {arg!r} (expected 'x' or 'y')")

    def evaluate(self, execution, x, y, registry=None) -> bool:
        registry = registry or default_registry()
        if self.predicate not in registry:
            raise FormulaError(f"unknown predicate {self.predicate!r}")
        predicate = registry[self.predicate]
        events = tuple(x if arg == "x" else y for arg in self.args)
        if predicate.arity == 1:
            if len(events) != 1:
                raise FormulaError(f"predicate {self.predicate} is unary")
            return predicate.evaluate(execution, events[0])
        if len(events) != 2:
            raise FormulaError(f"predicate {self.predicate} is binary")
        return predicate.evaluate(execution, events[0], events[1])

    def atoms(self) -> Tuple["Atom", ...]:
        return (self,)

    def is_positive(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.predicate}({', '.join(self.args)})"


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def evaluate(self, execution, x, y, registry=None) -> bool:
        return not self.operand.evaluate(execution, x, y, registry)

    def atoms(self) -> Tuple["Atom", ...]:
        return self.operand.atoms()

    def is_positive(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"!{_parenthesise(self.operand)}"


@dataclass(frozen=True)
class And(Formula):
    operands: Tuple[Formula, ...]

    def __init__(self, operands: Iterable[Formula]) -> None:
        object.__setattr__(self, "operands", tuple(operands))

    def evaluate(self, execution, x, y, registry=None) -> bool:
        return all(op.evaluate(execution, x, y, registry) for op in self.operands)

    def atoms(self) -> Tuple["Atom", ...]:
        return tuple(atom for op in self.operands for atom in op.atoms())

    def is_positive(self) -> bool:
        return all(op.is_positive() for op in self.operands)

    def __str__(self) -> str:
        return " & ".join(_parenthesise(op) for op in self.operands)


@dataclass(frozen=True)
class Or(Formula):
    operands: Tuple[Formula, ...]

    def __init__(self, operands: Iterable[Formula]) -> None:
        object.__setattr__(self, "operands", tuple(operands))

    def evaluate(self, execution, x, y, registry=None) -> bool:
        return any(op.evaluate(execution, x, y, registry) for op in self.operands)

    def atoms(self) -> Tuple["Atom", ...]:
        return tuple(atom for op in self.operands for atom in op.atoms())

    def is_positive(self) -> bool:
        return all(op.is_positive() for op in self.operands)

    def __str__(self) -> str:
        return " | ".join(
            f"({op})" if isinstance(op, Or) else _parenthesise(op) for op in self.operands
        )


def _parenthesise(formula: Formula) -> str:
    if isinstance(formula, (Or, And)) and len(formula.operands) > 1:
        return f"({formula})"
    return str(formula)


# ----------------------------------------------------------------------
# tiny DSL:  Write(x) & Read(y) & SameAddr(x,y) | Fence(x) | Fence(y)
# ----------------------------------------------------------------------
class _Tokenizer:
    """Tokenizes the formula DSL; tokens are ``(kind, value, position)``."""

    SYMBOLS = {"(": "LPAREN", ")": "RPAREN", ",": "COMMA", "&": "AND", "|": "OR", "!": "NOT"}

    def __init__(self, text: str) -> None:
        self.source = text
        self.tokens = list(self._tokenize(text))
        self.position = 0

    def _tokenize(self, text: str):
        index = 0
        while index < len(text):
            char = text[index]
            if char.isspace():
                index += 1
                continue
            if char in self.SYMBOLS:
                yield (self.SYMBOLS[char], char, index)
                index += 1
                continue
            if char.isalpha() or char == "_":
                start = index
                while index < len(text) and (text[index].isalnum() or text[index] == "_"):
                    index += 1
                yield ("NAME", text[start:index], start)
                continue
            raise FormulaError(
                f"unexpected character {char!r} in formula", source=text, position=index
            )

    def error(self, message: str, position: Optional[int] = None) -> "FormulaError":
        """Build a parse error anchored at ``position`` (end of input by default)."""
        if position is None:
            position = len(self.source)
        return FormulaError(message, source=self.source, position=position)

    def peek(self) -> Optional[Tuple[str, str, int]]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self) -> Tuple[str, str, int]:
        token = self.peek()
        if token is None:
            raise self.error("unexpected end of formula")
        self.position += 1
        return token

    def expect(self, kind: str) -> Tuple[str, str, int]:
        token = self.next()
        if token[0] != kind:
            symbol = next(
                (char for char, name in self.SYMBOLS.items() if name == kind), kind
            )
            raise self.error(
                f"expected {symbol!r}, found {token[1]!r}", position=token[2]
            )
        return token


def parse_formula(text: str) -> Formula:
    """Parse the formula DSL.

    Grammar (``|`` binds loosest, then ``&``, then ``!``)::

        or_expr   := and_expr ('|' and_expr)*
        and_expr  := not_expr ('&' not_expr)*
        not_expr  := '!' not_expr | atom
        atom      := 'True' | 'False' | NAME '(' args ')' | '(' or_expr ')'
        args      := NAME (',' NAME)*
    """
    tokenizer = _Tokenizer(text)
    formula = _parse_or(tokenizer)
    trailing = tokenizer.peek()
    if trailing is not None:
        raise tokenizer.error(
            f"trailing input after formula: {trailing[1]!r}", position=trailing[2]
        )
    return formula


def _parse_or(tokenizer: _Tokenizer) -> Formula:
    operands = [_parse_and(tokenizer)]
    while tokenizer.peek() is not None and tokenizer.peek()[0] == "OR":
        tokenizer.next()
        operands.append(_parse_and(tokenizer))
    return operands[0] if len(operands) == 1 else Or(operands)


def _parse_and(tokenizer: _Tokenizer) -> Formula:
    operands = [_parse_not(tokenizer)]
    while tokenizer.peek() is not None and tokenizer.peek()[0] == "AND":
        tokenizer.next()
        operands.append(_parse_not(tokenizer))
    return operands[0] if len(operands) == 1 else And(operands)


def _parse_not(tokenizer: _Tokenizer) -> Formula:
    token = tokenizer.peek()
    if token is not None and token[0] == "NOT":
        tokenizer.next()
        return Not(_parse_not(tokenizer))
    return _parse_atom(tokenizer)


def _parse_atom(tokenizer: _Tokenizer) -> Formula:
    kind, value, position = tokenizer.next()
    if kind == "LPAREN":
        inner = _parse_or(tokenizer)
        tokenizer.expect("RPAREN")
        return inner
    if kind != "NAME":
        raise tokenizer.error(f"unexpected token {value!r}", position=position)
    if value == "True":
        return TrueFormula()
    if value == "False":
        return FalseFormula()
    tokenizer.expect("LPAREN")
    arg_tokens = [tokenizer.expect("NAME")]
    while tokenizer.peek() is not None and tokenizer.peek()[0] == "COMMA":
        tokenizer.next()
        arg_tokens.append(tokenizer.expect("NAME"))
    tokenizer.expect("RPAREN")
    for _kind, arg, arg_position in arg_tokens:
        if arg not in ("x", "y"):
            raise tokenizer.error(
                f"unknown formula variable {arg!r} (expected 'x' or 'y')",
                position=arg_position,
            )
    if len(arg_tokens) > 2:
        raise tokenizer.error(
            f"predicate {value} must take one or two arguments", position=position
        )
    return Atom(value, tuple(token[1] for token in arg_tokens))
