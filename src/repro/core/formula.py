"""Boolean formulas over predicates, and a small text DSL.

A must-not-reorder function is written as a boolean combination of predicate
applications, for example SPARC TSO (Section 2.4)::

    (Write(x) & Write(y)) | Read(x) | Fence(x) | Fence(y)

The paper restricts the class to *quantifier-free positive* functions; the
AST nevertheless supports negation (:class:`Not`) so that users can write
experimental models, and :meth:`Formula.is_positive` reports whether a
formula stays inside the paper's class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.core.events import Event
from repro.core.execution import Execution
from repro.core.predicates import Predicate, default_registry


class FormulaError(ValueError):
    """Raised for malformed formulas or parse errors."""


class Formula:
    """Base class for must-not-reorder formulas."""

    def evaluate(
        self,
        execution: Execution,
        x: Event,
        y: Event,
        registry: Optional[Dict[str, Predicate]] = None,
    ) -> bool:
        """Evaluate the formula on the ordered event pair ``(x, y)``."""
        raise NotImplementedError

    def atoms(self) -> Tuple["Atom", ...]:
        """Return every predicate application occurring in the formula."""
        raise NotImplementedError

    def is_positive(self) -> bool:
        """Return True iff the formula contains no negation."""
        raise NotImplementedError

    # operator sugar -----------------------------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class TrueFormula(Formula):
    """The constant ``True``: every program-order pair must stay in order.

    This is the must-not-reorder function of sequential consistency.  (The
    paper's Section 2.4 prints ``F_SC = False``, which is inconsistent with
    its own definition that ``F(x, y)`` true means *cannot* be reordered; we
    follow the definition, so SC uses ``True`` — see
    :mod:`repro.core.catalog` and EXPERIMENTS.md.)
    """

    def evaluate(self, execution, x, y, registry=None) -> bool:
        return True

    def atoms(self) -> Tuple["Atom", ...]:
        return ()

    def is_positive(self) -> bool:
        return True

    def __str__(self) -> str:
        return "True"


@dataclass(frozen=True)
class FalseFormula(Formula):
    """The constant ``False`` (no pair is forced to stay in order)."""

    def evaluate(self, execution, x, y, registry=None) -> bool:
        return False

    def atoms(self) -> Tuple["Atom", ...]:
        return ()

    def is_positive(self) -> bool:
        return True

    def __str__(self) -> str:
        return "False"


@dataclass(frozen=True)
class Atom(Formula):
    """A predicate application, e.g. ``SameAddr(x, y)`` or ``Read(x)``.

    ``args`` is a tuple of the formal names ``"x"`` and/or ``"y"``; a unary
    predicate applied to ``"y"`` (such as ``Fence(y)``) is therefore
    ``Atom("Fence", ("y",))``.
    """

    predicate: str
    args: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.args or len(self.args) > 2:
            raise FormulaError(f"predicate {self.predicate} must take one or two arguments")
        for arg in self.args:
            if arg not in ("x", "y"):
                raise FormulaError(f"unknown formula variable {arg!r} (expected 'x' or 'y')")

    def evaluate(self, execution, x, y, registry=None) -> bool:
        registry = registry or default_registry()
        if self.predicate not in registry:
            raise FormulaError(f"unknown predicate {self.predicate!r}")
        predicate = registry[self.predicate]
        events = tuple(x if arg == "x" else y for arg in self.args)
        if predicate.arity == 1:
            if len(events) != 1:
                raise FormulaError(f"predicate {self.predicate} is unary")
            return predicate.evaluate(execution, events[0])
        if len(events) != 2:
            raise FormulaError(f"predicate {self.predicate} is binary")
        return predicate.evaluate(execution, events[0], events[1])

    def atoms(self) -> Tuple["Atom", ...]:
        return (self,)

    def is_positive(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.predicate}({', '.join(self.args)})"


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def evaluate(self, execution, x, y, registry=None) -> bool:
        return not self.operand.evaluate(execution, x, y, registry)

    def atoms(self) -> Tuple["Atom", ...]:
        return self.operand.atoms()

    def is_positive(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"!{_parenthesise(self.operand)}"


@dataclass(frozen=True)
class And(Formula):
    operands: Tuple[Formula, ...]

    def __init__(self, operands: Iterable[Formula]) -> None:
        object.__setattr__(self, "operands", tuple(operands))

    def evaluate(self, execution, x, y, registry=None) -> bool:
        return all(op.evaluate(execution, x, y, registry) for op in self.operands)

    def atoms(self) -> Tuple["Atom", ...]:
        return tuple(atom for op in self.operands for atom in op.atoms())

    def is_positive(self) -> bool:
        return all(op.is_positive() for op in self.operands)

    def __str__(self) -> str:
        return " & ".join(_parenthesise(op) for op in self.operands)


@dataclass(frozen=True)
class Or(Formula):
    operands: Tuple[Formula, ...]

    def __init__(self, operands: Iterable[Formula]) -> None:
        object.__setattr__(self, "operands", tuple(operands))

    def evaluate(self, execution, x, y, registry=None) -> bool:
        return any(op.evaluate(execution, x, y, registry) for op in self.operands)

    def atoms(self) -> Tuple["Atom", ...]:
        return tuple(atom for op in self.operands for atom in op.atoms())

    def is_positive(self) -> bool:
        return all(op.is_positive() for op in self.operands)

    def __str__(self) -> str:
        return " | ".join(
            f"({op})" if isinstance(op, Or) else _parenthesise(op) for op in self.operands
        )


def _parenthesise(formula: Formula) -> str:
    if isinstance(formula, (Or, And)) and len(formula.operands) > 1:
        return f"({formula})"
    return str(formula)


# ----------------------------------------------------------------------
# tiny DSL:  Write(x) & Read(y) & SameAddr(x,y) | Fence(x) | Fence(y)
# ----------------------------------------------------------------------
class _Tokenizer:
    """Tokenizes the formula DSL."""

    SYMBOLS = {"(": "LPAREN", ")": "RPAREN", ",": "COMMA", "&": "AND", "|": "OR", "!": "NOT"}

    def __init__(self, text: str) -> None:
        self.tokens = list(self._tokenize(text))
        self.position = 0

    def _tokenize(self, text: str):
        index = 0
        while index < len(text):
            char = text[index]
            if char.isspace():
                index += 1
                continue
            if char in self.SYMBOLS:
                yield (self.SYMBOLS[char], char)
                index += 1
                continue
            if char.isalpha() or char == "_":
                start = index
                while index < len(text) and (text[index].isalnum() or text[index] == "_"):
                    index += 1
                yield ("NAME", text[start:index])
                continue
            raise FormulaError(f"unexpected character {char!r} in formula")

    def peek(self) -> Optional[Tuple[str, str]]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise FormulaError("unexpected end of formula")
        self.position += 1
        return token

    def expect(self, kind: str) -> Tuple[str, str]:
        token = self.next()
        if token[0] != kind:
            raise FormulaError(f"expected {kind}, found {token[1]!r}")
        return token


def parse_formula(text: str) -> Formula:
    """Parse the formula DSL.

    Grammar (``|`` binds loosest, then ``&``, then ``!``)::

        or_expr   := and_expr ('|' and_expr)*
        and_expr  := not_expr ('&' not_expr)*
        not_expr  := '!' not_expr | atom
        atom      := 'True' | 'False' | NAME '(' args ')' | '(' or_expr ')'
        args      := NAME (',' NAME)*
    """
    tokenizer = _Tokenizer(text)
    formula = _parse_or(tokenizer)
    if tokenizer.peek() is not None:
        raise FormulaError(f"trailing input after formula: {tokenizer.peek()[1]!r}")
    return formula


def _parse_or(tokenizer: _Tokenizer) -> Formula:
    operands = [_parse_and(tokenizer)]
    while tokenizer.peek() is not None and tokenizer.peek()[0] == "OR":
        tokenizer.next()
        operands.append(_parse_and(tokenizer))
    return operands[0] if len(operands) == 1 else Or(operands)


def _parse_and(tokenizer: _Tokenizer) -> Formula:
    operands = [_parse_not(tokenizer)]
    while tokenizer.peek() is not None and tokenizer.peek()[0] == "AND":
        tokenizer.next()
        operands.append(_parse_not(tokenizer))
    return operands[0] if len(operands) == 1 else And(operands)


def _parse_not(tokenizer: _Tokenizer) -> Formula:
    token = tokenizer.peek()
    if token is not None and token[0] == "NOT":
        tokenizer.next()
        return Not(_parse_not(tokenizer))
    return _parse_atom(tokenizer)


def _parse_atom(tokenizer: _Tokenizer) -> Formula:
    kind, value = tokenizer.next()
    if kind == "LPAREN":
        inner = _parse_or(tokenizer)
        tokenizer.expect("RPAREN")
        return inner
    if kind != "NAME":
        raise FormulaError(f"unexpected token {value!r}")
    if value == "True":
        return TrueFormula()
    if value == "False":
        return FalseFormula()
    tokenizer.expect("LPAREN")
    args = [tokenizer.expect("NAME")[1]]
    while tokenizer.peek() is not None and tokenizer.peek()[0] == "COMMA":
        tokenizer.next()
        args.append(tokenizer.expect("NAME")[1])
    tokenizer.expect("RPAREN")
    return Atom(value, tuple(args))
