"""Threads and programs.

A parallel program is a tuple of threads; each thread is a straight-line
sequence of instructions (litmus tests never loop, so there is no need for
loop unrolling here — the framework's definitions assume it has already been
done).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.core.expr import Loc
from repro.core.instructions import Instruction, Load, Store


@dataclass(frozen=True)
class Thread:
    """A single thread: a name and an instruction sequence."""

    name: str
    instructions: Tuple[Instruction, ...]

    def __init__(self, name: str, instructions: Iterable[Instruction]) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "instructions", tuple(instructions))

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def memory_accesses(self) -> List[Instruction]:
        """Return the loads and stores of this thread, in program order."""
        return [inst for inst in self.instructions if inst.is_memory_access]

    def registers(self) -> Set[str]:
        """Return every register read or written by this thread."""
        result: Set[str] = set()
        for instruction in self.instructions:
            result |= instruction.registers_read()
            result |= instruction.registers_written()
        return result

    def validate(self) -> None:
        """Check single-thread well-formedness.

        Every register must be defined (by a Load or an Op) before it is
        used, and no register may be defined twice — litmus tests in the
        paper use single-assignment registers, and the outcome semantics of
        :class:`repro.core.litmus.LitmusTest` relies on it.
        """
        defined: Set[str] = set()
        for index, instruction in enumerate(self.instructions):
            reads = instruction.registers_read()
            for register in sorted(reads) if reads else ():
                if register not in defined:
                    raise ValueError(
                        f"thread {self.name}: instruction {index} ({instruction}) reads "
                        f"undefined register {register!r}"
                    )
            writes = instruction.registers_written()
            for register in sorted(writes) if writes else ():
                if register in defined:
                    raise ValueError(
                        f"thread {self.name}: register {register!r} is assigned more than once"
                    )
                defined.add(register)


@dataclass(frozen=True)
class Program:
    """A parallel program: an ordered collection of threads."""

    threads: Tuple[Thread, ...]

    def __init__(self, threads: Iterable[Thread]) -> None:
        object.__setattr__(self, "threads", tuple(threads))

    def __len__(self) -> int:
        return len(self.threads)

    def __iter__(self):
        return iter(self.threads)

    @classmethod
    def from_lists(cls, *thread_bodies: Sequence[Instruction], names: Sequence[str] = ()) -> "Program":
        """Build a program from bare instruction lists.

        Threads are named ``T1``, ``T2``, ... unless ``names`` is given.
        """
        threads = []
        for index, body in enumerate(thread_bodies):
            name = names[index] if index < len(names) else f"T{index + 1}"
            threads.append(Thread(name, body))
        return cls(threads)

    def locations(self) -> List[str]:
        """Return the shared locations named syntactically, in first-use order."""
        seen: List[str] = []
        for thread in self.threads:
            for instruction in thread.instructions:
                candidates = []
                if isinstance(instruction, Load):
                    candidates.append(instruction.address)
                elif isinstance(instruction, Store):
                    candidates.append(instruction.address)
                for expr in candidates:
                    for loc in _locations_in(expr):
                        if loc not in seen:
                            seen.append(loc)
        return seen

    def registers(self) -> Dict[str, Set[str]]:
        """Return the registers used by each thread, keyed by thread name."""
        return {thread.name: thread.registers() for thread in self.threads}

    def num_memory_accesses(self) -> int:
        """Return the total number of loads and stores in the program."""
        return sum(len(thread.memory_accesses()) for thread in self.threads)

    def validate(self) -> None:
        """Check program well-formedness (thread validity + unique names)."""
        names = [thread.name for thread in self.threads]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate thread names: {names}")
        for thread in self.threads:
            thread.validate()


def _locations_in(expr) -> List[str]:
    """Return the location names syntactically present in an expression."""
    from repro.core.expr import BinOp

    if isinstance(expr, Loc):
        return [expr.name]
    if isinstance(expr, BinOp):
        return _locations_in(expr.left) + _locations_in(expr.right)
    return []
