"""Concrete program executions.

A *program execution* in the paper's sense associates with every thread a
sequence of instruction executions annotated with concrete register values.
For a loop-free litmus program the only free choices are the values observed
by the loads; everything else (register contents, resolved addresses, stored
values, dependency relations) follows deterministically.  :class:`Execution`
performs that evaluation once and exposes the derived facts that the
predicates and the happens-before axioms consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.core.events import Event, build_events, flatten_events
from repro.core.expr import Const, ExprError, Loc, Value, evaluate_expr, resolve_location
from repro.core.instructions import Branch, Fence, Load, Op, Store
from repro.core.program import Program

#: Key identifying a load event: (thread index, instruction index).
EventKey = Tuple[int, int]

#: Shared empty dependency-source set (the straight-line common case).
_EMPTY_KEYS: FrozenSet[EventKey] = frozenset()


class ExecutionError(ValueError):
    """Raised when an execution cannot be constructed (e.g. missing values)."""


@dataclass(frozen=True)
class MemoryAccessInfo:
    """Resolved facts about one memory-access event."""

    event: Event
    location: str
    value: int


class Execution:
    """A fully evaluated execution of a litmus program.

    Args:
        program: the litmus program.
        read_values: the value observed by every load, keyed by
            ``(thread_index, instruction_index)``.
        initial_values: initial memory contents per location (default 0).

    Raises:
        ExecutionError: when a load has no specified value, an expression
            reads an undefined register, or an address does not resolve to a
            location.
    """

    def __init__(
        self,
        program: Program,
        read_values: Mapping[EventKey, int],
        initial_values: Optional[Mapping[str, int]] = None,
    ) -> None:
        program.validate()
        self.program = program
        self.read_values: Dict[EventKey, int] = dict(read_values)
        self.initial_values: Dict[str, int] = dict(initial_values or {})

        self.events_by_thread: List[List[Event]] = build_events(program)
        self.events: List[Event] = flatten_events(self.events_by_thread)
        self._event_by_key: Dict[EventKey, Event] = {
            (event.thread_index, event.index): event for event in self.events
        }

        #: per-thread final register valuations
        self.registers: List[Dict[str, Value]] = []
        #: resolved location per memory-access event key
        self._locations: Dict[EventKey, str] = {}
        #: concrete value per memory-access event key (read or written value)
        self._values: Dict[EventKey, int] = {}
        #: for each event key, the set of load event keys it data-depends on
        self._data_sources: Dict[EventKey, FrozenSet[EventKey]] = {}
        #: for each event key, the set of load event keys it control-depends on
        self._control_sources: Dict[EventKey, FrozenSet[EventKey]] = {}

        # Memoised derived views (the events never change after __init__).
        self._loads: Optional[List[Event]] = None
        self._stores: Optional[List[Event]] = None
        self._stores_by_location: Optional[Dict[str, List[Event]]] = None
        self._locations_in_order: Optional[List[str]] = None

        self._evaluate()

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _evaluate(self) -> None:
        for thread_index, thread_events in enumerate(self.events_by_thread):
            registers: Dict[str, Value] = {}
            register_sources: Dict[str, Set[EventKey]] = {}
            control_sources: Set[EventKey] = set()
            for event in thread_events:
                key = (event.thread_index, event.index)
                instruction = event.instruction

                # Straight-line fast path: literal-address loads and
                # literal stores read no registers, so (absent an earlier
                # branch) their dependency sets are empty and no expression
                # evaluation is needed.  This covers the whole enumerated
                # litmus fragment; anything else falls through to the
                # generic interpreter below.
                if not control_sources:
                    if isinstance(instruction, Load):
                        address = instruction.address
                        if type(address) is Loc:
                            if key not in self.read_values:
                                raise ExecutionError(
                                    f"no observed value for load {event.uid} ({instruction})"
                                )
                            self._data_sources[key] = _EMPTY_KEYS
                            self._control_sources[key] = _EMPTY_KEYS
                            value = self.read_values[key]
                            self._locations[key] = address.name
                            self._values[key] = value
                            registers[instruction.dest] = value
                            register_sources[instruction.dest] = {key}
                            continue
                    elif isinstance(instruction, Store):
                        address = instruction.address
                        stored_expr = instruction.value
                        if (
                            type(address) is Loc
                            and type(stored_expr) is Const
                            and isinstance(stored_expr.value, int)
                        ):
                            self._data_sources[key] = _EMPTY_KEYS
                            self._control_sources[key] = _EMPTY_KEYS
                            self._locations[key] = address.name
                            self._values[key] = stored_expr.value
                            continue
                    elif isinstance(instruction, Fence):
                        self._data_sources[key] = _EMPTY_KEYS
                        self._control_sources[key] = _EMPTY_KEYS
                        continue
                # Data-dependency sources of the registers this instruction reads.
                read_sources: Set[EventKey] = set()
                for register in instruction.registers_read():
                    read_sources |= register_sources.get(register, set())
                self._data_sources[key] = frozenset(read_sources)
                self._control_sources[key] = frozenset(control_sources)

                if isinstance(instruction, Load):
                    if key not in self.read_values:
                        raise ExecutionError(
                            f"no observed value for load {event.uid} ({instruction})"
                        )
                    location = self._resolve_address(instruction.address, registers, event)
                    value = self.read_values[key]
                    self._locations[key] = location
                    self._values[key] = value
                    registers[instruction.dest] = value
                    register_sources[instruction.dest] = {key} | read_sources
                elif isinstance(instruction, Store):
                    location = self._resolve_address(instruction.address, registers, event)
                    stored = evaluate_expr(instruction.value, registers)
                    if not isinstance(stored, int):
                        raise ExecutionError(
                            f"store {event.uid} writes a non-integer value {stored!r}"
                        )
                    self._locations[key] = location
                    self._values[key] = stored
                elif isinstance(instruction, Op):
                    registers[instruction.dest] = evaluate_expr(instruction.expr, registers)
                    register_sources[instruction.dest] = set(read_sources)
                elif isinstance(instruction, Branch):
                    # Evaluate the condition only to surface register errors;
                    # litmus branches always fall through.
                    evaluate_expr(instruction.expr, registers)
                    control_sources |= read_sources
                elif isinstance(instruction, Fence):
                    pass
                else:  # pragma: no cover - new instruction kinds must be handled
                    raise ExecutionError(f"unsupported instruction {instruction!r}")
            self.registers.append(registers)

    def _resolve_address(self, address_expr, registers: Dict[str, Value], event: Event) -> str:
        try:
            return resolve_location(evaluate_expr(address_expr, registers))
        except ExprError as error:
            raise ExecutionError(f"event {event.uid}: {error}") from error

    # ------------------------------------------------------------------
    # event access
    # ------------------------------------------------------------------
    def event(self, thread_index: int, instruction_index: int) -> Event:
        """Return the event at ``(thread_index, instruction_index)``."""
        return self._event_by_key[(thread_index, instruction_index)]

    def memory_events(self) -> List[Event]:
        """Return all load/store events in (thread, program-order) order."""
        return [event for event in self.events if event.is_memory_access]

    def loads(self) -> List[Event]:
        if self._loads is None:
            self._loads = [event for event in self.events if event.is_read]
        return list(self._loads)

    def stores(self) -> List[Event]:
        if self._stores is None:
            self._stores = [event for event in self.events if event.is_write]
        return list(self._stores)

    def stores_to(self, location: str) -> List[Event]:
        """Return the store events to ``location``."""
        if self._stores_by_location is None:
            by_location: Dict[str, List[Event]] = {}
            for event in self.stores():
                by_location.setdefault(self.location_of(event), []).append(event)
            self._stores_by_location = by_location
        return list(self._stores_by_location.get(location, []))

    def locations(self) -> List[str]:
        """Return all locations touched by the execution, in first-use order."""
        if self._locations_in_order is None:
            seen: List[str] = []
            for event in self.memory_events():
                location = self.location_of(event)
                if location not in seen:
                    seen.append(location)
            self._locations_in_order = seen
        return list(self._locations_in_order)

    # ------------------------------------------------------------------
    # per-event facts
    # ------------------------------------------------------------------
    def _key(self, event: Event) -> EventKey:
        return (event.thread_index, event.index)

    def location_of(self, event: Event) -> str:
        """Return the resolved location of a memory-access event."""
        return self._locations[self._key(event)]

    def value_of(self, event: Event) -> int:
        """Return the value read (for loads) or written (for stores)."""
        return self._values[self._key(event)]

    def initial_value(self, location: str) -> int:
        """Return the initial value of ``location`` (0 unless overridden)."""
        return self.initial_values.get(location, 0)

    def same_address(self, x: Event, y: Event) -> bool:
        """Return True iff both are memory accesses to the same location."""
        if not (x.is_memory_access and y.is_memory_access):
            return False
        return self.location_of(x) == self.location_of(y)

    def data_dependent(self, x: Event, y: Event) -> bool:
        """Return True iff ``y`` is data-dependent on the load ``x``.

        A data dependency exists when a value read by ``x`` flows (through
        register arithmetic) into ``y``'s address or stored value.
        """
        if not x.is_read:
            return False
        return self._key(x) in self._data_sources.get(self._key(y), frozenset())

    def control_dependent(self, x: Event, y: Event) -> bool:
        """Return True iff ``y`` is control-dependent on the load ``x``.

        This holds when a branch between ``x`` and ``y`` (in program order)
        has a condition that data-depends on ``x``.
        """
        if not x.is_read:
            return False
        return self._key(x) in self._control_sources.get(self._key(y), frozenset())

    def final_registers(self) -> Dict[str, int]:
        """Return the final integer register values, keyed globally.

        Registers holding location values are skipped (they only carry
        dependency plumbing).  Names are assumed unique across threads, which
        holds for every test this library generates; if a name repeats, the
        later thread wins.
        """
        result: Dict[str, int] = {}
        for valuation in self.registers:
            for name, value in valuation.items():
                if isinstance(value, int):
                    result[name] = value
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        values = ", ".join(
            f"{event.uid}={self.value_of(event)}" for event in self.loads()
        )
        return f"Execution({values})"
