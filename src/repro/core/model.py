"""Memory models as must-not-reorder functions.

A :class:`MemoryModel` is a named must-not-reorder function ``F(x, y)``: it
answers, for two instruction executions of the same thread with ``x`` before
``y`` in program order, whether the pair must be kept in order.  Together
with the fixed happens-before axioms of Section 2.2 (implemented in
:mod:`repro.checker`), the function determines the set of allowed program
executions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Dict, Optional, Union

from repro.core.events import Event
from repro.core.execution import Execution
from repro.core.formula import Formula, parse_formula
from repro.core.predicates import (
    Predicate,
    PredicateSet,
    STANDARD_PREDICATES,
    shared_registry,
)

ReorderCallable = Callable[[Execution, Event, Event], bool]


@dataclass(frozen=True)
class MemoryModel:
    """A memory consistency model in the paper's restricted class.

    Args:
        name: a short identifier (``"TSO"``, ``"M4044"``, ...).
        must_not_reorder: the function ``F``; either a :class:`Formula`, a
            DSL string (parsed with :func:`repro.core.formula.parse_formula`)
            or an arbitrary Python callable ``(execution, x, y) -> bool``.
        predicates: the predicate vocabulary the model is expressed over;
            used for litmus-test generation and documentation, defaults to
            the paper's standard set.
        description: free-form documentation.
    """

    name: str
    must_not_reorder: Union[Formula, ReorderCallable]
    predicates: PredicateSet = field(default_factory=lambda: STANDARD_PREDICATES)
    description: str = ""

    def __init__(
        self,
        name: str,
        must_not_reorder: Union[Formula, str, ReorderCallable],
        predicates: Optional[PredicateSet] = None,
        description: str = "",
    ) -> None:
        object.__setattr__(self, "name", name)
        if isinstance(must_not_reorder, str):
            must_not_reorder = parse_formula(must_not_reorder)
        object.__setattr__(self, "must_not_reorder", must_not_reorder)
        object.__setattr__(self, "predicates", predicates or STANDARD_PREDICATES)
        object.__setattr__(self, "description", description)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def ordered(self, execution: Execution, x: Event, y: Event) -> bool:
        """Return ``F(x, y)``: must ``x`` (earlier) and ``y`` (later) stay in order?

        The checker only ever calls this for same-thread pairs with ``x``
        before ``y`` in program order, but the function itself is total.
        """
        function = self.must_not_reorder
        if isinstance(function, Formula):
            return function.evaluate(execution, x, y, self.registry)
        return bool(function(execution, x, y))

    @cached_property
    def registry(self) -> Dict[str, Predicate]:
        """The name -> predicate mapping formulas of this model resolve against.

        The registry only depends on the (immutable) predicate set, and it is
        on the hottest path of every exploration — both :meth:`ordered` and
        the vectorised evaluator of :mod:`repro.checker.kernel` — so it is
        built once.  Treat the returned dict as read-only.

        Models whose vocabulary is drawn entirely from the built-in
        predicates (every catalog and parametric model) share one
        process-wide dict instead of each holding a private copy.
        """
        registry = shared_registry()
        if all(registry.get(predicate.name) is predicate for predicate in self.predicates):
            return registry
        registry = dict(registry)
        registry.update({predicate.name: predicate for predicate in self.predicates})
        return registry

    # ------------------------------------------------------------------
    # introspection / display
    # ------------------------------------------------------------------
    @property
    def formula(self) -> Optional[Formula]:
        """Return the formula if the model is formula-defined, else None."""
        return self.must_not_reorder if isinstance(self.must_not_reorder, Formula) else None

    def is_formula_defined(self) -> bool:
        return self.formula is not None

    def renamed(self, name: str) -> "MemoryModel":
        """Return the same model under a different name."""
        return MemoryModel(name, self.must_not_reorder, self.predicates, self.description)

    def __str__(self) -> str:
        if self.formula is not None:
            return f"{self.name}: F(x, y) = {self.formula}"
        return f"{self.name}: F(x, y) = <python function>"

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        """Syntactic identity (same name and same function object/formula).

        Semantic equivalence of two models is decided by
        :func:`repro.comparison.compare.compare_models`, not by ``==``.
        """
        if not isinstance(other, MemoryModel):
            return NotImplemented
        return self.name == other.name and self.must_not_reorder == other.must_not_reorder
