"""The parametric family of memory models explored in Section 4.2.

The paper enumerates models by choosing, for each ordered pair of memory
access kinds (write-write, write-read, read-write, read-read), when the pair
may be *reordered*:

====  =========================================
code  reordering allowed ...
====  =========================================
0     always
1     only for accesses to different addresses
2     only when there is no data dependency
3     only for different addresses and no data dependency
4     never
====  =========================================

Some combinations are excluded because they would violate single-thread
consistency or are meaningless (writes never carry dependencies), leaving

* write-write: ``{1, 4}``            (2 choices)
* write-read:  ``{0, 1, 4}``         (3 choices)
* read-write:  ``{1, 3, 4}``         (3 choices)
* read-read:   ``{0, 1, 2, 3, 4}``   (5 choices)

for a total of ``2 * 3 * 3 * 5 = 90`` models.  Without data dependencies the
dependency-sensitive codes collapse and the space has ``2 * 3 * 2 * 3 = 36``
models — the space drawn in Figure 4.

Models are named ``M{ww}{wr}{rw}{rr}`` exactly as in the paper, so ``M4444``
is SC, ``M4044`` is TSO/x86, ``M4144`` is IBM 370 and ``M1044`` is PSO.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from itertools import product
from typing import Dict, List, Tuple

from repro.core.formula import And, Atom, FalseFormula, Formula, Or, TrueFormula
from repro.core.model import MemoryModel
from repro.core.predicates import NO_DEP_PREDICATES, PredicateSet, STANDARD_PREDICATES


class ReorderOption(IntEnum):
    """When a program-order pair of memory accesses may be reordered."""

    ALWAYS = 0
    DIFFERENT_ADDRESS = 1
    NO_DATA_DEPENDENCY = 2
    DIFFERENT_ADDRESS_AND_NO_DATA_DEPENDENCY = 3
    NEVER = 4

    def must_not_reorder_condition(self) -> Formula:
        """Return the condition under which the pair must stay ordered.

        This is the complement of the "reordering allowed" condition, kept
        positive (negation-free) as the paper's class requires:

        * ALWAYS                -> False (never forced in order)
        * DIFFERENT_ADDRESS     -> SameAddr(x, y)
        * NO_DATA_DEPENDENCY    -> DataDep(x, y)
        * DIFFERENT_ADDRESS_AND_NO_DATA_DEPENDENCY -> SameAddr | DataDep
        * NEVER                 -> True (always forced in order)
        """
        if self is ReorderOption.ALWAYS:
            return FalseFormula()
        if self is ReorderOption.DIFFERENT_ADDRESS:
            return Atom("SameAddr", ("x", "y"))
        if self is ReorderOption.NO_DATA_DEPENDENCY:
            return Atom("DataDep", ("x", "y"))
        if self is ReorderOption.DIFFERENT_ADDRESS_AND_NO_DATA_DEPENDENCY:
            return Or((Atom("SameAddr", ("x", "y")), Atom("DataDep", ("x", "y"))))
        return TrueFormula()

    @property
    def uses_data_dependencies(self) -> bool:
        return self in (
            ReorderOption.NO_DATA_DEPENDENCY,
            ReorderOption.DIFFERENT_ADDRESS_AND_NO_DATA_DEPENDENCY,
        )


#: Option codes permitted for each access pair (see the module docstring).
ALLOWED_OPTIONS: Dict[str, Tuple[ReorderOption, ...]] = {
    "ww": (ReorderOption.DIFFERENT_ADDRESS, ReorderOption.NEVER),
    "wr": (ReorderOption.ALWAYS, ReorderOption.DIFFERENT_ADDRESS, ReorderOption.NEVER),
    "rw": (
        ReorderOption.DIFFERENT_ADDRESS,
        ReorderOption.DIFFERENT_ADDRESS_AND_NO_DATA_DEPENDENCY,
        ReorderOption.NEVER,
    ),
    "rr": tuple(ReorderOption),
}

#: The dependency-free projections of the allowed options (the Figure 4 space).
ALLOWED_OPTIONS_NO_DEP: Dict[str, Tuple[ReorderOption, ...]] = {
    "ww": (ReorderOption.DIFFERENT_ADDRESS, ReorderOption.NEVER),
    "wr": (ReorderOption.ALWAYS, ReorderOption.DIFFERENT_ADDRESS, ReorderOption.NEVER),
    "rw": (ReorderOption.DIFFERENT_ADDRESS, ReorderOption.NEVER),
    "rr": (ReorderOption.ALWAYS, ReorderOption.DIFFERENT_ADDRESS, ReorderOption.NEVER),
}

_PAIR_KINDS: Tuple[Tuple[str, str, str], ...] = (
    ("ww", "Write", "Write"),
    ("wr", "Write", "Read"),
    ("rw", "Read", "Write"),
    ("rr", "Read", "Read"),
)


@dataclass(frozen=True)
class ParametricModel:
    """A model from the parametric family, identified by its four options."""

    ww: ReorderOption
    wr: ReorderOption
    rw: ReorderOption
    rr: ReorderOption

    @property
    def name(self) -> str:
        """Return the paper-style name ``M{ww}{wr}{rw}{rr}``."""
        return f"M{int(self.ww)}{int(self.wr)}{int(self.rw)}{int(self.rr)}"

    @property
    def options(self) -> Dict[str, ReorderOption]:
        return {"ww": self.ww, "wr": self.wr, "rw": self.rw, "rr": self.rr}

    @property
    def uses_data_dependencies(self) -> bool:
        return any(option.uses_data_dependencies for option in self.options.values())

    def formula(self) -> Formula:
        """Build the must-not-reorder formula.

        The formula is the disjunction over the four access-pair kinds of
        ``Kind(x) & Kind(y) & condition``, plus ``Fence(x) | Fence(y)`` so
        that a full fence orders everything around it.
        """
        clauses: List[Formula] = []
        for key, x_kind, y_kind in _PAIR_KINDS:
            condition = self.options[key].must_not_reorder_condition()
            if isinstance(condition, FalseFormula):
                continue
            guard: List[Formula] = [Atom(x_kind, ("x",)), Atom(y_kind, ("y",))]
            if not isinstance(condition, TrueFormula):
                guard.append(condition)
            clauses.append(And(guard))
        clauses.append(Atom("Fence", ("x",)))
        clauses.append(Atom("Fence", ("y",)))
        return Or(clauses)

    def to_memory_model(self) -> MemoryModel:
        """Return the equivalent :class:`MemoryModel`."""
        predicates: PredicateSet = (
            STANDARD_PREDICATES if self.uses_data_dependencies else NO_DEP_PREDICATES
        )
        return MemoryModel(
            self.name,
            self.formula(),
            predicates,
            description=(
                f"parametric model ww={self.ww.name}, wr={self.wr.name}, "
                f"rw={self.rw.name}, rr={self.rr.name}"
            ),
        )

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------
    @classmethod
    def from_name(cls, name: str) -> "ParametricModel":
        """Parse a paper-style name such as ``"M4044"``."""
        if len(name) != 5 or not name.startswith("M") or not name[1:].isdigit():
            raise ValueError(f"malformed parametric model name {name!r}")
        codes = [int(digit) for digit in name[1:]]
        model = cls(*(ReorderOption(code) for code in codes))
        for key, option in model.options.items():
            if option not in ALLOWED_OPTIONS[key]:
                raise ValueError(
                    f"{name}: option {option.name} is not permitted for {key} pairs"
                )
        return model

    def validate(self) -> None:
        """Raise ValueError if an option is outside the permitted sets."""
        for key, option in self.options.items():
            if option not in ALLOWED_OPTIONS[key]:
                raise ValueError(f"option {option.name} is not permitted for {key} pairs")


def model_space(include_data_dependencies: bool = True) -> List[MemoryModel]:
    """Enumerate the parametric model space as :class:`MemoryModel` objects.

    With ``include_data_dependencies=True`` this is the 90-model space of
    Section 4.2; with ``False`` it is the 36-model dependency-free space of
    Figure 4.  Models are returned in lexicographic order of their names.
    """
    options = ALLOWED_OPTIONS if include_data_dependencies else ALLOWED_OPTIONS_NO_DEP
    models: List[MemoryModel] = []
    for ww, wr, rw, rr in product(options["ww"], options["wr"], options["rw"], options["rr"]):
        models.append(ParametricModel(ww, wr, rw, rr).to_memory_model())
    models.sort(key=lambda model: model.name)
    return models


#: Paper names for well-known points of the parametric space.
KNOWN_CORRESPONDENCES: Dict[str, str] = {
    "M4444": "SC",
    "M4144": "IBM370",
    "M4044": "TSO/x86",
    "M1044": "PSO",
    "M1010": "RMO (without dependencies)",
}


def parametric_model(name: str) -> MemoryModel:
    """Return the :class:`MemoryModel` for a paper-style name like ``"M4044"``."""
    return ParametricModel.from_name(name).to_memory_model()
