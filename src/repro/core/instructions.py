"""Instruction set for litmus-test programs.

The paper's class of models distinguishes *memory access* instructions
(loads and stores) from all other instructions (fences, arithmetic, and
branches).  That is exactly the split encoded here:

* :class:`Load` — read a shared location into a register;
* :class:`Store` — write the value of an expression to a shared location;
* :class:`Fence` — a full memory barrier;
* :class:`Op` — register arithmetic (used to manufacture data dependencies,
  e.g. ``t1 = r1 - r1 + 1``);
* :class:`Branch` — a conditional branch on a register expression (used to
  manufacture control dependencies).

Addresses are expressions so that dependencies can flow into them
(``Read [t1] -> r2``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Union

from repro.core.expr import Expr, Loc, Reg, _coerce


class Instruction:
    """Base class for all instructions."""

    #: True for loads and stores; False for everything else.
    is_memory_access: bool = False

    def registers_read(self) -> FrozenSet[str]:
        """Registers whose values this instruction uses."""
        return frozenset()

    def registers_written(self) -> FrozenSet[str]:
        """Registers this instruction defines."""
        return frozenset()


def _as_address(address: Union[str, Expr]) -> Expr:
    """Accept a bare location name or an expression as an address."""
    if isinstance(address, str):
        return Loc(address)
    if isinstance(address, Expr):
        return address
    raise TypeError(f"invalid address {address!r}")


def _as_value(value: Union[int, str, Expr]) -> Expr:
    """Accept an int, a register name or an expression as a value."""
    return _coerce(value)


@dataclass(frozen=True)
class Load(Instruction):
    """``Read [address] -> dest``."""

    dest: str
    address: Expr

    is_memory_access = True

    def __init__(self, dest: str, address: Union[str, Expr]) -> None:
        object.__setattr__(self, "dest", dest)
        object.__setattr__(self, "address", _as_address(address))

    def registers_read(self) -> FrozenSet[str]:
        return self.address.registers()

    def registers_written(self) -> FrozenSet[str]:
        return frozenset({self.dest})

    def __str__(self) -> str:
        return f"Read {self.address} -> {self.dest}"


@dataclass(frozen=True)
class Store(Instruction):
    """``Write [address] <- value``."""

    address: Expr
    value: Expr

    is_memory_access = True

    def __init__(self, address: Union[str, Expr], value: Union[int, str, Expr]) -> None:
        object.__setattr__(self, "address", _as_address(address))
        object.__setattr__(self, "value", _as_value(value))

    def registers_read(self) -> FrozenSet[str]:
        return self.address.registers() | self.value.registers()

    def __str__(self) -> str:
        return f"Write {self.address} <- {self.value}"


@dataclass(frozen=True)
class Fence(Instruction):
    """A full memory fence.

    ``kind`` is free-form ("full" by default); the standard predicate set
    treats every fence alike, but custom predicate sets may dispatch on the
    kind (e.g. to model SPARC's membar variants).
    """

    kind: str = "full"

    def __str__(self) -> str:
        return "Fence" if self.kind == "full" else f"Fence.{self.kind}"


@dataclass(frozen=True)
class Op(Instruction):
    """Register arithmetic: ``dest = expr``."""

    dest: str
    expr: Expr

    def __init__(self, dest: str, expr: Union[int, str, Expr]) -> None:
        object.__setattr__(self, "dest", dest)
        object.__setattr__(self, "expr", _as_value(expr))

    def registers_read(self) -> FrozenSet[str]:
        return self.expr.registers()

    def registers_written(self) -> FrozenSet[str]:
        return frozenset({self.dest})

    def __str__(self) -> str:
        return f"{self.dest} = {self.expr}"


@dataclass(frozen=True)
class Branch(Instruction):
    """A conditional branch whose condition depends on ``expr``.

    In litmus tests the branch is written so that it always falls through
    (the classic ``beq r, r, next`` idiom); its only role is to create a
    control dependency from the loads feeding ``expr`` to every later
    instruction of the thread.
    """

    expr: Expr
    label: str = "L"

    def __init__(self, expr: Union[int, str, Expr], label: str = "L") -> None:
        object.__setattr__(self, "expr", _as_value(expr))
        object.__setattr__(self, "label", label)

    def registers_read(self) -> FrozenSet[str]:
        return self.expr.registers()

    def __str__(self) -> str:
        return f"Branch({self.expr}) -> {self.label}"


def make_dependency_op(dest: str, source_register: str, payload: Union[int, str, Expr]) -> Op:
    """Return the paper's dependency idiom ``dest = source - source + payload``.

    The resulting register always equals ``payload`` but is data-dependent on
    ``source_register``, which is how the paper's tests L4, L6, L8 and L9
    force an ordering through dependencies.
    """
    source = Reg(source_register)
    return Op(dest, BinOp_sub_add(source, payload))


def BinOp_sub_add(source: Reg, payload: Union[int, str, Expr]) -> Expr:
    """Build ``source - source + payload``."""
    from repro.core.expr import BinOp

    return BinOp("+", BinOp("-", source, source), _as_value(payload))
