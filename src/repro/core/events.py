"""Instruction executions ("events").

The axiomatic semantics works over *instruction executions*: an instance of
an instruction inside one specific thread execution.  Because litmus-test
programs are loop-free, instruction executions are in one-to-one
correspondence with (thread index, instruction index) pairs, which is what
:class:`Event` records.  The concrete register values, resolved addresses and
write values live in :class:`repro.core.execution.Execution`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.instructions import Branch, Fence, Instruction, Load, Op, Store
from repro.core.program import Program


@dataclass(frozen=True)
class Event:
    """One instruction execution.

    Events are ordered within a thread by ``index`` (program order).  The
    ``uid`` is unique across the whole program and is what the checker and
    the SAT encoder use as node identity.
    """

    thread_index: int
    index: int
    instruction: Instruction

    @property
    def uid(self) -> str:
        """A stable, human-readable identifier such as ``"T1.2"``."""
        return f"T{self.thread_index + 1}.{self.index}"

    # ------------------------------------------------------------------
    # classification helpers used by predicates and the checker
    # ------------------------------------------------------------------
    @property
    def is_read(self) -> bool:
        return isinstance(self.instruction, Load)

    @property
    def is_write(self) -> bool:
        return isinstance(self.instruction, Store)

    @property
    def is_memory_access(self) -> bool:
        return self.instruction.is_memory_access

    @property
    def is_fence(self) -> bool:
        return isinstance(self.instruction, Fence)

    @property
    def is_op(self) -> bool:
        return isinstance(self.instruction, Op)

    @property
    def is_branch(self) -> bool:
        return isinstance(self.instruction, Branch)

    def same_thread(self, other: "Event") -> bool:
        """Return True iff both events belong to the same thread."""
        return self.thread_index == other.thread_index

    def program_order_before(self, other: "Event") -> bool:
        """Return True iff ``self`` precedes ``other`` in program order."""
        return self.same_thread(other) and self.index < other.index

    def __str__(self) -> str:
        return f"{self.uid}:{self.instruction}"


def build_events(program: Program) -> List[List[Event]]:
    """Return the events of ``program`` grouped per thread, in program order."""
    events: List[List[Event]] = []
    for thread_index, thread in enumerate(program.threads):
        thread_events = [
            Event(thread_index, instruction_index, instruction)
            for instruction_index, instruction in enumerate(thread.instructions)
        ]
        events.append(thread_events)
    return events


def flatten_events(events_per_thread: List[List[Event]]) -> List[Event]:
    """Flatten per-thread event lists into one list (thread-major order)."""
    return [event for thread_events in events_per_thread for event in thread_events]
