"""Partition-guided adaptive exhaustive verification.

The brute pipeline checks every symmetry-distinct test of the naive bounded
enumeration.  This module prunes that work with two *sound, certified*
static filters computed before a :class:`~repro.core.litmus.LitmusTest` is
ever materialised — let alone any kernel search run:

**The profile prefilter.**  Within the enumeration fragment every write has
a distinct nonzero value per location, so every read-from edge is *forced*:
a test's verdict under any model of the tabulated class is a function of

* the retained memory accesses (after sound erasures, below) with their
  location/value structure, and
* per model, the transitive closure of the model's forced program-order
  edges, projected onto the retained accesses.

Erasures (cascaded to a fixpoint, each justified structurally, i.e. for
*every* model of the class):

* **R4** — boundary fences.  Fences participate in no rf/co/fr edge, so a
  fence at a thread boundary is a source or sink of the happens-before
  graph and can never lie on a cycle.
* **R2** — an unread write at the end of a thread is coherence-last with
  out-degree 0; one at the start is erasable only when no read observes
  the location's initial value 0 (initial readers carry from-read edges
  into *every* write of the location).
* **R1** — a boundary read of the initial value of a location nobody
  writes has no rf/fr edges at all.
* Interior fences and interior pure-init reads are *conduits*: they stay
  for the transitive closure but are projected out of the signature.

Two tests with equal :func:`AdaptiveSpace.profile` therefore have equal
verdict rows, and the profile is invariant under the pipeline's full
symmetry group (thread permutation, location renaming, 0-fixing value
renaming) — so profile dedup *replaces* canonical dedup on the raw stream.

**The frontier rule.**  A profile also partitions the *model space*: models
whose projected forced structure coincides on every thread (the common
refinement of the per-thread signature groups) receive identical verdicts
on the test.  A test can only newly distinguish an ordered model pair from
*different* groups; when every such pair is already distinguished in the
accumulator matrix, folding the row is a no-op — the test is skipped with
its group decomposition as the certificate.  The matrix only grows, so a
certificate checked against the matrix at skip time also holds against the
final matrix.

Every skip writes a machine-checkable certificate record into the shard
checkpoint files, and :class:`PartitionCheckpoint` persists the folded
partition itself — digest-validated, versioned, atomically written — so a
resumed run restarts from the matrix instead of re-reading shard rows, and
cooperating runs can :meth:`~PartitionCheckpoint.merge` their partitions
(an associative fold with a merge-conflict check).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from itertools import permutations
from typing import Dict, List, Optional, Sequence, Tuple

#: One reduced event: (kind, location, value, retained).
ReducedItem = Tuple[str, object, object, bool]

#: One thread's profile: (retained accesses, signature); the signature is a
#: sorted tuple of (model bitmask, projected closed edges) pairs.
ThreadProfile = Tuple[Tuple[Tuple[str, int, int], ...], Tuple]

#: A whole test's profile: one ThreadProfile per non-empty thread, in the
#: canonical (minimising) thread order; () for a fully-erased test.
Profile = Tuple[ThreadProfile, ...]

#: Schema of the partition checkpoint document.
PARTITION_SCHEMA = "repro/partition_checkpoint"
PARTITION_SCHEMA_VERSION = 1

_EVENT_KINDS = ("R", "W", "F")


# ----------------------------------------------------------------------
# pair-atom tabulation of a model space
# ----------------------------------------------------------------------
def _pair_assignment(kind_x: str, kind_y: str, same: bool) -> Dict[Tuple[str, tuple], bool]:
    """Truth assignment for the binary must-not-reorder vocabulary.

    The enumeration fragment carries no dependency instructions, so the
    dependency atoms are uniformly false — which is exactly what makes the
    90-model dependency space tabulable too.
    """
    assign: Dict[Tuple[str, tuple], bool] = {}
    for var, kind in (("x", kind_x), ("y", kind_y)):
        assign[("Read", (var,))] = kind == "R"
        assign[("Write", (var,))] = kind == "W"
        assign[("Fence", (var,))] = kind == "F"
        assign[("MemoryAccess", (var,))] = kind in ("R", "W")
    assign[("SameAddr", ("x", "y"))] = same
    assign[("DataDep", ("x", "y"))] = False
    assign[("CtrlDep", ("x", "y"))] = False
    assign[("AnyDep", ("x", "y"))] = False
    return assign


def _eval_ir(node, assign: Dict[Tuple[str, tuple], bool]) -> bool:
    """Evaluate a compiled formula IR under a pair-atom assignment.

    Raises ``KeyError`` (unknown atom) or ``ValueError`` (opaque node) when
    the model falls outside the tabulated fragment; the caller treats
    either as ineligibility.
    """
    kind = node.kind
    if kind == "true":
        return True
    if kind == "false":
        return False
    if kind in ("atom", "natom"):
        value = assign[(node.predicate.name, node.args)]
        return (not value) if kind == "natom" else value
    if kind == "and":
        return all(_eval_ir(child, assign) for child in node.children)
    if kind == "or":
        return any(_eval_ir(child, assign) for child in node.children)
    raise ValueError(f"node kind {kind!r} is outside the tabulated fragment")


class AdaptiveSpace:
    """A model space's tabulated pair semantics plus the profile machinery.

    Build with :meth:`build`, which returns ``None`` when any model falls
    outside the tabulated straight-line vocabulary (opaque callables,
    predicates beyond Read/Write/Fence/MemoryAccess/SameAddr/*Dep) — the
    caller then refuses adaptive mode rather than risk an unsound skip.
    """

    def __init__(
        self, model_names: Sequence[str], tables: Dict[Tuple[str, str, bool], int]
    ) -> None:
        self.model_names = list(model_names)
        self.num_models = len(self.model_names)
        self.full_mask = (1 << self.num_models) - 1
        self.tables = tables
        self._thread_memo: Dict[Tuple[ReducedItem, ...], ThreadProfile] = {}
        self._row_memo: Dict[Tuple[Tuple[str, int, int], ...], Tuple] = {}
        self._profile_memo: Dict[Tuple[ThreadProfile, ...], Profile] = {}
        self._memo_cap = 1 << 20

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, models: Sequence[object]) -> Optional["AdaptiveSpace"]:
        """Tabulate a model space; None when any model is not tabulable."""
        from repro.compile.compiler import compile_model

        roots = []
        names = []
        for model in models:
            compiled = compile_model(model)
            if compiled.kind != "formula":
                return None
            roots.append(compiled.root)
            names.append(model.name)
        tables: Dict[Tuple[str, str, bool], int] = {}
        try:
            for kind_x in _EVENT_KINDS:
                for kind_y in _EVENT_KINDS:
                    for same in (False, True):
                        if same and "F" in (kind_x, kind_y):
                            continue  # fences have no address
                        assign = _pair_assignment(kind_x, kind_y, same)
                        mask = 0
                        for index, root in enumerate(roots):
                            if _eval_ir(root, assign):
                                mask |= 1 << index
                        tables[(kind_x, kind_y, same)] = mask
        except (KeyError, ValueError):
            return None
        return cls(names, tables)

    def digest(self) -> str:
        """A stable digest of the tabulated space (for checkpoint validation)."""
        payload = (tuple(self.model_names), tuple(sorted(self.tables.items())))
        return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()[:32]

    # ------------------------------------------------------------------
    # per-thread profiles
    # ------------------------------------------------------------------
    def _pair_label(self, kind_x: str, kind_y: str, loc_x: object, loc_y: object) -> int:
        if "F" in (kind_x, kind_y):
            return self.tables[(kind_x, kind_y, False)]
        return self.tables[(kind_x, kind_y, loc_x == loc_y)]

    def _thread_profile(self, thread: Tuple[ReducedItem, ...]) -> ThreadProfile:
        """One reduced thread's (retained accesses, signature)."""
        n = len(thread)
        retained_idx = [i for i in range(n) if thread[i][3]]
        remap = {position: i for i, position in enumerate(retained_idx)}
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        labels = {
            pair: self._pair_label(
                thread[pair[0]][0], thread[pair[1]][0],
                thread[pair[0]][1], thread[pair[1]][1],
            )
            for pair in pairs
        }
        # Group the models by their per-pair forced-edge vector.
        groups: Dict[Tuple[int, ...], int] = {}
        for m in range(self.num_models):
            bit = 1 << m
            key = tuple(1 if labels[pair] & bit else 0 for pair in pairs)
            groups[key] = groups.get(key, 0) | bit
        # Per group: transitively close the forced edges (conduit events
        # relay ordering), then project onto the retained positions.
        merged: Dict[Tuple, int] = {}
        for key, mask in groups.items():
            edges = {pair for pair, bit in zip(pairs, key) if bit}
            changed = True
            while changed:
                changed = False
                for (i, j) in pairs:
                    if (i, j) in edges:
                        continue
                    for k in range(i + 1, j):
                        if (i, k) in edges and (k, j) in edges:
                            edges.add((i, j))
                            changed = True
                            break
            projected = tuple(
                sorted(
                    (remap[i], remap[j])
                    for (i, j) in edges
                    if i in remap and j in remap
                )
            )
            merged[projected] = merged.get(projected, 0) | mask
        signature = tuple(sorted((mask, proj) for proj, mask in merged.items()))
        accesses = tuple(thread[i][:3] for i in retained_idx)
        return accesses, signature

    def _thread_profile_memo(self, thread: List[ReducedItem]) -> ThreadProfile:
        key = tuple(thread)
        entry = self._thread_memo.get(key)
        if entry is None:
            if len(self._thread_memo) >= self._memo_cap:
                self._thread_memo.clear()
            entry = self._thread_profile(key)
            self._thread_memo[key] = entry
        return entry

    # ------------------------------------------------------------------
    # whole-test profiles
    # ------------------------------------------------------------------
    def _relabel_single(self, accesses: Tuple[Tuple[str, int, int], ...]) -> Tuple:
        """First-use relabelling of one thread alone (permutation tiebreak)."""
        row = self._row_memo.get(accesses)
        if row is None:
            if len(self._row_memo) >= self._memo_cap:
                self._row_memo.clear()
            row = _relabel_threads((accesses,))[0]
            self._row_memo[accesses] = row
        return row

    def _assemble(self, ordered: Sequence[ThreadProfile]) -> Profile:
        relabelled = _relabel_threads([accesses for accesses, _sig in ordered])
        return tuple(
            (row, sig) for row, (_accs, sig) in zip(relabelled, ordered)
        )

    def profile(self, items: Tuple[Tuple[Tuple[str, object, object], ...], ...]) -> Profile:
        """The test's verdict-determining profile (symmetry-invariant)."""
        threads = [
            entry
            for entry in (
                self._thread_profile_memo(thread) for thread in reduce_core(items)
            )
            if entry[0]
        ]
        if not threads:
            return ()
        # Distinct raw tests collapse onto far fewer reduced-thread tuples,
        # so the permutation-minimisation below repeats heavily — memoised
        # on the (order-sensitive) thread tuple, exact by construction.
        memo_key = tuple(threads)
        result = self._profile_memo.get(memo_key)
        if result is not None:
            return result
        if len(threads) == 1:
            result = self._assemble(threads)
        elif len(threads) == 2:
            first, second = threads
            key_first = (self._relabel_single(first[0]), first[1])
            key_second = (self._relabel_single(second[0]), second[1])
            if key_first < key_second:
                result = self._assemble((first, second))
            elif key_second < key_first:
                result = self._assemble((second, first))
            else:
                result = min(
                    self._assemble((first, second)), self._assemble((second, first))
                )
        else:
            result = min(self._assemble(order) for order in permutations(threads))
        if len(self._profile_memo) >= self._memo_cap:
            self._profile_memo.clear()
        self._profile_memo[memo_key] = result
        return result

    def groups(self, profile: Profile) -> List[int]:
        """The model partition a profiled test induces: the common refinement
        of the per-thread signature groups.  Verdicts are constant on each
        group, so a test can only distinguish models from different groups.
        """
        groups = [self.full_mask]
        for _accesses, signature in profile:
            refined: List[int] = []
            for group in groups:
                for mask, _proj in signature:
                    overlap = group & mask
                    if overlap:
                        refined.append(overlap)
            groups = refined
        return groups


def _relabel_threads(
    threads: Sequence[Tuple[Tuple[str, int, int], ...]]
) -> List[Tuple[Tuple[str, int, int], ...]]:
    """First-use location/value relabelling across threads (0 stays 0)."""
    loc_ids: Dict[object, int] = {}
    value_ids: Dict[object, Dict[object, int]] = {}
    out: List[Tuple[Tuple[str, int, int], ...]] = []
    for accesses in threads:
        row = []
        for kind, loc, val in accesses:
            if loc not in loc_ids:
                loc_ids[loc] = len(loc_ids)
            if val == 0:
                new_val = 0
            else:
                values = value_ids.setdefault(loc, {})
                if val not in values:
                    values[val] = len(values) + 1
                new_val = values[val]
            row.append((kind, loc_ids[loc], new_val))
        out.append(tuple(row))
    return out


# ----------------------------------------------------------------------
# core reduction (the sound erasures)
# ----------------------------------------------------------------------
def reduce_core(
    items: Tuple[Tuple[Tuple[str, object, object], ...], ...]
) -> List[List[ReducedItem]]:
    """Apply the R1/R2/R4 erasures to a fixpoint; mark conduits.

    Returns the reduced threads (empty threads dropped), each event tagged
    ``retained`` — ``False`` marks a conduit (interior fence or interior
    pure-init read) kept only to relay forced-order transitivity.
    """
    threads = [list(thread) for thread in items]
    while True:
        changed = False
        writes: Dict[object, set] = {}
        read_vals: Dict[object, set] = {}
        for thread in threads:
            for kind, loc, val in thread:
                if kind == "W":
                    writes.setdefault(loc, set()).add(val)
                elif kind == "R":
                    read_vals.setdefault(loc, set()).add(val)
        new_threads = []
        for thread in threads:
            # R4: boundary fences are happens-before sources/sinks.
            while thread and thread[0][0] == "F":
                thread = thread[1:]
                changed = True
            while thread and thread[-1][0] == "F":
                thread = thread[:-1]
                changed = True
            if not thread:
                changed = True
                continue
            first, last = thread[0], thread[-1]
            # R2-last: an unread write at thread end is co-last, out-degree 0.
            if last[0] == "W" and last[2] not in read_vals.get(last[1], ()):
                thread = thread[:-1]
                changed = True
            # R2-first: an unread write at thread start is erasable only
            # when no read observes the location's initial value — initial
            # readers have from-read edges into every write of the location.
            elif (
                first[0] == "W"
                and first[2] not in read_vals.get(first[1], ())
                and 0 not in read_vals.get(first[1], ())
            ):
                thread = thread[1:]
                changed = True
            # R1: a boundary read of the initial value of an unwritten
            # location has no rf/fr edges at all.
            elif first[0] == "R" and first[2] == 0 and not writes.get(first[1]):
                thread = thread[1:]
                changed = True
            elif last[0] == "R" and last[2] == 0 and not writes.get(last[1]):
                thread = thread[:-1]
                changed = True
            if thread:
                new_threads.append(thread)
        threads = new_threads
        if not changed:
            break
    # Interior fences and interior pure-init reads become conduits.
    writes = {}
    for thread in threads:
        for kind, loc, val in thread:
            if kind == "W":
                writes.setdefault(loc, set()).add(val)
    reduced: List[List[ReducedItem]] = []
    for thread in threads:
        row: List[ReducedItem] = []
        for kind, loc, val in thread:
            if kind == "F":
                row.append((kind, loc, val, False))
            elif kind == "R" and val == 0 and not writes.get(loc):
                row.append((kind, loc, val, False))
            else:
                row.append((kind, loc, val, True))
        reduced.append(row)
    return reduced


_DIGEST_MEMO: Dict[Tuple, str] = {}
_DIGEST_MEMO_CAP = 1 << 20


def profile_digest(profile: Profile) -> str:
    """A stable hex digest of a profile (dedup key and certificate label)."""
    digest = _DIGEST_MEMO.get(profile)
    if digest is None:
        if len(_DIGEST_MEMO) >= _DIGEST_MEMO_CAP:
            _DIGEST_MEMO.clear()
        digest = hashlib.sha256(repr(profile).encode("utf-8")).hexdigest()[:32]
        _DIGEST_MEMO[profile] = digest
    return digest


def audit_selected(digest: str, name: str, rate: float) -> bool:
    """Deterministic sampled-audit selection for a skipped test."""
    if rate <= 0.0:
        return False
    if rate >= 1.0:
        return True
    draw = int(
        hashlib.sha256(f"{digest}:{name}".encode("utf-8")).hexdigest()[:8], 16
    )
    return draw / 0x100000000 < rate


class ProfileIndex:
    """The adaptive stream's dedup index: profile digest -> representative.

    The representative is the *first* test of the stream with that profile
    — whether its row was folded or it was frontier-skipped (the matrix
    only grows, so a row that could not refine the partition at skip time
    never can).
    """

    def __init__(self) -> None:
        self._reps: Dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._reps)

    def representative(self, digest: str) -> Optional[str]:
        return self._reps.get(digest)

    def add(self, digest: str, name: str) -> None:
        self._reps.setdefault(digest, name)


# ----------------------------------------------------------------------
# the partition checkpoint
# ----------------------------------------------------------------------
def _mask_bits(mask: int, width: int) -> str:
    return "".join("1" if (mask >> i) & 1 else "0" for i in range(width))


def _bits_mask(bits: str) -> int:
    mask = 0
    for i, bit in enumerate(bits):
        if bit == "1":
            mask |= 1 << i
    return mask


@dataclass
class PartitionCheckpoint:
    """The folded partition itself, checkpointed.

    Written atomically alongside the shard checkpoints after every fold, so
    ``--resume`` restores the dominance matrix and fast-forwards the raw
    stream instead of re-reading shard JSONL row by row.  The ``digest``
    field seals the whole document; a torn or tampered file loads as
    ``None`` and the run falls back to a cold start.
    """

    bound: str
    space: str
    suite: str
    backend: str
    shard_size: int
    limit: Optional[int]
    model_names: List[str]
    space_digest: str
    #: contiguous prefix of shards whose rows are folded into the matrix
    shards_folded: int = 0
    #: raw enumeration items consumed to produce that prefix
    raw_offset: int = 0
    tests_folded: int = 0
    raw_tests: int = 0
    profile_skips: int = 0
    frontier_skips: int = 0
    #: the dominance matrix, one bitmask per model
    distinguished: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.distinguished:
            self.distinguished = [0] * len(self.model_names)

    # ------------------------------------------------------------------
    def identity(self) -> Tuple:
        """The fields two checkpoints must share to merge or resume."""
        return (
            self.bound, self.space, self.suite, self.backend,
            self.shard_size, self.limit,
            tuple(self.model_names), self.space_digest,
        )

    def merge(self, other: "PartitionCheckpoint") -> "PartitionCheckpoint":
        """Fold another run's partition into this one (associative).

        The dominance matrix is a monotone union, so cooperating workers
        covering disjoint (or overlapping) slices of the stream can merge
        in any order.  Stream positions are *not* mergeable — the merged
        checkpoint restarts the stream and lets the warm matrix do the
        pruning — and mismatched identities raise ``ValueError``.
        """
        if self.identity() != other.identity():
            raise ValueError(
                "partition merge conflict: checkpoints describe different runs "
                f"({self.identity()!r} vs {other.identity()!r})"
            )
        merged = PartitionCheckpoint(
            bound=self.bound, space=self.space, suite=self.suite,
            backend=self.backend, shard_size=self.shard_size, limit=self.limit,
            model_names=list(self.model_names), space_digest=self.space_digest,
            shards_folded=0, raw_offset=0,
            tests_folded=self.tests_folded + other.tests_folded,
            raw_tests=max(self.raw_tests, other.raw_tests),
            profile_skips=self.profile_skips + other.profile_skips,
            frontier_skips=self.frontier_skips + other.frontier_skips,
            distinguished=[
                a | b for a, b in zip(self.distinguished, other.distinguished)
            ],
        )
        return merged

    # ------------------------------------------------------------------
    def payload(self) -> Dict[str, object]:
        width = len(self.model_names)
        body: Dict[str, object] = {
            "schema": PARTITION_SCHEMA,
            "schema_version": PARTITION_SCHEMA_VERSION,
            "bound": self.bound,
            "space": self.space,
            "suite": self.suite,
            "backend": self.backend,
            "shard_size": self.shard_size,
            "limit": self.limit,
            "model_names": list(self.model_names),
            "space_digest": self.space_digest,
            "shards_folded": self.shards_folded,
            "raw_offset": self.raw_offset,
            "tests_folded": self.tests_folded,
            "raw_tests": self.raw_tests,
            "profile_skips": self.profile_skips,
            "frontier_skips": self.frontier_skips,
            "distinguished": [_mask_bits(mask, width) for mask in self.distinguished],
        }
        body["digest"] = _payload_digest(body)
        return body

    def write(self, path: str) -> None:
        """Atomically persist the checkpoint document."""
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(self.payload(), handle, indent=1)
        os.replace(tmp, path)

    @staticmethod
    def load(path: str) -> Optional["PartitionCheckpoint"]:
        """Load a checkpoint; None when absent, torn, or digest-invalid.

        This loader never raises: resuming from a bad checkpoint must
        degrade to a cold start, never crash the run.
        """
        try:
            with open(path) as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(document, dict):
            return None
        if document.get("schema") != PARTITION_SCHEMA:
            return None
        if document.get("schema_version") != PARTITION_SCHEMA_VERSION:
            return None
        recorded = document.get("digest")
        body = {key: value for key, value in document.items() if key != "digest"}
        if recorded != _payload_digest(body):
            return None
        try:
            model_names = list(document["model_names"])
            bits = document["distinguished"]
            if len(bits) != len(model_names):
                return None
            if any(len(row) != len(model_names) for row in bits):
                return None
            return PartitionCheckpoint(
                bound=document["bound"],
                space=document["space"],
                suite=document["suite"],
                backend=document["backend"],
                shard_size=document["shard_size"],
                limit=document["limit"],
                model_names=model_names,
                space_digest=document["space_digest"],
                shards_folded=int(document["shards_folded"]),
                raw_offset=int(document["raw_offset"]),
                tests_folded=int(document["tests_folded"]),
                raw_tests=int(document["raw_tests"]),
                profile_skips=int(document["profile_skips"]),
                frontier_skips=int(document["frontier_skips"]),
                distinguished=[_bits_mask(row) for row in bits],
            )
        except (KeyError, TypeError, ValueError):
            return None


def _payload_digest(body: Dict[str, object]) -> str:
    canonical = json.dumps(
        {key: value for key, value in body.items() if key != "digest"},
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]
