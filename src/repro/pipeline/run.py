"""The sharded, resumable exhaustive-enumeration verification pipeline.

``run_pipeline`` streams the naive bounded enumeration of Section 3.4
through the symmetry-reducing canonicalizer
(:mod:`repro.pipeline.canonical`), shards the kernel-distinct survivors,
checks every shard against the whole model space on a persistent
:class:`~repro.engine.engine.CheckEngine` (one per worker process), and
folds the per-shard verdict rows into the incremental
:class:`~repro.pipeline.report.PartitionAccumulator`.  The result — an
:class:`~repro.pipeline.report.EquivalenceReport` — asserts the paper's
completeness claim: the partition the naive space induces on the model
space equals the partition the ~230-test template suite induces.

Checkpointing: with a ``run_dir``, every completed shard is written as one
JSON-lines file (one verdict row per test plus a terminal ``done`` marker),
atomically via rename.  A killed run re-enumerates the (cheap,
deterministic) canonical stream but answers completed shards from disk —
``--resume`` never re-checks a finished shard, which the per-shard key
digests guard against stale or mismatched checkpoints.

Adaptive mode (:mod:`repro.pipeline.adaptive`) replaces the canonical
dedup with the stronger profile prefilter (tests whose verdict row
provably coincides with an already-folded row are skipped with a
certificate), adds the frontier rule (tests that cannot refine the
partition are skipped), derives column verdicts by po-mask monotonicity,
and checkpoints the folded partition itself so ``--resume`` restarts from
the matrix instead of replaying shard rows.
"""

from __future__ import annotations

import json
import os
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.litmus import LitmusTest
from repro.core.model import MemoryModel
from repro.core.parametric import model_space
from repro.engine.engine import CheckEngine, EngineStats
from repro.generation.enumeration import (
    NaiveEnumerationConfig,
    enumerate_canonical_naive_items,
    enumerate_raw_naive_items,
    test_from_items,
)
from repro.pipeline.adaptive import (
    AdaptiveSpace,
    PartitionCheckpoint,
    ProfileIndex,
    audit_selected,
    profile_digest,
)
from repro.pipeline.canonical import CanonicalIndex, key_digest
from repro.pipeline.report import EquivalenceReport, PartitionAccumulator
from repro.util import faults

#: Named enumeration bounds, smallest to largest.  ``paper`` is the Theorem 1
#: bound (three accesses per thread, four locations, optional fences) whose
#: naive space is about a million raw tests; the smaller bounds keep CI and
#: smoke runs fast.
BOUNDS: Dict[str, NaiveEnumerationConfig] = {
    "tiny": NaiveEnumerationConfig(
        max_accesses_per_thread=2, max_locations=2, allow_fences=False
    ),
    "small": NaiveEnumerationConfig(
        max_accesses_per_thread=2, max_locations=2, allow_fences=True
    ),
    "medium": NaiveEnumerationConfig(
        max_accesses_per_thread=2, max_locations=3, allow_fences=True
    ),
    "large": NaiveEnumerationConfig(
        max_accesses_per_thread=3, max_locations=2, allow_fences=True
    ),
    "xlarge": NaiveEnumerationConfig(
        max_accesses_per_thread=3, max_locations=3, allow_fences=True
    ),
    "paper": NaiveEnumerationConfig(),
}

#: Progress callback: ``progress(event, payload)``; events are
#: ``"template"``, ``"shard"`` and ``"finish"``.
ProgressCallback = Callable[[str, Dict[str, object]], None]


class PipelineError(ValueError):
    """Raised for malformed pipeline configurations or checkpoints.

    A ``ValueError`` so the ``serve`` loop's error envelope catches it like
    every other malformed-request problem.
    """


@dataclass(frozen=True)
class PipelineConfig:
    """What to enumerate, how to shard it, and where to checkpoint.

    Args:
        bound: named enumeration bound (see :data:`BOUNDS`).
        space: parametric model space (``"no_deps"`` = the 36-model
            Figure 4 space, ``"deps"`` = the full 90-model space).
        suite: template suite to compare against; matched to the space by
            default (``"no_deps"`` / ``"standard"``).
        backend: engine backend for the admissibility checks.
        kernel: explicit-strategy kernel backend (``"auto"``, ``"native"``,
            ``"python"`` or ``"bigint"``); each worker process resolves it
            once when it builds its engine.  The *resolved* kernel is
            recorded in the checkpoint manifest, and ``--resume`` refuses
            a run_dir whose shards were produced by a different kernel —
            all shipped kernels are bit-identical, but a checkpoint must
            never silently mix verdict provenances.
        jobs: worker processes checking shards (1 = serial, in-process).
        shard_size: unique tests per shard (the checkpointing granule).
        limit: optional cap on unique tests (for smoke runs).
        run_dir: checkpoint directory; None disables checkpointing.
        resume: answer already-completed shards from ``run_dir``.
        shard_timeout: wall-clock seconds a parallel worker may spend on
            one shard; past it the worker is killed and the shard retried
            on a fresh worker.  None = no limit.
        shard_retries: retries per shard (beyond the first attempt) before
            the shard is quarantined and the run reported incomplete.
        adaptive: enable the partition-guided adaptive layer (profile
            prefilter, frontier skipping, monotone verdict derivation,
            partition checkpointing).  Off = the exact brute force, which
            doubles as the differential oracle for the adaptive layer.
        audit_rate: fraction (0..1) of skipped tests to re-check against
            the final matrix end-of-run; a refining row fails the run.
        partition_checkpoint: where to write the partition checkpoint;
            defaults to ``<run_dir>/partition.json`` when a run_dir is set.
    """

    bound: str = "small"
    space: str = "no_deps"
    suite: Optional[str] = None
    backend: str = "explicit"
    kernel: str = "auto"
    jobs: int = 1
    shard_size: int = 512
    limit: Optional[int] = None
    run_dir: Optional[str] = None
    resume: bool = False
    shard_timeout: Optional[float] = None
    shard_retries: int = 2
    adaptive: bool = False
    audit_rate: float = 0.0
    partition_checkpoint: Optional[str] = None

    def __post_init__(self) -> None:
        from repro.native.backend import KERNEL_CHOICES

        if self.bound not in BOUNDS:
            raise PipelineError(
                f"unknown bound {self.bound!r} (expected one of {', '.join(BOUNDS)})"
            )
        if self.kernel not in KERNEL_CHOICES:
            raise PipelineError(
                f"unknown kernel {self.kernel!r} "
                f"(expected one of {', '.join(KERNEL_CHOICES)})"
            )
        if self.space not in ("deps", "no_deps"):
            raise PipelineError(
                f"unknown model space {self.space!r} (expected 'deps' or 'no_deps')"
            )
        if self.jobs < 1:
            raise PipelineError("jobs must be >= 1")
        if self.shard_size < 1:
            raise PipelineError("shard_size must be >= 1")
        if self.resume and self.run_dir is None:
            raise PipelineError("resume requires a run_dir")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise PipelineError("shard_timeout must be positive")
        if self.shard_retries < 0:
            raise PipelineError("shard_retries must be >= 0")
        if not 0.0 <= self.audit_rate <= 1.0:
            raise PipelineError("audit_rate must be between 0 and 1")
        if self.audit_rate and not self.adaptive:
            raise PipelineError("audit_rate requires adaptive mode")
        if self.partition_checkpoint is not None and not self.adaptive:
            raise PipelineError("partition_checkpoint requires adaptive mode")

    def suite_key(self) -> str:
        """The template suite to compare against: explicit, or matched."""
        if self.suite is not None:
            return self.suite
        return "standard" if self.space == "deps" else "no_deps"

    def enumeration_config(self) -> NaiveEnumerationConfig:
        return BOUNDS[self.bound]


# ----------------------------------------------------------------------
# checkpoint files
# ----------------------------------------------------------------------
def _manifest_payload(
    config: PipelineConfig, model_names: Sequence[str], kernel: str
) -> Dict[str, object]:
    return {
        "schema": "repro/exhaustive_manifest",
        "schema_version": 2,
        "bound": config.bound,
        "space": config.space,
        "suite": config.suite_key(),
        "backend": config.backend,
        # The *resolved* kernel ("native"/"python"/"bigint", "" for
        # kernel-less backends), not the requested spec: a resume must not
        # mix verdict rows from differently-resolved kernels.
        "kernel": kernel,
        "adaptive": config.adaptive,
        "shard_size": config.shard_size,
        "limit": config.limit,
        "model_names": list(model_names),
    }


def _write_manifest(run_dir: str, payload: Dict[str, object]) -> None:
    path = os.path.join(run_dir, "manifest.json")
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2)
    os.replace(tmp, path)


def _check_manifest(run_dir: str, payload: Dict[str, object]) -> None:
    """On resume, the existing manifest must describe the same run."""
    path = os.path.join(run_dir, "manifest.json")
    if not os.path.exists(path):
        return
    try:
        with open(path) as handle:
            existing = json.load(handle)
        if not isinstance(existing, dict):
            raise ValueError("manifest is not a JSON object")
    except (OSError, ValueError):
        # A torn/truncated manifest (e.g. the process died mid-write before
        # the atomic rename existed) is treated as absent: the caller
        # rewrites it, and the per-shard digests still guard every row.
        return
    for key, value in payload.items():
        if existing.get(key) != value:
            raise PipelineError(
                f"cannot resume: manifest field {key!r} is {existing.get(key)!r} "
                f"on disk but {value!r} in this configuration "
                f"(run_dir {run_dir!r} belongs to a different run)"
            )


def _shard_path(run_dir: str, shard_index: int) -> str:
    return os.path.join(run_dir, "shards", f"shard-{shard_index:05d}.jsonl")


def _mask_to_bits(mask: int, width: int) -> str:
    return "".join("1" if (mask >> i) & 1 else "0" for i in range(width))


def _bits_to_mask(bits: str) -> int:
    mask = 0
    for i, bit in enumerate(bits):
        if bit == "1":
            mask |= 1 << i
    return mask


def _write_shard(
    run_dir: str,
    shard_index: int,
    names: Sequence[str],
    digests: Sequence[str],
    rows: Sequence[int],
    num_models: int,
) -> None:
    """Atomically persist one completed shard as JSON lines."""
    path = _shard_path(run_dir, shard_index)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        for name, digest, mask in zip(names, digests, rows):
            handle.write(
                json.dumps(
                    {"test": name, "key": digest, "verdicts": _mask_to_bits(mask, num_models)}
                )
                + "\n"
            )
        handle.write(json.dumps({"done": True, "tests": len(rows)}) + "\n")
    os.replace(tmp, path)
    # Fault point: tests simulate a torn checkpoint by truncating the file
    # just after the atomic rename (spec: pipeline.checkpoint[...]=truncate:N).
    faults.truncate_file("pipeline.checkpoint", path, shard=shard_index)


def _write_adaptive_shard(
    run_dir: str,
    shard_index: int,
    extras: Dict[str, object],
    rows: Sequence[int],
    num_models: int,
) -> None:
    """Persist an adaptive shard: verdict rows *and* skip certificates.

    Records are written in stream order.  A checked test becomes a row
    keyed by its profile digest; a profile skip records the representative
    whose folded row its verdicts provably coincide with; a frontier skip
    records the model-group decomposition under which no verdict row could
    have refined the partition.  Both certificate kinds are machine-
    checkable after the fact (and sampled by ``--audit-rate``).
    """
    path = _shard_path(run_dir, shard_index)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        for record in extras["records"]:
            if "row" in record:
                record = {
                    "test": record["test"],
                    "key": record["key"],
                    "verdicts": _mask_to_bits(rows[record["row"]], num_models),
                }
            handle.write(json.dumps(record) + "\n")
        handle.write(
            json.dumps(
                {
                    "done": True,
                    "tests": len(rows),
                    "profile_skips": extras["profile_skips"],
                    "frontier_skips": extras["frontier_skips"],
                    "raw_offset": extras["raw_offset"],
                }
            )
            + "\n"
        )
    os.replace(tmp, path)
    faults.truncate_file("pipeline.checkpoint", path, shard=shard_index)


def _rebuild_profile_index(run_dir: str, shards_folded: int, pindex: ProfileIndex) -> None:
    """Re-derive the profile-dedup index from the folded shard prefix.

    Row and frontier records carry the first-occurrence representative per
    profile digest (skip records reference an earlier representative, so
    they add nothing).  Unreadable lines are tolerated: a lost digest only
    means the test is re-checked — sound, just not maximally pruned.
    """
    for shard_index in range(shards_folded):
        try:
            with open(_shard_path(run_dir, shard_index)) as handle:
                for line in handle:
                    if not line.strip():
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if not isinstance(record, dict):
                        continue
                    if "test" in record and "key" in record:
                        pindex.add(record["key"], record["test"])
                    elif "frontier" in record:
                        pindex.add(record["profile"], record["frontier"])
        except OSError:
            continue


def _load_shard(
    run_dir: str, shard_index: int, digests: Sequence[str], num_models: int
) -> Optional[List[int]]:
    """Load a completed shard's verdict rows; None when absent or invalid.

    A shard is only trusted when its terminal ``done`` marker is present,
    its row count matches, and every row's key digest equals the digest of
    the test recomputed from the (deterministic) canonical stream.  This
    loader must *never* raise: any torn, truncated or otherwise mangled
    checkpoint — including structurally-wrong JSON like an array line —
    simply means the shard is re-checked.
    """
    path = _shard_path(run_dir, shard_index)
    try:
        with open(path) as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        if not lines or not all(isinstance(line, dict) for line in lines):
            return None
        if lines[-1].get("done") is not True:
            return None
        rows_data, marker = lines[:-1], lines[-1]
        if marker.get("tests") != len(digests) or len(rows_data) != len(digests):
            return None
        rows: List[int] = []
        for row, digest in zip(rows_data, digests):
            bits = row.get("verdicts")
            if row.get("key") != digest or not isinstance(bits, str) or len(bits) != num_models:
                return None
            rows.append(_bits_to_mask(bits))
        return rows
    except (OSError, ValueError):
        return None


# ----------------------------------------------------------------------
# shard checking
# ----------------------------------------------------------------------
def _column_mask(
    engine: CheckEngine,
    test: LitmusTest,
    models: Sequence[MemoryModel],
    derive: bool = False,
) -> int:
    mask = 0
    for index, allowed in enumerate(engine.check_column(test, models, derive=derive)):
        if allowed:
            mask |= 1 << index
    return mask


#: State inherited by forked shard workers (backend name, kernel name,
#: model list, derive flag).
_PIPE_STATE: Optional[Tuple[str, str, List[MemoryModel], bool]] = None
_PIPE_STATE_LOCK = threading.Lock()
#: The worker process's persistent engine (one per process, lazily built).
_WORKER_ENGINE: Optional[CheckEngine] = None


def _pipeline_worker_loop(conn) -> None:
    """A shard worker's main loop (runs in a forked child process).

    Receives ``(shard_index, names, items_list, attempt)`` jobs on the
    pipe and answers ``("ok", shard_index, rows, stats_dict)`` or
    ``("error", shard_index, traceback_text)``; a ``None`` job (or a
    closed pipe) ends the worker.  The engine is built lazily and persists
    across shards, so a long-lived worker pays kernel resolution and model
    compilation once.
    """
    global _WORKER_ENGINE
    assert _PIPE_STATE is not None
    backend, kernel, models, derive = _PIPE_STATE
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            return
        if job is None:
            return
        shard_index, names, items_list, attempt = job
        try:
            # Fault point for worker-failure testing: the attempt number is
            # part of the context, so a spec like
            # ``pipeline.shard[shard=1,attempt=0]=kill`` SIGKILLs only the
            # first attempt and lets the retry succeed.
            faults.fire("pipeline.shard", shard=shard_index, attempt=attempt)
            if _WORKER_ENGINE is None:
                _WORKER_ENGINE = CheckEngine(backend=backend, kernel=kernel)
                _WORKER_ENGINE.precompile(models)
            engine = _WORKER_ENGINE
            before = engine.stats.snapshot()
            # The LitmusTest objects are materialised here, in the worker:
            # the enumerating process streams only the compact abstract item
            # tuples, which both parallelises the test construction and
            # keeps the pipe carrying small tuples instead of instruction
            # object graphs.
            rows = [
                _column_mask(engine, test_from_items(items, name), models, derive=derive)
                for name, items in zip(names, items_list)
            ]
            conn.send(("ok", shard_index, rows, engine.stats.since(before).as_dict()))
        except Exception:  # noqa: BLE001 - the parent decides retry/quarantine
            try:
                conn.send(("error", shard_index, traceback.format_exc(limit=20)))
            except (OSError, ValueError):
                return


#: One shard off the stream: ``(shard_index, names, digests, items_list,
#: extras)``; ``extras`` is None on the brute stream and the adaptive
#: stream's record/counter snapshot otherwise.
ShardTuple = Tuple[int, List[str], List[str], List[tuple], Optional[Dict[str, object]]]


def _shards(config: PipelineConfig, index: CanonicalIndex) -> Iterator[ShardTuple]:
    """The brute stream: canonical dedup, every survivor checked.

    The stream carries abstract item tuples, not built tests — the consumer
    (a worker process, or the serial loop) calls
    :func:`~repro.generation.enumeration.test_from_items` per test.
    """
    stream = enumerate_canonical_naive_items(
        config.enumeration_config(), limit=config.limit, index=index
    )
    shard_index = 0
    names: List[str] = []
    digests: List[str] = []
    items_list: List[tuple] = []
    for key, name, items in stream:
        names.append(name)
        digests.append(key_digest(key))
        items_list.append(items)
        if len(items_list) == config.shard_size:
            yield shard_index, names, digests, items_list, None
            shard_index += 1
            names, digests, items_list = [], [], []
    if items_list:
        yield shard_index, names, digests, items_list, None


def _adaptive_shards(
    config: PipelineConfig,
    space: AdaptiveSpace,
    accumulator: PartitionAccumulator,
    pindex: ProfileIndex,
    counters: Dict[str, int],
    audit_candidates: List[Tuple[str, tuple]],
    start_shard: int = 0,
    start_raw: int = 0,
) -> Iterator[ShardTuple]:
    """The adaptive stream: profile dedup and frontier skipping.

    Works on the *raw* enumeration (the profile is invariant under the
    full symmetry group, so it subsumes canonical dedup).  Per raw test:

    * profile already indexed -> **profile skip** (certificate: the
      representative whose folded row the verdicts coincide with);
    * profile fresh but no row constant on its model groups could refine
      the accumulator matrix -> **frontier skip** (certificate: the group
      masks); the matrix only grows, so the decision never needs revisiting
      and the fresh profile still indexes future duplicates;
    * otherwise the test is checked.

    Frontier decisions read the live accumulator: in serial runs folds
    happen between yields (exactly-replayable decisions); in parallel runs
    the stream may run ahead of the fold, so decisions use a *lagged*
    matrix — skipping strictly less, never unsoundly more.  Counters are
    snapshotted into ``extras`` at yield time for the partition checkpoint.
    ``config.limit`` caps *checked* tests, mirroring the brute stream's cap
    on unique tests.
    """
    raw_stream = enumerate_raw_naive_items(config.enumeration_config())
    for _ in range(start_raw):
        if next(raw_stream, None) is None:
            break
    counters["raw"] = start_raw
    shard_index = start_shard
    names: List[str] = []
    digests: List[str] = []
    items_list: List[tuple] = []
    records: List[Dict[str, object]] = []
    produced = accumulator.tests_folded

    def extras_snapshot() -> Dict[str, object]:
        return {
            "records": records,
            "raw_offset": counters["raw"],
            "profile_skips": counters["profile_skips"],
            "frontier_skips": counters["frontier_skips"],
        }

    for name, items in raw_stream:
        if config.limit is not None and produced >= config.limit:
            break
        counters["raw"] += 1
        profile = space.profile(items)
        digest = profile_digest(profile)
        representative = pindex.representative(digest)
        if representative is not None:
            counters["profile_skips"] += 1
            records.append({"skip": name, "profile": digest, "rep": representative})
            if audit_selected(digest, name, config.audit_rate):
                audit_candidates.append((name, items))
            continue
        groups = space.groups(profile)
        if not accumulator.can_refine(groups):
            counters["frontier_skips"] += 1
            pindex.add(digest, name)
            records.append(
                {
                    "frontier": name,
                    "profile": digest,
                    "groups": [_mask_to_bits(g, space.num_models) for g in groups],
                }
            )
            if audit_selected(digest, name, config.audit_rate):
                audit_candidates.append((name, items))
            continue
        pindex.add(digest, name)
        records.append({"row": len(names), "test": name, "key": digest})
        names.append(name)
        digests.append(digest)
        items_list.append(items)
        produced += 1
        if len(names) == config.shard_size:
            yield shard_index, names, digests, items_list, extras_snapshot()
            shard_index += 1
            names, digests, items_list, records = [], [], [], []
    if names or records:
        yield shard_index, names, digests, items_list, extras_snapshot()


# ----------------------------------------------------------------------
# the pipeline
# ----------------------------------------------------------------------
def run_pipeline(
    config: PipelineConfig,
    models: Optional[Sequence[MemoryModel]] = None,
    suite_tests: Optional[Sequence[LitmusTest]] = None,
    engine: Optional[CheckEngine] = None,
    progress: Optional[ProgressCallback] = None,
) -> EquivalenceReport:
    """Run the exhaustive-enumeration verification pipeline.

    Args:
        config: what to enumerate and how (see :class:`PipelineConfig`).
        models: the model space to partition; derived from ``config.space``
            by default.
        suite_tests: the template suite whose partition is the reference;
            derived from ``config.suite_key()`` by default.
        engine: engine for the template exploration and (with ``jobs=1``)
            the shard checks — pass a session's engine to share its caches.
            Workers of a parallel run always build their own engines from
            ``config.backend``.
        progress: optional callback; raising from it aborts the run (a
            checkpointed run resumes cleanly afterwards).
    """
    started = time.perf_counter()
    if models is None:
        models = model_space(include_data_dependencies=config.space == "deps")
    models = list(models)
    model_names = [model.name for model in models]
    if suite_tests is None:
        suite_tests = _template_suite(config.suite_key())
    if engine is None:
        engine = CheckEngine(backend=config.backend, kernel=config.kernel)
    # Compile the model space once up front: the template exploration, the
    # serial shard loop and (through the process-global IR intern table)
    # any same-process worker fallback all share the compiled artifacts.
    engine.precompile(models)
    resolved_kernel = getattr(getattr(engine, "strategy", None), "kernel", None)
    resolved_kernel = getattr(resolved_kernel, "name", "") or ""

    adaptive_space: Optional[AdaptiveSpace] = None
    if config.adaptive:
        adaptive_space = AdaptiveSpace.build(models)
        if adaptive_space is None:
            raise PipelineError(
                "adaptive mode requires a tabulable formula model space "
                "(straight-line Read/Write/Fence/SameAddr/dependency "
                "vocabulary); rerun with --no-adaptive"
            )

    run_dir = config.run_dir
    if run_dir is not None:
        os.makedirs(os.path.join(run_dir, "shards"), exist_ok=True)
        manifest = _manifest_payload(config, model_names, resolved_kernel)
        if config.resume:
            _check_manifest(run_dir, manifest)
        _write_manifest(run_dir, manifest)

    # The reference partition: what the template suite says about the space.
    from repro.comparison.exploration import explore_models

    template_result = explore_models(models, suite_tests, checker=engine)
    template_classes = [tuple(cls) for cls in template_result.equivalence_classes]
    template_edges = sorted(
        (edge.weaker, edge.stronger) for edge in template_result.hasse_edges
    )
    if progress is not None:
        progress(
            "template",
            {"classes": len(template_classes), "suite_tests": len(suite_tests)},
        )

    accumulator = PartitionAccumulator(model_names)
    index = CanonicalIndex()
    stats = EngineStats()
    num_models = len(models)
    shards_total = 0
    shards_checked = 0
    shards_resumed = 0

    # ------------------------------------------------------------------
    # adaptive state: profile index, skip counters, partition checkpoint
    # ------------------------------------------------------------------
    pindex = ProfileIndex()
    counters = {"raw": 0, "profile_skips": 0, "frontier_skips": 0}
    audit_candidates: List[Tuple[str, tuple]] = []
    start_shard = 0
    start_raw = 0
    partition_path: Optional[str] = None
    if config.adaptive:
        partition_path = config.partition_checkpoint
        if partition_path is None and run_dir is not None:
            partition_path = os.path.join(run_dir, "partition.json")
        if config.resume and partition_path is not None:
            template = _partition_template(
                config, model_names, adaptive_space.digest()
            )
            restored = PartitionCheckpoint.load(partition_path)
            # A torn, tampered or foreign checkpoint degrades to a cold
            # start — never to a wrong partition (the digest seals it).
            if restored is not None and restored.identity() == template.identity():
                accumulator.distinguished = list(restored.distinguished)
                accumulator.tests_folded = restored.tests_folded
                counters["profile_skips"] = restored.profile_skips
                counters["frontier_skips"] = restored.frontier_skips
                start_shard = restored.shards_folded
                start_raw = restored.raw_offset
                shards_total = shards_resumed = start_shard
                if run_dir is not None:
                    _rebuild_profile_index(run_dir, start_shard, pindex)
    #: next shard index whose fold extends the contiguous folded prefix;
    #: the partition checkpoint only advances while the prefix is intact
    #: (a quarantined shard freezes it at the last sound state).
    next_checkpoint_shard = start_shard

    def fold_completed(
        shard_index: int,
        names: Sequence[str],
        digests: Sequence[str],
        rows: Sequence[int],
        resumed: bool,
        extras: Optional[Dict[str, object]] = None,
    ) -> None:
        nonlocal shards_checked, shards_resumed, next_checkpoint_shard
        for mask in rows:
            accumulator.fold_row(mask)
        if resumed:
            shards_resumed += 1
        else:
            shards_checked += 1
            if run_dir is not None:
                if extras is not None:
                    _write_adaptive_shard(
                        run_dir, shard_index, extras, rows, num_models
                    )
                else:
                    _write_shard(
                        run_dir, shard_index, names, digests, rows, num_models
                    )
        if (
            partition_path is not None
            and extras is not None
            and shard_index == next_checkpoint_shard
        ):
            next_checkpoint_shard += 1
            checkpoint = _partition_template(
                config, model_names, adaptive_space.digest()
            )
            checkpoint.shards_folded = next_checkpoint_shard
            checkpoint.raw_offset = int(extras["raw_offset"])
            checkpoint.tests_folded = accumulator.tests_folded
            checkpoint.raw_tests = int(extras["raw_offset"])
            checkpoint.profile_skips = int(extras["profile_skips"])
            checkpoint.frontier_skips = int(extras["frontier_skips"])
            checkpoint.distinguished = list(accumulator.distinguished)
            checkpoint.write(partition_path)
        if progress is not None:
            payload: Dict[str, object] = {
                "shard": shard_index,
                "tests": len(rows),
                "resumed": resumed,
                "unique_so_far": accumulator.tests_folded,
            }
            if extras is not None:
                payload["profile_skips"] = extras["profile_skips"]
                payload["frontier_skips"] = extras["frontier_skips"]
            progress("shard", payload)

    if config.adaptive:
        stream: Iterator[ShardTuple] = _adaptive_shards(
            config, adaptive_space, accumulator, pindex, counters,
            audit_candidates, start_shard, start_raw,
        )
    else:
        stream = _shards(config, index)

    # Extra workers beyond the machine's cores only add fork/IPC overhead
    # (the check is CPU-bound), so a single-core host always takes the
    # serial in-process path no matter what ``--jobs`` asks for.
    effective_jobs = _effective_jobs(config)
    quarantined: List[int] = []
    if effective_jobs > 1:
        quarantined = _run_shards_parallel(
            config, models, stream, fold_completed, stats, num_models
        )
        shards_total = shards_checked + shards_resumed + len(quarantined)
    else:
        for shard_index, names, digests, items_list, extras in stream:
            shards_total += 1
            rows = None
            # Adaptive runs never resume from shard rows: the partition
            # checkpoint already restored the folded prefix wholesale.
            if config.resume and run_dir is not None and not config.adaptive:
                rows = _load_shard(run_dir, shard_index, digests, num_models)
            if rows is not None:
                fold_completed(shard_index, names, digests, rows, resumed=True)
                continue
            # In the serial path the fault point runs in-process (attempt 0
            # only — there is no worker to retry on), so a `kill` fault here
            # SIGKILLs the whole run: exactly the crash-resume scenario.
            faults.fire("pipeline.shard", shard=shard_index, attempt=0)
            before = engine.stats.snapshot()
            rows = [
                _column_mask(
                    engine, test_from_items(items, name), models,
                    derive=config.adaptive,
                )
                for name, items in zip(names, items_list)
            ]
            stats.merge(engine.stats.since(before).as_dict())
            fold_completed(shard_index, names, digests, rows, False, extras)

    # ------------------------------------------------------------------
    # end-of-run audits: re-check a deterministic sample of the skipped
    # tests the long way and verify their certificates — a row that would
    # still refine the partition means an unsound skip, which fails the run.
    # (Skipped when shards were quarantined: a representative's row may be
    # among the lost ones, and ``complete=False`` already flags the run.)
    # ------------------------------------------------------------------
    audits_performed = 0
    if config.adaptive and audit_candidates and not quarantined:
        before = engine.stats.snapshot()
        for name, items in audit_candidates:
            mask = _column_mask(engine, test_from_items(items, name), models)
            if accumulator.row_would_change(mask):
                raise PipelineError(
                    f"adaptive audit failed: skipped test {name!r} would "
                    f"refine the partition (unsound skip certificate)"
                )
            audits_performed += 1
        stats.merge(engine.stats.since(before).as_dict())

    naive_classes = accumulator.equivalence_classes()
    naive_edges = accumulator.hasse_edges()
    mismatches = EquivalenceReport.compare_partitions(
        naive_classes, naive_edges, template_classes, template_edges
    )
    report = EquivalenceReport(
        bound=config.bound,
        space=config.space,
        suite=config.suite_key(),
        backend=config.backend,
        model_names=model_names,
        raw_tests=counters["raw"] if config.adaptive else index.offered,
        unique_tests=accumulator.tests_folded,
        shards_total=shards_total,
        shards_checked=shards_checked,
        shards_resumed=shards_resumed,
        checks_performed=stats.checks_performed,
        equivalence_classes=naive_classes,
        hasse_edges=naive_edges,
        template_classes=template_classes,
        template_hasse_edges=template_edges,
        matches_template=not mismatches,
        mismatches=mismatches,
        stats=stats,
        elapsed_seconds=time.perf_counter() - started,
        shards_quarantined=len(quarantined),
        quarantined_shards=sorted(quarantined),
        complete=not quarantined,
        adaptive=config.adaptive,
        profile_skips=counters["profile_skips"],
        frontier_skips=counters["frontier_skips"],
        audits_performed=audits_performed,
    )
    if quarantined and run_dir is not None:
        # Record the quarantine in the manifest (an extra key the resume
        # check ignores); the quarantined shards have no checkpoint file,
        # so a later --resume re-checks exactly them.
        _write_manifest(
            run_dir, dict(manifest, quarantined=sorted(quarantined))
        )
    if progress is not None:
        progress(
            "finish",
            {"matches": report.matches_template, "complete": report.complete},
        )
    return report


def _effective_jobs(config: PipelineConfig) -> int:
    """Worker count after the core-count clamp.

    The clamp is a performance heuristic (oversubscribing a CPU-bound
    check only adds fork/IPC overhead) — but when faults are armed, the
    caller is explicitly testing worker isolation, so the requested job
    count is honored even on a single-core host: a SIGKILLed worker must
    exercise the retry path, not be silently run in-process.
    """
    if faults.active():
        return config.jobs
    return min(config.jobs, os.cpu_count() or 1)


def _partition_template(
    config: PipelineConfig, model_names: Sequence[str], space_digest: str
) -> PartitionCheckpoint:
    """A zero-progress checkpoint carrying this run's identity fields."""
    return PartitionCheckpoint(
        bound=config.bound,
        space=config.space,
        suite=config.suite_key(),
        backend=config.backend,
        shard_size=config.shard_size,
        limit=config.limit,
        model_names=list(model_names),
        space_digest=space_digest,
    )


def _template_suite(key: str) -> List[LitmusTest]:
    from repro.core.predicates import EXTENDED_PREDICATES
    from repro.generation.suite import generate_suite, no_dependency_suite, standard_suite

    if key == "standard":
        return standard_suite().tests()
    if key == "no_deps":
        return no_dependency_suite().tests()
    if key == "extended":
        return generate_suite(EXTENDED_PREDICATES).tests()
    raise PipelineError(
        f"unknown template suite {key!r} (expected 'standard', 'no_deps' or 'extended')"
    )


class _ShardEntry:
    """One shard's lifecycle in the parallel scheduler."""

    __slots__ = (
        "shard_index", "names", "digests", "items_list", "extras",
        "rows", "resumed", "attempts", "quarantined", "failure",
    )

    def __init__(
        self,
        shard_index: int,
        names: List[str],
        digests: List[str],
        items_list: List[tuple],
        extras: Optional[Dict[str, object]] = None,
    ) -> None:
        self.shard_index = shard_index
        self.names = names
        self.digests = digests
        self.items_list: Optional[List[tuple]] = items_list
        self.extras = extras
        self.rows: Optional[List[int]] = None
        self.resumed = False
        #: attempts started so far (the worker sees this as ``attempt``)
        self.attempts = 0
        self.quarantined = False
        self.failure = ""

    def done(self) -> bool:
        return self.resumed or self.quarantined or self.rows is not None


class _WorkerHandle:
    """One live shard worker: a forked process plus its duplex pipe."""

    def __init__(self, context) -> None:
        parent_conn, child_conn = context.Pipe()
        self.conn = parent_conn
        self.process = context.Process(
            target=_pipeline_worker_loop, args=(child_conn,), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.entry: Optional[_ShardEntry] = None
        self.deadline: Optional[float] = None

    def assign(self, entry: _ShardEntry, shard_timeout: Optional[float]) -> bool:
        """Send a shard to the worker; False if the pipe is already broken."""
        attempt = entry.attempts
        entry.attempts += 1
        try:
            self.conn.send((entry.shard_index, entry.names, entry.items_list, attempt))
        except (OSError, ValueError):
            return False
        self.entry = entry
        self.deadline = (
            time.monotonic() + shard_timeout if shard_timeout is not None else None
        )
        return True

    def close(self, kill: bool = False) -> None:
        if kill:
            self.process.kill()
        else:
            try:
                self.conn.send(None)
            except (OSError, ValueError):
                pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5.0)
        self.conn.close()


def _run_shards_parallel(
    config: PipelineConfig,
    models: List[MemoryModel],
    stream: Iterator[ShardTuple],
    fold_completed: Callable[..., None],
    stats: EngineStats,
    num_models: int,
) -> List[int]:
    """Fan shard checking out over fault-tolerant fork workers.

    Shards are materialised at most ``2 * jobs`` at a time so a huge
    enumeration never holds more than a window of shards in memory, and
    results are folded (and checkpointed) in shard order so a kill leaves
    a clean resumable prefix plus at most a window of lost work.

    Fault tolerance: a worker that dies (any cause, detected through its
    process sentinel), reports an exception, or overruns
    ``config.shard_timeout`` is killed and replaced by a fresh worker, and
    its shard is retried up to ``config.shard_retries`` more times.  A
    shard that exhausts its attempts is *quarantined* — excluded from the
    partition and returned to the caller — instead of aborting the run.

    Returns the quarantined shard indices (empty for a clean run).
    """
    import multiprocessing
    from multiprocessing import connection as mp_connection

    global _PIPE_STATE
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        # No fork on this platform: check serially on one in-process engine.
        engine = CheckEngine(backend=config.backend, kernel=config.kernel)
        for shard_index, names, digests, items_list, extras in stream:
            rows = None
            if config.resume and config.run_dir is not None and not config.adaptive:
                rows = _load_shard(config.run_dir, shard_index, digests, num_models)
            if rows is not None:
                fold_completed(shard_index, names, digests, rows, resumed=True)
                continue
            faults.fire("pipeline.shard", shard=shard_index, attempt=0)
            before = engine.stats.snapshot()
            rows = [
                _column_mask(
                    engine, test_from_items(items, name), models,
                    derive=config.adaptive,
                )
                for name, items in zip(names, items_list)
            ]
            stats.merge(engine.stats.since(before).as_dict())
            fold_completed(shard_index, names, digests, rows, False, extras)
        return []

    jobs = _effective_jobs(config)
    window = jobs * 2
    max_attempts = 1 + config.shard_retries
    quarantined: List[int] = []

    with _PIPE_STATE_LOCK:
        _PIPE_STATE = (config.backend, config.kernel, models, config.adaptive)
        workers: List[_WorkerHandle] = []
        try:
            #: shards materialised but not yet folded, in shard order
            entries: List[_ShardEntry] = []
            #: shards awaiting a worker (retries go to the front)
            pending: Deque[_ShardEntry] = deque()
            exhausted = False

            def fill_window() -> None:
                nonlocal exhausted
                while not exhausted and len(entries) < window:
                    try:
                        shard_index, names, digests, items_list, extras = next(stream)
                    except StopIteration:
                        exhausted = True
                        return
                    entry = _ShardEntry(shard_index, names, digests, items_list, extras)
                    if config.resume and config.run_dir is not None and not config.adaptive:
                        rows = _load_shard(config.run_dir, shard_index, digests, num_models)
                        if rows is not None:
                            entry.rows, entry.resumed = rows, True
                    entries.append(entry)
                    if not entry.resumed:
                        pending.append(entry)

            def fold_front() -> None:
                while entries and entries[0].done():
                    entry = entries.pop(0)
                    if entry.quarantined:
                        quarantined.append(entry.shard_index)
                        continue
                    assert entry.rows is not None
                    fold_completed(
                        entry.shard_index, entry.names, entry.digests,
                        entry.rows, entry.resumed, entry.extras,
                    )

            def fail(worker: _WorkerHandle, reason: str) -> None:
                """Kill a failed/hung worker; retry or quarantine its shard."""
                entry = worker.entry
                worker.entry = None
                worker.close(kill=True)
                workers.remove(worker)
                assert entry is not None
                entry.failure = reason
                if entry.attempts >= max_attempts:
                    entry.quarantined = True
                else:
                    pending.appendleft(entry)

            while True:
                fill_window()
                fold_front()
                # Hand pending shards to idle workers, spawning fresh
                # workers up to the job count as needed.
                idle = [worker for worker in workers if worker.entry is None]
                while pending and (idle or len(workers) < jobs):
                    worker = idle.pop() if idle else None
                    if worker is None:
                        worker = _WorkerHandle(context)
                        workers.append(worker)
                    entry = pending.popleft()
                    if not worker.assign(entry, config.shard_timeout):
                        entry.attempts -= 1  # the send never reached a worker
                        worker.entry = entry  # so fail() routes the retry
                        fail(worker, "worker pipe broken before dispatch")

                busy = [worker for worker in workers if worker.entry is not None]
                if not busy:
                    if exhausted and not pending:
                        fold_front()
                        if not entries:
                            break
                    continue

                # Wait for a result, a death (process sentinel), or the
                # nearest shard deadline.
                waitables: List[object] = [worker.conn for worker in busy]
                waitables += [worker.process.sentinel for worker in busy]
                timeout = 0.5
                if config.shard_timeout is not None:
                    soonest = min(
                        worker.deadline for worker in busy if worker.deadline is not None
                    )
                    timeout = max(0.0, min(0.5, soonest - time.monotonic()))
                mp_connection.wait(waitables, timeout)

                now = time.monotonic()
                for worker in busy:
                    entry = worker.entry
                    if entry is None:  # already handled this round
                        continue
                    if worker.conn.poll():
                        try:
                            message = worker.conn.recv()
                        except (EOFError, OSError):
                            fail(worker, "worker died mid-shard")
                            continue
                        if message[0] == "ok":
                            _, shard_index, rows, worker_stats = message
                            assert shard_index == entry.shard_index
                            # Stats merge only on success, keeping counters
                            # deterministic: failed attempts contribute none.
                            stats.merge(worker_stats)
                            entry.rows = rows
                            entry.items_list = None
                            worker.entry = None
                            worker.deadline = None
                        else:
                            _, shard_index, text = message
                            # A fresh worker per retry: the failed worker's
                            # state is suspect, so it is not reused.
                            fail(worker, f"worker exception:\n{text}")
                    elif not worker.process.is_alive():
                        fail(worker, "worker died mid-shard")
                    elif worker.deadline is not None and now >= worker.deadline:
                        fail(
                            worker,
                            f"shard exceeded the {config.shard_timeout:g}s timeout",
                        )
        finally:
            for worker in workers:
                worker.close()
            _PIPE_STATE = None
    return quarantined
