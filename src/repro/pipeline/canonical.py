"""Symmetry reduction of litmus tests (the pipeline's canonicalizer).

The naive bounded enumeration of Section 3.4 generates millions of raw
tests, but the paper's class of models cannot tell many of them apart: a
model's verdict is invariant under

* **thread permutation** — the must-not-reorder predicates (Read, Write,
  Fence, SameAddr, DataDep) never mention thread identity;
* **location renaming** — only address *equality* (SameAddr, read-from and
  coherence grouping) matters, never which location it is;
* **value renaming** — per location, values are pure labels linking each
  load to the stores that could satisfy it; any bijection that fixes the
  initial value ``0`` preserves the read-from candidate structure exactly.

Two tests related by such a symmetry are *kernel-equivalent*: every model of
the class gives them the same verdict (property-tested in
``tests/pipeline/test_canonical_properties.py``).  This module computes a
canonical form per equivalence class so the exhaustive-verification pipeline
only checks one representative:

* :func:`canonical_form` / :func:`canonical_key` — the canonical abstract
  shape (minimum over thread permutations of a first-use relabelling);
* :func:`canonicalize` — the canonical representative as a
  :class:`~repro.core.litmus.LitmusTest`;
* :class:`CanonicalIndex` — the dedup index the streaming pipeline folds
  raw tests through (exact keys, or bounded-memory digests);
* :func:`canonical_stream` — raw test stream -> unique representatives.

Tests containing instructions outside the straight-line Load/Store/Fence
fragment (dependency idioms, computed addresses) are left alone: they get an
opaque content-based key and are never merged with anything.
"""

from __future__ import annotations

import hashlib
from itertools import permutations
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.expr import Const, Loc
from repro.core.instructions import Fence, Load, Store
from repro.core.litmus import LitmusTest
from repro.core.program import Program, Thread
from repro.util.naming import location_name

#: One abstract instruction: ``("R", location, value)``, ``("W", location,
#: value)`` or ``("F", fence_kind, 0)``.  Location and value are ints after
#: relabelling; before relabelling they may be arbitrary hashables.
Item = Tuple[str, object, object]

#: An abstract test: one item tuple per thread.
AbstractTest = Tuple[Tuple[Item, ...], ...]

#: A dedup key: a canonical :data:`AbstractTest`, or an opaque fallback.
CanonicalKey = Tuple[object, ...]


def abstract_test(test: LitmusTest) -> Optional[AbstractTest]:
    """Return the test's abstract shape, or None if it falls outside the
    canonicalizable Load/Store/Fence fragment."""
    outcome = test.outcome.as_dict()
    threads: List[Tuple[Item, ...]] = []
    for thread_index, thread in enumerate(test.program.threads):
        items: List[Item] = []
        for instruction_index, instruction in enumerate(thread.instructions):
            if isinstance(instruction, Load):
                if not isinstance(instruction.address, Loc):
                    return None
                value = outcome[(thread_index, instruction_index)]
                items.append(("R", instruction.address.name, value))
            elif isinstance(instruction, Store):
                if not isinstance(instruction.address, Loc) or not isinstance(
                    instruction.value, Const
                ):
                    return None
                items.append(("W", instruction.address.name, instruction.value.value))
            elif isinstance(instruction, Fence):
                items.append(("F", instruction.kind, 0))
            else:
                return None
        threads.append(tuple(items))
    return tuple(threads)


def _relabel(threads: Iterable[Tuple[Item, ...]]) -> AbstractTest:
    """Relabel locations by first use and values per location (0 fixed)."""
    loc_ids: Dict[object, int] = {}
    value_ids: Dict[object, Dict[object, int]] = {}
    result: List[Tuple[Item, ...]] = []
    for items in threads:
        row: List[Item] = []
        for item in items:
            kind = item[0]
            if kind == "F":
                row.append(item)
                continue
            _, location, value = item
            if location not in loc_ids:
                loc_ids[location] = len(loc_ids)
            values = value_ids.setdefault(location, {0: 0})
            if value not in values:
                values[value] = len(values)
            row.append((kind, loc_ids[location], values[value]))
        result.append(tuple(row))
    return tuple(result)


#: memoized single-thread relabellings (the first row of ``_relabel`` for a
#: permutation depends only on its first thread, so these decide most
#: two-thread permutation minima without relabelling both orders)
_SINGLE_RELABEL: Dict[Tuple[Item, ...], Tuple[Item, ...]] = {}
_SINGLE_RELABEL_CAP = 1 << 20


def _relabel_single(items: Tuple[Item, ...]) -> Tuple[Item, ...]:
    row = _SINGLE_RELABEL.get(items)
    if row is None:
        if len(_SINGLE_RELABEL) >= _SINGLE_RELABEL_CAP:
            _SINGLE_RELABEL.clear()
        row = _relabel((items,))[0]
        _SINGLE_RELABEL[items] = row
    return row


def canonical_form(threads: AbstractTest) -> AbstractTest:
    """Return the canonical abstract form: the lexicographic minimum of the
    first-use relabelling over all thread permutations.

    Canonicity: for any thread permutation, location renaming and
    0-preserving per-location value renaming, the transformed test's
    canonical form equals the original's — the first-use relabelling absorbs
    the renamings and the minimum absorbs the permutation.

    For the two-thread common case the winning permutation is usually
    decided by the first row alone (which equals the memoized single-thread
    relabelling of the leading thread), so only that permutation is fully
    relabelled.
    """
    if len(threads) == 2:
        first, second = threads
        row_first = _relabel_single(first)
        row_second = _relabel_single(second)
        if row_first < row_second:
            return _relabel(threads)
        if row_second < row_first:
            return _relabel((second, first))
        return min(_relabel(threads), _relabel((second, first)))
    return min(_relabel(permuted) for permuted in permutations(threads))


def canonical_key(test: LitmusTest) -> CanonicalKey:
    """Return the test's dedup key.

    Canonicalizable tests map to their canonical form (shared by the whole
    symmetry class); anything else gets an opaque content-based key that
    never collides with a canonical form.
    """
    abstracted = abstract_test(test)
    if abstracted is not None:
        return canonical_form(abstracted)
    return ("opaque", test.name, repr(test.program), tuple(test.outcome.read_values))


def key_digest(key: CanonicalKey) -> str:
    """Return a stable hex digest of a dedup key (for checkpoint files)."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:32]


def build_canonical_test(
    form: AbstractTest, name: str, description: str = "canonical representative"
) -> LitmusTest:
    """Materialise a canonical abstract form as a litmus test."""
    threads: List[Thread] = []
    read_values: Dict[Tuple[int, int], int] = {}
    for thread_index, items in enumerate(form):
        instructions: List[object] = []
        register_serial = 0
        for item in items:
            kind = item[0]
            if kind == "F":
                instructions.append(Fence(str(item[1])))
            elif kind == "R":
                register = f"r{thread_index + 1}{register_serial}"
                register_serial += 1
                instructions.append(Load(register, location_name(int(item[1]))))
                read_values[(thread_index, len(instructions) - 1)] = int(item[2])
            else:
                instructions.append(Store(location_name(int(item[1])), int(item[2])))
        threads.append(Thread(f"T{thread_index + 1}", instructions))
    return LitmusTest(name, Program(threads), read_values, description=description)


def canonicalize(test: LitmusTest) -> LitmusTest:
    """Return the canonical representative of the test's symmetry class.

    Every model of the paper's class gives the representative the same
    verdict as the original.  Tests outside the canonicalizable fragment are
    returned unchanged.
    """
    abstracted = abstract_test(test)
    if abstracted is None:
        return test
    return build_canonical_test(
        canonical_form(abstracted), test.name, description=test.description
    )


class CanonicalIndex:
    """The streaming dedup index: have we seen this symmetry class before?

    With ``digests=True`` the index stores 128-bit digests instead of the
    full key tuples, bounding memory for very large enumerations at the cost
    of an (astronomically unlikely) hash collision merging two classes.
    """

    def __init__(self, digests: bool = False) -> None:
        self.digests = digests
        self._seen: set = set()
        #: raw tests offered, including duplicates
        self.offered = 0

    def __len__(self) -> int:
        return len(self._seen)

    def add(self, key: CanonicalKey) -> bool:
        """Record a key; return True when it was not seen before."""
        self.offered += 1
        entry: object = key_digest(key) if self.digests else key
        if entry in self._seen:
            return False
        self._seen.add(entry)
        return True


def canonical_stream(
    tests: Iterable[LitmusTest],
    index: Optional[CanonicalIndex] = None,
    limit: Optional[int] = None,
) -> Iterator[Tuple[CanonicalKey, LitmusTest]]:
    """Collapse a raw test stream to one first-seen test per symmetry class.

    Yields ``(key, test)`` pairs in stream order; ``limit`` caps the number
    of unique tests yielded.  Pass a shared :class:`CanonicalIndex` to
    observe the raw/unique counts (or to dedup across several streams).
    """
    if index is None:
        index = CanonicalIndex()
    produced = 0
    for test in tests:
        if limit is not None and produced >= limit:
            return
        key = canonical_key(test)
        if index.add(key):
            produced += 1
            yield key, test
