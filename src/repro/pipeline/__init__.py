"""Sharded exhaustive-enumeration verification pipeline.

Streams the naive bounded test enumeration through a symmetry-reducing
canonicalizer, shards the unique survivors across persistent-engine
workers, and folds the verdicts into a model-space partition compared
against the template suite's — the paper's completeness claim as a
reproducible artifact (:class:`~repro.pipeline.report.EquivalenceReport`).
"""

from repro.pipeline.canonical import (
    CanonicalIndex,
    abstract_test,
    build_canonical_test,
    canonical_form,
    canonical_key,
    canonical_stream,
    canonicalize,
    key_digest,
)
from repro.pipeline.report import EquivalenceReport, PartitionAccumulator
from repro.pipeline.run import (
    BOUNDS,
    PipelineConfig,
    PipelineError,
    run_pipeline,
)

__all__ = [
    "BOUNDS",
    "CanonicalIndex",
    "EquivalenceReport",
    "PartitionAccumulator",
    "PipelineConfig",
    "PipelineError",
    "abstract_test",
    "build_canonical_test",
    "canonical_form",
    "canonical_key",
    "canonical_stream",
    "canonicalize",
    "key_digest",
    "run_pipeline",
]
