"""The pipeline's headline artifact: the naive-space model partition.

The paper's completeness claim (Section 3.4 / Theorem 1) is that the
~230-test template suite distinguishes every distinguishable pair of models
in the parametric space — i.e. exhaustive enumeration over all bounded
programs induces exactly the same partition (and the same strength order)
as the template suite.  :class:`EquivalenceReport` records both partitions
and their comparison.

The naive-space partition is folded incrementally: the full verdict vector
per model is enormous (one bit per unique test), but the partition and the
strictly-stronger order only need, per ordered model pair ``(A, B)``,
*whether some test allowed by A is forbidden by B*.  The
:class:`PartitionAccumulator` keeps exactly that — one bitmask per model —
so a shard's verdict rows fold in O(models) per test and a killed run
resumes from per-shard aggregates without replaying millions of verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.engine import EngineStats
from repro.util.digraph import Digraph


class PartitionAccumulator:
    """Incrementally folds verdict rows into the model-pair dominance matrix.

    ``distinguished[i]`` has bit ``j`` set iff some test seen so far is
    allowed by model ``i`` but forbidden by model ``j``.  That matrix
    determines equivalence (neither direction distinguished) and strict
    strength (allowed-set inclusion) for every pair.
    """

    def __init__(self, model_names: Sequence[str]) -> None:
        self.model_names: List[str] = list(model_names)
        self.num_models = len(self.model_names)
        self._full_mask = (1 << self.num_models) - 1
        #: distinguished[i] bit j: i allows some test j forbids
        self.distinguished: List[int] = [0] * self.num_models
        #: tests folded in so far
        self.tests_folded = 0

    # ------------------------------------------------------------------
    def fold_row(self, allowed_mask: int) -> None:
        """Fold one test's verdicts, encoded as a bitmask over models."""
        forbidden = ~allowed_mask & self._full_mask
        if not forbidden or not allowed_mask:
            # A test everyone allows (or everyone forbids) separates nothing.
            self.tests_folded += 1
            return
        remaining = allowed_mask
        while remaining:
            low = remaining & -remaining
            self.distinguished[low.bit_length() - 1] |= forbidden
            remaining ^= low
        self.tests_folded += 1

    def fold_bools(self, verdicts: Sequence[bool]) -> None:
        """Fold one test's verdicts given as one bool per model."""
        mask = 0
        for index, allowed in enumerate(verdicts):
            if allowed:
                mask |= 1 << index
        self.fold_row(mask)

    def can_refine(self, group_masks: Sequence[int]) -> bool:
        """Could *any* verdict row constant on each group still refine the
        matrix?

        ``group_masks`` partitions the model space (e.g. the groups a test
        profile induces, see :meth:`AdaptiveSpace.groups`): every model in
        a group is guaranteed the same verdict.  Such a row can only set a
        ``distinguished[i]`` bit ``j`` for models ``i``, ``j`` in different
        groups, so when every ordered cross-group pair is already
        distinguished the row is a guaranteed no-op.  The matrix only
        grows, so once this returns False for a grouping it stays False.
        """
        if len(group_masks) <= 1:
            return False
        union = 0
        for group in group_masks:
            union |= group
        for group in group_masks:
            others = union & ~group
            remaining = group
            while remaining:
                low = remaining & -remaining
                if (self.distinguished[low.bit_length() - 1] & others) != others:
                    return True
                remaining ^= low
        return False

    def row_would_change(self, allowed_mask: int) -> bool:
        """Whether folding this row would change the matrix (non-mutating)."""
        forbidden = ~allowed_mask & self._full_mask
        if not forbidden or not allowed_mask:
            return False
        remaining = allowed_mask
        while remaining:
            low = remaining & -remaining
            if (self.distinguished[low.bit_length() - 1] & forbidden) != forbidden:
                return True
            remaining ^= low
        return False

    def merge(self, other: "PartitionAccumulator") -> None:
        """Fold another accumulator (e.g. a resumed shard's) into this one."""
        if other.model_names != self.model_names:
            raise ValueError("cannot merge accumulators over different model lists")
        for index in range(self.num_models):
            self.distinguished[index] |= other.distinguished[index]
        self.tests_folded += other.tests_folded

    # ------------------------------------------------------------------
    def equivalent(self, i: int, j: int) -> bool:
        """No test seen distinguishes models ``i`` and ``j`` either way."""
        return not (self.distinguished[i] >> j) & 1 and not (
            self.distinguished[j] >> i
        ) & 1

    def strictly_stronger(self, i: int, j: int) -> bool:
        """Model ``i`` allows a strict subset of what model ``j`` allows."""
        return not (self.distinguished[i] >> j) & 1 and bool(
            (self.distinguished[j] >> i) & 1
        )

    def equivalence_classes(self) -> List[Tuple[str, ...]]:
        """Group the models into classes, sorted like ExplorationResult's."""
        assigned: Dict[int, List[str]] = {}
        representative: List[Optional[int]] = [None] * self.num_models
        for i in range(self.num_models):
            for j in range(i):
                if representative[j] == j and self.equivalent(i, j):
                    representative[i] = j
                    assigned[j].append(self.model_names[i])
                    break
            if representative[i] is None:
                representative[i] = i
                assigned[i] = [self.model_names[i]]
        return sorted(
            (tuple(sorted(names)) for names in assigned.values()),
            key=lambda cls: cls[0],
        )

    def hasse_edges(self) -> List[Tuple[str, str]]:
        """Weaker -> stronger edges between class representatives
        (transitive reduction of the strict-strength order)."""
        classes = self.equivalence_classes()
        index_of = {name: i for i, name in enumerate(self.model_names)}
        representatives = [cls[0] for cls in classes]
        graph = Digraph(representatives)
        for weaker in representatives:
            for stronger in representatives:
                if weaker != stronger and self.strictly_stronger(
                    index_of[stronger], index_of[weaker]
                ):
                    graph.add_edge(weaker, stronger)
        return sorted(graph.transitive_reduction().edges())


@dataclass
class EquivalenceReport:
    """The exhaustive-enumeration pipeline's result.

    Records the model partition induced by the symmetry-reduced naive test
    space, the partition the template suite induces (via ``explore``), and
    whether they agree — the paper's completeness claim when they do.
    """

    bound: str
    space: str
    suite: str
    backend: str
    model_names: List[str]
    #: raw naive tests enumerated (before symmetry reduction)
    raw_tests: int
    #: kernel-distinct survivors actually checked
    unique_tests: int
    shards_total: int
    #: shards checked by this run (the rest were resumed from disk)
    shards_checked: int
    shards_resumed: int
    checks_performed: int
    #: partition of the model space induced by the naive space
    equivalence_classes: List[Tuple[str, ...]]
    #: weaker -> stronger Hasse edges between naive-partition class reps
    hasse_edges: List[Tuple[str, str]]
    #: the template suite's partition of the same space
    template_classes: List[Tuple[str, ...]]
    template_hasse_edges: List[Tuple[str, str]]
    #: the completeness claim: both partitions and both orders coincide
    matches_template: bool
    #: human-readable description of any disagreement
    mismatches: List[str] = field(default_factory=list)
    stats: Optional[EngineStats] = None
    elapsed_seconds: float = 0.0
    #: shards whose workers failed repeatedly and were excluded from the
    #: partition (the run still completes, but ``complete`` goes False)
    shards_quarantined: int = 0
    quarantined_shards: List[int] = field(default_factory=list)
    #: False when quarantined shards mean the partition is only partial
    complete: bool = True
    #: True when the partition-guided adaptive layer drove the run
    adaptive: bool = False
    #: tests skipped because their profile proved the verdict row coincides
    #: with an already-folded row (certificate: the representative's name)
    profile_skips: int = 0
    #: tests skipped because no row constant on the profile's model groups
    #: could still refine the partition (certificate: the group masks)
    frontier_skips: int = 0
    #: sampled skipped tests re-checked end-of-run against the matrix
    audits_performed: int = 0

    # ------------------------------------------------------------------
    @staticmethod
    def compare_partitions(
        naive_classes: Sequence[Tuple[str, ...]],
        naive_edges: Sequence[Tuple[str, str]],
        template_classes: Sequence[Tuple[str, ...]],
        template_edges: Sequence[Tuple[str, str]],
    ) -> List[str]:
        """Return the differences between the two partitions (empty = match)."""
        mismatches: List[str] = []
        naive_set = {tuple(cls) for cls in naive_classes}
        template_set = {tuple(cls) for cls in template_classes}
        for cls in sorted(template_set - naive_set):
            mismatches.append(f"template class not induced by naive space: {cls}")
        for cls in sorted(naive_set - template_set):
            mismatches.append(f"naive-space class not induced by templates: {cls}")
        if not mismatches:
            naive_edge_set = set(naive_edges)
            template_edge_set = set(template_edges)
            for edge in sorted(template_edge_set - naive_edge_set):
                mismatches.append(f"template Hasse edge missing from naive order: {edge}")
            for edge in sorted(naive_edge_set - template_edge_set):
                mismatches.append(f"naive Hasse edge missing from template order: {edge}")
        return mismatches

    def num_classes(self) -> int:
        return len(self.equivalence_classes)

    def reduction_factor(self) -> float:
        """How many raw tests each checked representative stood in for."""
        if not self.unique_tests:
            return 0.0
        return self.raw_tests / self.unique_tests

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Render the report as a human-readable summary."""
        lines = [
            f"Exhaustive enumeration over bound {self.bound!r} "
            f"({self.space} space, {len(self.model_names)} models, "
            f"{self.backend} backend)",
            f"  raw tests enumerated : {self.raw_tests}",
            (
                f"  checked after pruning: {self.unique_tests} "
                f"(x{self.reduction_factor():.1f} reduction)"
                if self.adaptive
                else f"  unique after symmetry: {self.unique_tests} "
                f"(x{self.reduction_factor():.1f} reduction)"
            ),
            f"  shards               : {self.shards_total} total, "
            f"{self.shards_checked} checked, {self.shards_resumed} resumed"
            + (f", {self.shards_quarantined} quarantined" if self.shards_quarantined else ""),
            f"  checks performed     : {self.checks_performed}",
            f"  naive partition      : {self.num_classes()} classes, "
            f"{len(self.hasse_edges)} Hasse edges",
            f"  template partition   : {len(self.template_classes)} classes, "
            f"{len(self.template_hasse_edges)} Hasse edges "
            f"(suite {self.suite!r})",
        ]
        if self.adaptive:
            lines.insert(
                3,
                f"  adaptive pruning     : {self.profile_skips} profile skips, "
                f"{self.frontier_skips} frontier skips, "
                f"{self.audits_performed} audits",
            )
        if self.elapsed_seconds:
            rate = self.unique_tests / self.elapsed_seconds if self.elapsed_seconds else 0
            lines.append(
                f"  elapsed              : {self.elapsed_seconds:.2f}s "
                f"({rate:.0f} unique tests/s)"
            )
        if not self.complete:
            lines.append(
                f"  WARNING: run INCOMPLETE — shards "
                f"{sorted(self.quarantined_shards)} were quarantined after "
                f"repeated worker failures; the naive partition below is "
                f"over the remaining shards only"
            )
        if self.matches_template:
            lines.append(
                "  RESULT: naive-space partition MATCHES the template-suite "
                "partition (completeness reproduced)"
                + ("" if self.complete else " — MODULO the quarantined shards")
            )
        else:
            lines.append("  RESULT: partitions DISAGREE:")
            lines.extend(f"    - {mismatch}" for mismatch in self.mismatches)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """Serialize to a schema-versioned JSON document."""
        from repro.api.serialize import equivalence_report_to_json

        return equivalence_report_to_json(self)

    @staticmethod
    def from_json(document: Dict[str, Any]) -> "EquivalenceReport":
        """Rebuild from a document written by :meth:`to_json`."""
        from repro.api.serialize import equivalence_report_from_json

        return equivalence_report_from_json(document)
