"""The ModelIR: a hash-consed, NNF-normalized DAG over predicate atoms.

Every must-not-reorder function — a :class:`~repro.core.formula.Formula`, a
raw Python callable, or a user :class:`Formula` subclass — normalizes into
one small node language:

* ``true`` / ``false`` — the constants;
* ``atom`` / ``natom`` — a (possibly negated) predicate application bound to
  a concrete :class:`~repro.core.predicates.Predicate` object.  Negation
  only ever appears here: :func:`from_formula` pushes ``Not`` through
  ``And``/``Or`` by De Morgan's laws (negation normal form), so every
  composite node is positive;
* ``and`` / ``or`` — n-ary connectives over *canonically ordered, deduplicated*
  children (commutativity and idempotence are normalized away);
* ``call`` — an opaque atom wrapping a Python callable ``(execution, x, y)
  -> bool``; callable-defined models and unknown :class:`Formula` subclasses
  compile to one of these, which lets the bitmask lowering tabulate even
  arbitrary Python functions over the same-thread pairs of an execution.

Nodes are **interned process-wide**: structurally equal subformulas are the
*same object* no matter which model they came from, so the 90 models of the
parametric space share one subformula table (cross-model common-subexpression
elimination), and per-execution evaluation caches keyed by ``node_id`` pay
for each distinct subtree once per execution, however many models use it.

Every node carries a **content digest** (sha256 over the canonical
structure) that is stable across processes and across model re-registration:
two structurally equal formulas over the built-in predicates produce equal
digests even when the surrounding :class:`~repro.core.model.MemoryModel`
objects are distinct.  The digest is the semantic cache key the engine layer
uses (:mod:`repro.engine.context`).  Predicates outside the built-in
registry, and ``call`` nodes, get per-object tokens instead — unique but not
portable, which is exactly right: their semantics cannot be recovered from
structure.

Construction simplifies on the fly: flattening, neutral/absorbing constants,
duplicate children, complementary literal pairs (``P & !P -> False``,
``P | !P -> True``) and single-child collapse all happen in
:func:`and_node` / :func:`or_node`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.execution import Execution
from repro.core.events import Event
from repro.core.formula import (
    And,
    Atom,
    FalseFormula,
    Formula,
    FormulaError,
    Not,
    Or,
    TrueFormula,
)
from repro.core.predicates import Predicate, default_registry

#: An opaque must-not-reorder callable, the payload of a ``call`` node.
OpaqueCallable = Callable[[Execution, Event, Event], bool]


class IRNode:
    """One hash-consed node of the ModelIR DAG.

    Instances are created only through the module's constructor functions
    (which intern them); identity comparison is therefore structural
    equality for interned nodes.  ``node_id`` is unique per process and
    ``digest`` is the portable content key.  The two ``_lowered_*`` slots
    memoize the per-node closures of the lowering modules.
    """

    __slots__ = (
        "kind",
        "predicate",
        "args",
        "func",
        "children",
        "node_id",
        "digest",
        "_lowered_mask",
        "_lowered_eval",
    )

    def __init__(
        self,
        kind: str,
        node_id: int,
        digest: str,
        predicate: Optional[Predicate] = None,
        args: Tuple[str, ...] = (),
        func: Optional[OpaqueCallable] = None,
        children: Tuple["IRNode", ...] = (),
    ) -> None:
        self.kind = kind
        self.node_id = node_id
        self.digest = digest
        self.predicate = predicate
        self.args = args
        self.func = func
        self.children = children
        self._lowered_mask = None
        self._lowered_eval = None

    # ------------------------------------------------------------------
    def walk(self) -> Iterator["IRNode"]:
        """Yield every distinct node of the DAG rooted here, children first."""
        seen = set()

        def visit(node: "IRNode") -> Iterator["IRNode"]:
            if node.node_id in seen:
                return
            seen.add(node.node_id)
            for child in node.children:
                yield from visit(child)
            yield node

        yield from visit(self)

    def vocabulary(self) -> Tuple[str, ...]:
        """The sorted predicate names the DAG applies (``call`` nodes are opaque)."""
        return tuple(
            sorted(
                {
                    node.predicate.name
                    for node in self.walk()
                    if node.predicate is not None
                }
            )
        )

    def is_positive(self) -> bool:
        """True iff no negated atom (and no opaque node) occurs in the DAG."""
        return all(node.kind not in ("natom", "call") for node in self.walk())

    def __repr__(self) -> str:
        return f"IRNode({describe(self)})"


def describe(node: IRNode) -> str:
    """A compact human-readable rendering of an IR DAG (for tests/logs)."""
    if node.kind == "true":
        return "True"
    if node.kind == "false":
        return "False"
    if node.kind == "atom":
        return f"{node.predicate.name}({', '.join(node.args)})"
    if node.kind == "natom":
        return f"!{node.predicate.name}({', '.join(node.args)})"
    if node.kind == "call":
        return "<call>"
    joiner = " & " if node.kind == "and" else " | "
    return "(" + joiner.join(describe(child) for child in node.children) + ")"


@dataclass
class CompileStats:
    """Process-wide intern-table counters (benchmarks and tests read these)."""

    nodes_created: int = 0
    intern_hits: int = 0

    def snapshot(self) -> "CompileStats":
        return CompileStats(self.nodes_created, self.intern_hits)


#: The process-wide intern table: structural key -> node.
_INTERN: Dict[object, IRNode] = {}

#: Past this many interned nodes, construction stops interning (fresh ids,
#: no sharing) so an adversarial stream of ever-new formulas — a long-lived
#: ``serve`` session fed arbitrary model documents — cannot grow the table
#: without bound.  Uninterned nodes still evaluate correctly, just unshared.
INTERN_LIMIT = 1 << 16

#: Monotonic node-id source (interned and uninterned nodes alike).
_NEXT_ID = 0

#: Per-object fingerprint tokens for predicates outside the built-in
#: registry and for opaque callables.  Token numbers come from
#: ``_NEXT_TOKEN`` — monotonic and, like ``_NEXT_ID``, never reset — so two
#: distinct objects can never share a fingerprint (and hence a digest), even
#: across a :func:`clear_caches` or a table overflow.  That uniqueness is
#: also what makes the tables safe to size-cap: clearing one merely mints a
#: fresh token for a re-seen object (a cache miss, never a collision), so
#: streams of throwaway callables stay bounded.  Id-reuse is harmless: an
#: interned ``call``/``atom`` node holds its callable/predicate alive, so a
#: recycled ``id()`` can only appear once the old intern entry is gone too.
_PREDICATE_TOKENS: Dict[int, Tuple[Predicate, str]] = {}
_CALLABLE_TOKENS: Dict[int, Tuple[object, str]] = {}
_TOKEN_TABLE_LIMIT = 4096
_NEXT_TOKEN = 0

#: Built-in predicate singletons fingerprint by bare name, which is what
#: makes digests portable across processes and model re-registration.
_BUILTIN_PREDICATE_IDS: Dict[int, str] = {
    id(predicate): name for name, predicate in default_registry().items()
}

stats = CompileStats()


def clear_caches() -> None:
    """Reset the intern table and token tables (tests and cold benchmarks).

    Nodes created before the reset stay valid — they simply stop being
    shared with nodes created after it.  ``_NEXT_ID`` is deliberately NOT
    reset: node ids must stay unique process-wide, or a pre-clear compiled
    model could alias a post-clear one in per-execution node-mask caches.
    """
    _INTERN.clear()
    _PREDICATE_TOKENS.clear()
    _CALLABLE_TOKENS.clear()
    stats.nodes_created = 0
    stats.intern_hits = 0


def interned_node_count() -> int:
    return len(_INTERN)


# ----------------------------------------------------------------------
# fingerprints and digests
# ----------------------------------------------------------------------
def _predicate_fingerprint(predicate: Predicate) -> str:
    """A stable token for a predicate: its name for the built-in singletons,
    a per-object name#token for everything else (same-named user predicates
    with different semantics must not alias in digests)."""
    builtin = _BUILTIN_PREDICATE_IDS.get(id(predicate))
    if builtin is not None:
        return builtin
    global _NEXT_TOKEN
    key = id(predicate)
    entry = _PREDICATE_TOKENS.get(key)
    if entry is None or entry[0] is not predicate:
        entry = (predicate, f"{predicate.name}#{_NEXT_TOKEN}")
        _NEXT_TOKEN += 1
        if len(_PREDICATE_TOKENS) >= _TOKEN_TABLE_LIMIT:
            _PREDICATE_TOKENS.clear()
        _PREDICATE_TOKENS[key] = entry
    return entry[1]


def _callable_token(func: object) -> str:
    """A per-object token for an opaque callable (not portable, by design)."""
    global _NEXT_TOKEN
    key = id(func)
    entry = _CALLABLE_TOKENS.get(key)
    if entry is None or entry[0] is not func:
        entry = (func, f"call#{_NEXT_TOKEN}")
        _NEXT_TOKEN += 1
        if len(_CALLABLE_TOKENS) >= _TOKEN_TABLE_LIMIT:
            _CALLABLE_TOKENS.clear()
        _CALLABLE_TOKENS[key] = entry
    return entry[1]


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# interned constructors
# ----------------------------------------------------------------------
def _make(key: object, payload: str, **fields) -> IRNode:
    """Intern a node by structural key, constructing it on first sight."""
    global _NEXT_ID
    if key is not None:
        cached = _INTERN.get(key)
        if cached is not None:
            stats.intern_hits += 1
            return cached
    node = IRNode(node_id=_NEXT_ID, digest=_digest(payload), **fields)
    _NEXT_ID += 1
    stats.nodes_created += 1
    if key is not None and len(_INTERN) < INTERN_LIMIT:
        _INTERN[key] = node
    return node


def true_node() -> IRNode:
    return _make(("true",), "T", kind="true")


def false_node() -> IRNode:
    return _make(("false",), "F", kind="false")


def atom_node(predicate: Predicate, args: Sequence[str], negated: bool = False) -> IRNode:
    args = tuple(args)
    if predicate.arity != len(args):
        raise FormulaError(
            f"predicate {predicate.name} takes {predicate.arity} argument(s), got {len(args)}"
        )
    kind = "natom" if negated else "atom"
    fingerprint = _predicate_fingerprint(predicate)
    payload = f"{'N' if negated else 'A'}({fingerprint};{','.join(args)})"
    return _make(
        (kind, id(predicate), args),
        payload,
        kind=kind,
        predicate=predicate,
        args=args,
    )


def call_node(func: OpaqueCallable) -> IRNode:
    return _make(
        ("call", id(func)),
        f"C({_callable_token(func)})",
        kind="call",
        func=func,
    )


def _connective(kind: str, children: Sequence[IRNode]) -> IRNode:
    """Build an ``and``/``or`` node with on-the-fly simplification."""
    absorbing, neutral = ("false", "true") if kind == "and" else ("true", "false")
    flat: List[IRNode] = []
    seen_ids = set()
    literals = set()  # (negated?, predicate id, args) for complement detection
    for child in _flatten(kind, children):
        if child.kind == absorbing:
            return false_node() if kind == "and" else true_node()
        if child.kind == neutral or child.node_id in seen_ids:
            continue
        if child.kind in ("atom", "natom"):
            signature = (child.kind == "natom", id(child.predicate), child.args)
            complement = (not signature[0],) + signature[1:]
            if complement in literals:
                # P & !P is False; P | !P is True.
                return false_node() if kind == "and" else true_node()
            literals.add(signature)
        seen_ids.add(child.node_id)
        flat.append(child)
    if not flat:
        return true_node() if kind == "and" else false_node()
    if len(flat) == 1:
        return flat[0]
    # Canonical child order: sort by digest (commutativity), ids as a
    # deterministic tiebreak for uninterned digest collisions.
    flat.sort(key=lambda node: (node.digest, node.node_id))
    symbol = "&" if kind == "and" else "|"
    payload = f"{symbol}({','.join(node.digest for node in flat)})"
    key = (kind,) + tuple(node.node_id for node in flat)
    return _make(key, payload, kind=kind, children=tuple(flat))


def _flatten(kind: str, children: Sequence[IRNode]) -> Iterator[IRNode]:
    for child in children:
        if child.kind == kind:
            yield from child.children
        else:
            yield child


def and_node(children: Sequence[IRNode]) -> IRNode:
    return _connective("and", children)


def or_node(children: Sequence[IRNode]) -> IRNode:
    return _connective("or", children)


# ----------------------------------------------------------------------
# formula -> IR (NNF conversion)
# ----------------------------------------------------------------------
def from_formula(formula: Formula, registry: Dict[str, Predicate]) -> IRNode:
    """Normalize a formula into the IR, resolving predicates from ``registry``.

    Negation is pushed down to the atoms (NNF); unknown predicate names
    raise :class:`~repro.core.formula.FormulaError` exactly like the
    call-by-call interpreter; unknown :class:`Formula` subclasses become
    opaque ``call`` nodes evaluating the subclass's own ``evaluate``.
    """

    def build(node: Formula, negated: bool) -> IRNode:
        if isinstance(node, TrueFormula):
            return false_node() if negated else true_node()
        if isinstance(node, FalseFormula):
            return true_node() if negated else false_node()
        if isinstance(node, Atom):
            predicate = registry.get(node.predicate)
            if predicate is None:
                raise FormulaError(f"unknown predicate {node.predicate!r}")
            return atom_node(predicate, node.args, negated=negated)
        if isinstance(node, Not):
            return build(node.operand, not negated)
        if isinstance(node, And):
            children = [build(operand, negated) for operand in node.operands]
            return or_node(children) if negated else and_node(children)
        if isinstance(node, Or):
            children = [build(operand, negated) for operand in node.operands]
            return and_node(children) if negated else or_node(children)
        # A user Formula subclass: opaque, evaluated through its own method.
        return _opaque_formula_node(node, registry, negated)

    return build(formula, False)


def _opaque_formula_node(
    formula: Formula, registry: Dict[str, Predicate], negated: bool
) -> IRNode:
    if negated:
        def evaluate(execution: Execution, x: Event, y: Event) -> bool:
            return not formula.evaluate(execution, x, y, registry)
    else:
        def evaluate(execution: Execution, x: Event, y: Event) -> bool:
            return bool(formula.evaluate(execution, x, y, registry))

    return call_node(evaluate)
