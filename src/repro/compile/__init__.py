"""The unified model-compilation layer.

Every consumer of a :class:`~repro.core.model.MemoryModel`'s must-not-reorder
function — the explicit bitset kernel, the SAT encoder, the enumeration
oracle, the event-level relation builders — evaluates it through one
pipeline::

    Formula / callable
        -> ModelIR         (NNF, hash-consed across models, simplified)
        -> compile passes  (cross-model CSE, vocabulary, content digest)
        -> lowerings       (bitmask program | CNF assumptions | evaluator)

See :mod:`repro.compile.ir` for the IR and its invariants,
:mod:`repro.compile.compiler` for :func:`compile_model`, and the
``lower_*`` modules for the three lowerings.  ``docs/architecture.md``
shows where the layer sits in the whole stack.
"""

from repro.compile.compiler import (
    CompiledModel,
    clear_caches,
    compile_model,
    precompile_models,
)
from repro.compile.ir import IRNode, from_formula
from repro.compile.lower_cnf import (
    assumption_literals,
    assumptions_from_mask,
    forced_po_pairs,
)
from repro.compile.lower_eval import lower_eval
from repro.compile.lower_masks import lower_masks

__all__ = [
    "CompiledModel",
    "IRNode",
    "assumption_literals",
    "assumptions_from_mask",
    "clear_caches",
    "compile_model",
    "forced_po_pairs",
    "from_formula",
    "lower_eval",
    "lower_masks",
    "precompile_models",
]
