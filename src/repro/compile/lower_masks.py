"""Bitmask lowering: IR -> a program computing po-pair truth vectors.

This is the lowering the explicit kernel consumes.  The target machine is
an object shaped like :class:`~repro.checker.kernel.IndexedExecution`: it
exposes ``po_pairs`` (the same-thread program-order pairs in scan order),
``all_pairs_mask``, ``events``, ``execution``, an ``_atom_mask(predicate,
args)`` primitive returning a predicate application's truth vector over the
pairs, and a ``_node_masks`` dict memoizing per-node masks for the lifetime
of that execution.

Each IR node lowers once per process to a closure ``target -> int`` (cached
on the node itself); because nodes are interned across models, the
per-execution memo keyed by ``node_id`` means every distinct subformula of a
whole model space is evaluated once per execution, however many models
reference it — the cross-model CSE speed lever.

``call`` nodes tabulate their opaque callable over the po pairs, so even
Python-callable models get a (memoized) truth vector instead of repeated
per-pair calls.
"""

from __future__ import annotations

from typing import Callable

from repro.compile.ir import IRNode

#: The lowered form: a function of an IndexedExecution-shaped target.
MaskProgram = Callable[[object], int]


def lower_masks(node: IRNode) -> MaskProgram:
    """Return (building and caching once per node) the node's mask program."""
    program = node._lowered_mask
    if program is None:
        program = _build(node)
        node._lowered_mask = program
    return program


def _memoized(node_id: int, compute: MaskProgram) -> MaskProgram:
    def evaluate(target) -> int:
        masks = target._node_masks
        mask = masks.get(node_id)
        if mask is None:
            mask = compute(target)
            masks[node_id] = mask
        return mask

    return evaluate


def _build(node: IRNode) -> MaskProgram:
    kind = node.kind
    if kind == "true":
        return lambda target: target.all_pairs_mask
    if kind == "false":
        return lambda target: 0
    if kind == "atom":
        predicate, args = node.predicate, node.args
        return _memoized(node.node_id, lambda target: target._atom_mask(predicate, args))
    if kind == "natom":
        predicate, args = node.predicate, node.args
        return _memoized(
            node.node_id,
            lambda target: target.all_pairs_mask & ~target._atom_mask(predicate, args),
        )
    if kind == "call":
        func = node.func
        return _memoized(node.node_id, lambda target: _tabulate(target, func))
    operands = tuple(lower_masks(child) for child in node.children)
    if kind == "and":
        def conjunction(target) -> int:
            mask = target.all_pairs_mask
            for operand in operands:
                mask &= operand(target)
                if not mask:
                    break
            return mask

        return _memoized(node.node_id, conjunction)
    if kind == "or":
        def disjunction(target) -> int:
            mask = 0
            for operand in operands:
                mask |= operand(target)
                if mask == target.all_pairs_mask:
                    break
            return mask

        return _memoized(node.node_id, disjunction)
    raise AssertionError(f"unloweable IR node kind {kind!r}")


def _tabulate(target, func) -> int:
    """Tabulate an opaque callable over the target's same-thread po pairs."""
    execution = target.execution
    events = target.events
    mask = 0
    for position, (u, v) in enumerate(target.po_pairs):
        if func(execution, events[u], events[v]):
            mask |= 1 << position
    return mask
