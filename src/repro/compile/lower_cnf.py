"""CNF lowering: IR -> the model-dependent pieces of the SAT encoding.

The happens-before CNF splits into a model-independent skeleton (built once
per execution by :func:`repro.checker.encoder.encode_skeleton`) and a
model-dependent part that is nothing but the truth vector of the model's
must-not-reorder function over the same-thread program-order pairs.  This
module emits that part from a compiled model:

* :func:`forced_po_pairs` — the pairs a model forces in order, for the
  one-shot encoder's unit ``ord`` clauses;
* :func:`assumptions_from_mask` — a skeleton's per-pair selector literals
  from a po-pair bitmask (the same mask the explicit kernel computes, so an
  engine answering both backends derives SAT assumptions and kernel edges
  from one shared, IR-memoized truth vector);
* :func:`assumption_literals` — the standalone path: evaluate the compiled
  model pair by pair against a skeleton (no kernel index required).

Both encodings enumerate the same-thread pairs in the same scan order
(per thread, earlier before later), which is what lets a mask index line up
with ``Encoding.po_pairs``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Tuple

from repro.compile.lower_eval import lower_eval
from repro.core.events import Event
from repro.core.execution import Execution

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.checker.encoder import Encoding
    from repro.compile.compiler import CompiledModel


def forced_po_pairs(
    execution: Execution, compiled: "CompiledModel"
) -> Iterator[Tuple[Event, Event]]:
    """Yield the same-thread pairs the compiled model forces in order."""
    evaluator = lower_eval(compiled.root)
    for thread_events in execution.events_by_thread:
        for i, earlier in enumerate(thread_events):
            for later in thread_events[i + 1 :]:
                if evaluator(execution, earlier, later):
                    yield earlier, later


def assumptions_from_mask(encoding: "Encoding", mask: int) -> List[int]:
    """Instantiate a skeleton's selector assumptions from a po-pair bitmask.

    Bit ``p`` of ``mask`` corresponds to ``encoding.po_pairs[p]`` (both the
    encoder and :class:`~repro.checker.kernel.IndexedExecution` enumerate
    pairs in the same order).
    """
    literals: List[int] = []
    for position, (earlier, later) in enumerate(encoding.po_pairs):
        selector = encoding.po_selector_vars[(earlier.uid, later.uid)]
        literals.append(selector if (mask >> position) & 1 else -selector)
    return literals


def assumption_literals(encoding: "Encoding", compiled: "CompiledModel") -> List[int]:
    """Instantiate a skeleton's selector assumptions pair by pair."""
    execution = encoding.execution
    evaluator = lower_eval(compiled.root)
    literals: List[int] = []
    for earlier, later in encoding.po_pairs:
        selector = encoding.po_selector_vars[(earlier.uid, later.uid)]
        literals.append(
            selector if evaluator(execution, earlier, later) else -selector
        )
    return literals
