"""Plain-evaluator lowering: IR -> a per-pair ``F(execution, x, y)`` closure.

This is the lowering the enumeration oracle and the event-level relation
builders consume (:func:`repro.checker.relations.program_order_edges`, the
one-shot CNF encoder, witness reconstruction).  It deliberately shares
nothing with the bitmask lowering beyond the IR itself: no per-execution
memo, no pair indexing — one closure call per (execution, x, y) query,
dispatch resolved once at lowering time instead of per call as the old
``Formula.evaluate`` tree walk did.
"""

from __future__ import annotations

from typing import Callable

from repro.compile.ir import IRNode
from repro.core.events import Event
from repro.core.execution import Execution

#: The lowered form: the model's must-not-reorder function itself.
PairEvaluator = Callable[[Execution, Event, Event], bool]


def lower_eval(node: IRNode) -> PairEvaluator:
    """Return (building and caching once per node) the node's evaluator."""
    evaluator = node._lowered_eval
    if evaluator is None:
        evaluator = _build(node)
        node._lowered_eval = evaluator
    return evaluator


def _atom_evaluator(node: IRNode, negated: bool) -> PairEvaluator:
    predicate = node.predicate
    if predicate.arity == 1:
        on_x = node.args == ("x",)
        if negated:
            return lambda execution, x, y: not predicate.evaluate(
                execution, x if on_x else y
            )
        return lambda execution, x, y: predicate.evaluate(execution, x if on_x else y)
    first_x, second_x = node.args[0] == "x", node.args[1] == "x"
    if negated:
        return lambda execution, x, y: not predicate.evaluate(
            execution, x if first_x else y, x if second_x else y
        )
    return lambda execution, x, y: predicate.evaluate(
        execution, x if first_x else y, x if second_x else y
    )


def _build(node: IRNode) -> PairEvaluator:
    kind = node.kind
    if kind == "true":
        return lambda execution, x, y: True
    if kind == "false":
        return lambda execution, x, y: False
    if kind == "atom":
        return _atom_evaluator(node, negated=False)
    if kind == "natom":
        return _atom_evaluator(node, negated=True)
    if kind == "call":
        func = node.func
        return lambda execution, x, y: bool(func(execution, x, y))
    operands = tuple(lower_eval(child) for child in node.children)
    if kind == "and":
        return lambda execution, x, y: all(
            operand(execution, x, y) for operand in operands
        )
    if kind == "or":
        return lambda execution, x, y: any(
            operand(execution, x, y) for operand in operands
        )
    raise AssertionError(f"unloweable IR node kind {kind!r}")
