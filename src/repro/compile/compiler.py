"""Compiling memory models to the ModelIR.

:func:`compile_model` is the single entry point every consumer goes
through: it normalizes a model's must-not-reorder function (formula,
callable, or user formula subclass) into the hash-consed IR of
:mod:`repro.compile.ir`, wraps it in a :class:`CompiledModel` carrying the
compile-pass products — the content digest (the *semantic* cache key), the
extracted predicate vocabulary, and the eagerly built lowerings — and caches
the result per model object in a size-capped table, so streams of throwaway
models stay bounded.

Because IR nodes are interned process-wide, compiling the 90 models of the
parametric space builds each shared subformula exactly once; compiling a
structurally equal model a second time (re-registration, a serve client
resending a model document) is a pure intern-table walk that yields the same
root node and digest.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.compile import ir
from repro.compile.ir import IRNode, call_node, from_formula
from repro.compile.lower_eval import PairEvaluator, lower_eval
from repro.compile.lower_masks import MaskProgram, lower_masks
from repro.core.model import MemoryModel


class CompiledModel:
    """A memory model compiled to the ModelIR, plus its lowerings.

    Attributes:
        model: the source :class:`~repro.core.model.MemoryModel`.
        name: the model's name (display only — never a cache key).
        root: the IR root node.
        digest: the root's content digest.  Structurally equal formulas over
            built-in predicates share it across model objects and across
            processes; this is the key the engine layer caches under.
        kind: ``"formula"`` or ``"callable"``.
        vocabulary: the predicate names the IR applies, extracted from the
            DAG for formula models, taken from the model's declared
            predicate set for opaque callables.
    """

    __slots__ = (
        "model",
        "name",
        "root",
        "digest",
        "kind",
        "vocabulary",
        "mask_program",
        "evaluator",
        "_node_ids",
        "__weakref__",
    )

    def __init__(self, model: MemoryModel, root: IRNode, kind: str) -> None:
        self.model = model
        self.name = model.name
        self.root = root
        self.digest = root.digest
        self.kind = kind
        if kind == "formula" and root.kind != "call":
            self.vocabulary: Tuple[str, ...] = root.vocabulary()
        else:
            self.vocabulary = tuple(model.predicates.names())
        # The lowerings are built eagerly: compilation happens once per
        # process per model, while the lowered programs run on the hot
        # path of every check — a plain slot read there beats a property.
        #: the bitmask lowering (explicit kernel and SAT assumptions)
        self.mask_program: MaskProgram = lower_masks(root)
        #: the plain per-pair lowering (enumeration/reference path)
        self.evaluator: PairEvaluator = lower_eval(root)
        self._node_ids: Optional[FrozenSet[int]] = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def node_ids(self) -> FrozenSet[int]:
        """The ids of every distinct IR node in the DAG (CSE accounting)."""
        if self._node_ids is None:
            self._node_ids = frozenset(node.node_id for node in self.root.walk())
        return self._node_ids

    @property
    def num_nodes(self) -> int:
        """The DAG size — distinct nodes after hash-consing."""
        return len(self.node_ids)

    def __repr__(self) -> str:
        return (
            f"CompiledModel({self.name!r}, kind={self.kind!r}, "
            f"nodes={self.num_nodes}, digest={self.digest[:12]}...)"
        )


#: Per-model compile cache, keyed by ``id(model)``.  Entries hold the model
#: strongly (a ``CompiledModel`` references its model anyway, so weakref
#: eviction could never fire); instead the cache is size-capped and cleared
#: on overflow, so streams of throwaway models — a serve session fed inline
#: model documents — stay bounded.  Recompiling after a clear is cheap: the
#: IR intern table (itself capped) makes it a pure table walk.
_COMPILED: Dict[int, Tuple[MemoryModel, CompiledModel]] = {}
_COMPILED_LIMIT = 4096


def compile_model(model: MemoryModel) -> CompiledModel:
    """Compile ``model`` (memoized per model object).

    Engine-level compile/CSE statistics are counted by
    :meth:`repro.engine.engine.CheckEngine.compiled`, which wraps this —
    the engine's counters stay deterministic per engine while this cache
    stays process-global.
    """
    key = id(model)
    entry = _COMPILED.get(key)
    if entry is not None and entry[0] is model:
        return entry[1]
    formula = model.formula
    if formula is not None:
        root = from_formula(formula, model.registry)
        kind = "formula"
    else:
        root = call_node(model.must_not_reorder)
        kind = "callable"
    compiled = CompiledModel(model, root, kind)
    if len(_COMPILED) >= _COMPILED_LIMIT:
        _COMPILED.clear()
    _COMPILED[key] = (model, compiled)
    return compiled


def precompile_models(models: Iterable[MemoryModel]) -> int:
    """Compile every model eagerly (worker warm-up); returns the count."""
    count = 0
    for model in models:
        compile_model(model)
        count += 1
    return count


def clear_caches() -> None:
    """Reset the compile cache and the IR intern table (tests/benchmarks)."""
    _COMPILED.clear()
    ir.clear_caches()
