"""Pairwise comparison of memory models over a litmus-test suite.

By Theorem 1 (and the template construction of Section 3.4), two models of
the paper's class are equivalent iff they agree on every test of the template
suite; when they disagree, the tests allowed by one but not the other are the
*contrasting litmus tests* witnessing the difference.

The terminology follows the paper: a model is **stronger** when it allows
*fewer* executions (SC is the strongest model of the space), and **weaker**
when it allows more.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.litmus import LitmusTest
from repro.core.model import MemoryModel
from repro.engine.engine import CheckEngine

#: What the comparison entry points accept as an admissibility backend: a
#: ready-made engine to share, or a backend name (``"explicit"``,
#: ``"enumeration"``, ``"sat"``).  Raw checker objects are still accepted
#: for backwards compatibility but deprecated.
EngineSpec = Union[CheckEngine, str]

#: A verdict vector: one boolean (allowed?) per test, in suite order.
VerdictVector = Tuple[bool, ...]


class Relation(str, Enum):
    """How the first model relates to the second."""

    EQUIVALENT = "equivalent"
    STRONGER = "stronger"  # first allows strictly fewer executions
    WEAKER = "weaker"  # first allows strictly more executions
    INCOMPARABLE = "incomparable"

    def inverse(self) -> "Relation":
        if self is Relation.STRONGER:
            return Relation.WEAKER
        if self is Relation.WEAKER:
            return Relation.STRONGER
        return self


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of comparing two models over a test suite."""

    first: str
    second: str
    relation: Relation
    #: tests allowed by the first model but forbidden by the second
    only_first: Tuple[str, ...] = ()
    #: tests allowed by the second model but forbidden by the first
    only_second: Tuple[str, ...] = ()

    @property
    def equivalent(self) -> bool:
        return self.relation is Relation.EQUIVALENT

    def witnesses(self) -> Tuple[str, ...]:
        """Return every contrasting test name."""
        return tuple(self.only_first) + tuple(self.only_second)

    def describe(self) -> str:
        if self.relation is Relation.EQUIVALENT:
            return f"{self.first} and {self.second} are equivalent"
        if self.relation is Relation.STRONGER:
            detail = ", ".join(self.only_second) or "-"
            return f"{self.first} is stronger than {self.second} (witnesses: {detail})"
        if self.relation is Relation.WEAKER:
            detail = ", ".join(self.only_first) or "-"
            return f"{self.first} is weaker than {self.second} (witnesses: {detail})"
        return (
            f"{self.first} and {self.second} are incomparable "
            f"(only {self.first}: {', '.join(self.only_first)}; "
            f"only {self.second}: {', '.join(self.only_second)})"
        )

    def to_json(self) -> Dict[str, Any]:
        """Serialize to a schema-versioned JSON document."""
        from repro.api.serialize import comparison_result_to_json

        return comparison_result_to_json(self)

    @staticmethod
    def from_json(document: Dict[str, Any]) -> "ComparisonResult":
        """Rebuild from a document written by :meth:`to_json`."""
        from repro.api.serialize import comparison_result_from_json

        return comparison_result_from_json(document)


class ModelComparator:
    """Compares models over a fixed test suite, caching verdict vectors.

    All admissibility checks are routed through a
    :class:`~repro.engine.engine.CheckEngine`, so the per-test execution and
    candidate-space work is shared across every model this comparator (or
    anything else holding the same engine) ever sees.

    Args:
        tests: the litmus tests to compare over (typically a template suite).
        engine: the admissibility backend — a ready-made
            :class:`~repro.engine.engine.CheckEngine` to share, or a backend
            name (``"explicit"``, ``"enumeration"``, ``"sat"``).  The
            explicit backend by default.  Passing a raw checker object (the
            pre-engine calling convention) still works but emits a
            :class:`DeprecationWarning`, as does the old ``checker=``
            keyword.
    """

    def __init__(
        self,
        tests: Sequence[LitmusTest],
        engine: Optional[EngineSpec] = None,
        *,
        checker: Optional[object] = None,
    ) -> None:
        if checker is not None:
            if engine is not None:
                raise TypeError("pass either engine= or the deprecated checker=, not both")
            warnings.warn(
                "ModelComparator(checker=...) is deprecated; pass engine= "
                "(a CheckEngine or a backend name)",
                DeprecationWarning,
                stacklevel=2,
            )
            engine = checker  # type: ignore[assignment]
        if engine is not None and not isinstance(engine, (CheckEngine, str)):
            warnings.warn(
                "passing a raw checker object to ModelComparator is deprecated; "
                "pass a CheckEngine or a backend name",
                DeprecationWarning,
                stacklevel=2,
            )
        self.tests: List[LitmusTest] = list(tests)
        self.engine = CheckEngine.ensure(engine)
        self._vectors: Dict[str, VerdictVector] = {}
        self._checks_performed = 0

    # ------------------------------------------------------------------
    # verdict vectors
    # ------------------------------------------------------------------
    def verdict_vector(self, model: MemoryModel) -> VerdictVector:
        """Return (computing and caching) the model's verdict vector."""
        if model.name not in self._vectors:
            self._vectors[model.name] = self.engine.verdict_vector(model, self.tests)
            self._checks_performed += len(self.tests)
        return self._vectors[model.name]

    @property
    def checks_performed(self) -> int:
        """Number of individual admissibility checks executed so far."""
        return self._checks_performed

    def allowed_tests(self, model: MemoryModel) -> List[str]:
        """Return the names of the suite tests the model allows."""
        vector = self.verdict_vector(model)
        return [test.name for test, allowed in zip(self.tests, vector) if allowed]

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------
    def compare(self, first: MemoryModel, second: MemoryModel) -> ComparisonResult:
        """Compare two models over the suite."""
        first_vector = self.verdict_vector(first)
        second_vector = self.verdict_vector(second)

        only_first: List[str] = []
        only_second: List[str] = []
        for test, first_allowed, second_allowed in zip(self.tests, first_vector, second_vector):
            if first_allowed and not second_allowed:
                only_first.append(test.name)
            elif second_allowed and not first_allowed:
                only_second.append(test.name)

        if not only_first and not only_second:
            relation = Relation.EQUIVALENT
        elif not only_first:
            relation = Relation.STRONGER
        elif not only_second:
            relation = Relation.WEAKER
        else:
            relation = Relation.INCOMPARABLE
        return ComparisonResult(
            first.name, second.name, relation, tuple(only_first), tuple(only_second)
        )

    def distinguishing_tests(self, first: MemoryModel, second: MemoryModel) -> List[str]:
        """Return the names of every test on which the two models disagree."""
        result = self.compare(first, second)
        return sorted(result.witnesses())


def verdict_vector(
    model: MemoryModel,
    tests: Sequence[LitmusTest],
    engine: Optional[EngineSpec] = None,
    *,
    checker: Optional[object] = None,
) -> VerdictVector:
    """Convenience wrapper around :meth:`ModelComparator.verdict_vector`.

    ``checker=`` is the deprecated spelling of ``engine=``.
    """
    return ModelComparator(tests, engine, checker=checker).verdict_vector(model)


def compare_models(
    first: MemoryModel,
    second: MemoryModel,
    tests: Sequence[LitmusTest],
    engine: Optional[EngineSpec] = None,
    *,
    checker: Optional[object] = None,
) -> ComparisonResult:
    """Convenience wrapper around :meth:`ModelComparator.compare`.

    ``checker=`` is the deprecated spelling of ``engine=``.
    """
    return ModelComparator(tests, engine, checker=checker).compare(first, second)
