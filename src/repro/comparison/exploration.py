"""Exploration of a family of memory models (Section 4.2, Figure 4).

Given a list of models and a litmus-test suite, the exploration computes

* every model's verdict vector;
* the equivalence classes (models with identical vectors);
* the strictly-stronger relation between classes and its transitive
  reduction (the Hasse diagram drawn in Figure 4, with arrows pointing from
  weaker to stronger models);
* for every Hasse edge, the litmus tests that distinguish the two classes,
  preferring tests from a designated "preferred" list (the paper labels its
  edges with L1..L9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.comparison.compare import Relation, VerdictVector
from repro.core.litmus import LitmusTest
from repro.core.model import MemoryModel
from repro.engine.engine import CheckEngine, EngineStats
from repro.util.digraph import Digraph


@dataclass(frozen=True)
class HasseEdge:
    """One edge of the Hasse diagram, pointing from weaker to stronger."""

    weaker: str
    stronger: str
    #: names of distinguishing tests (allowed by the weaker class only)
    tests: Tuple[str, ...]
    #: the subset of ``tests`` drawn from the preferred list (if any)
    preferred_tests: Tuple[str, ...] = ()

    @property
    def label(self) -> str:
        chosen = self.preferred_tests or self.tests
        return ", ".join(chosen[:3])


@dataclass
class ExplorationResult:
    """The full result of exploring a model family."""

    models: List[MemoryModel]
    tests: List[LitmusTest]
    vectors: Dict[str, VerdictVector]
    #: equivalence classes as sorted tuples of model names, sorted by representative
    equivalence_classes: List[Tuple[str, ...]]
    #: Hasse edges between class representatives (weaker -> stronger)
    hasse_edges: List[HasseEdge]
    #: number of admissibility checks performed
    checks_performed: int = 0
    #: engine counters for this exploration (executions evaluated, cache
    #: hits, SAT calls, learned clauses reused, ...)
    stats: Optional[EngineStats] = None

    # ------------------------------------------------------------------
    def class_of(self, model_name: str) -> Tuple[str, ...]:
        """Return the equivalence class containing ``model_name``."""
        for cls in self.equivalence_classes:
            if model_name in cls:
                return cls
        raise KeyError(f"unknown model {model_name!r}")

    def representative(self, model_name: str) -> str:
        """Return the canonical representative of the model's class."""
        return self.class_of(model_name)[0]

    def equivalent_pairs(self) -> List[Tuple[str, str]]:
        """Return every unordered pair of distinct-but-equivalent models."""
        pairs: List[Tuple[str, str]] = []
        for cls in self.equivalence_classes:
            for i, first in enumerate(cls):
                for second in cls[i + 1 :]:
                    pairs.append((first, second))
        return pairs

    def num_equivalent_pairs(self) -> int:
        return len(self.equivalent_pairs())

    def stronger_graph(self) -> Digraph:
        """Return the full (transitively closed) weaker -> stronger digraph."""
        graph = Digraph(cls[0] for cls in self.equivalence_classes)
        representatives = [cls[0] for cls in self.equivalence_classes]
        for weaker in representatives:
            for stronger in representatives:
                if weaker == stronger:
                    continue
                if self._is_strictly_stronger(stronger, weaker):
                    graph.add_edge(weaker, stronger)
        return graph

    def _is_strictly_stronger(self, first: str, second: str) -> bool:
        """True iff model ``first`` allows a strict subset of ``second``'s tests."""
        first_vector = self.vectors[first]
        second_vector = self.vectors[second]
        subset = all(not a or b for a, b in zip(first_vector, second_vector))
        return subset and first_vector != second_vector

    def strongest_models(self) -> List[str]:
        """Return the representatives no other class is stronger than."""
        graph = self.stronger_graph()
        return [node for node in graph.nodes() if not graph.successors(node)]

    def weakest_models(self) -> List[str]:
        """Return the representatives no other class is weaker than."""
        graph = self.stronger_graph()
        return [node for node in graph.nodes() if not graph.predecessors(node)]

    def distinguishing_tests(self, first: str, second: str) -> List[str]:
        """Names of the suite tests on which two models disagree."""
        names: List[str] = []
        for test, a, b in zip(self.tests, self.vectors[first], self.vectors[second]):
            if a != b:
                names.append(test.name)
        return names

    def relation(self, first: str, second: str) -> Relation:
        """Return the relation between two explored models."""
        if self.vectors[first] == self.vectors[second]:
            return Relation.EQUIVALENT
        if self._is_strictly_stronger(first, second):
            return Relation.STRONGER
        if self._is_strictly_stronger(second, first):
            return Relation.WEAKER
        return Relation.INCOMPARABLE

    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        """Serialize to a schema-versioned JSON document.

        The document embeds the full model formulas and test programs, so
        :meth:`from_json` rebuilds a structurally equal result (``==``).
        """
        from repro.api.serialize import exploration_result_to_json

        return exploration_result_to_json(self)

    @staticmethod
    def from_json(document: Dict[str, object]) -> "ExplorationResult":
        """Rebuild from a document written by :meth:`to_json`."""
        from repro.api.serialize import exploration_result_from_json

        return exploration_result_from_json(document)


def explore_models(
    models: Sequence[MemoryModel],
    tests: Sequence[LitmusTest],
    checker: Optional[object] = None,
    preferred_tests: Sequence[LitmusTest] = (),
    jobs: int = 1,
) -> ExplorationResult:
    """Explore a family of models over a test suite.

    The whole verdict matrix is computed in one batch by a
    :class:`~repro.engine.engine.CheckEngine`, which evaluates each test's
    execution exactly once and shares its candidate spaces (or its
    incremental SAT solver) across every model of the family.

    Args:
        models: the family to explore (e.g. the 36- or 90-model space).
        tests: the comparison suite (e.g. the template suite).
        checker: admissibility backend — a backend name, a legacy checker
            object, or a shared :class:`~repro.engine.engine.CheckEngine`;
            explicit enumeration by default.
        preferred_tests: tests whose names should be preferred when labelling
            Hasse edges (the paper uses L1..L9).  They are appended to the
            comparison suite if not already present.
        jobs: fan the per-test work out over this many worker processes
            (ignored when ``checker`` is already an engine).
    """
    suite: List[LitmusTest] = list(tests)
    existing_names = {test.name for test in suite}
    for test in preferred_tests:
        if test.name not in existing_names:
            suite.append(test)
            existing_names.add(test.name)
    preferred_names = [test.name for test in preferred_tests]

    engine = CheckEngine.ensure(checker, jobs=jobs)
    before = engine.stats.snapshot()
    vectors: Dict[str, VerdictVector] = engine.verdict_matrix(models, suite)
    stats = engine.stats.since(before)

    # Equivalence classes: group models by verdict vector.
    by_vector: Dict[VerdictVector, List[str]] = {}
    for model in models:
        by_vector.setdefault(vectors[model.name], []).append(model.name)
    equivalence_classes = sorted(
        (tuple(sorted(names)) for names in by_vector.values()), key=lambda cls: cls[0]
    )

    result = ExplorationResult(
        models=list(models),
        tests=suite,
        vectors=vectors,
        equivalence_classes=equivalence_classes,
        hasse_edges=[],
        checks_performed=stats.checks_performed,
        stats=stats,
    )

    # Hasse diagram: transitive reduction of the weaker -> stronger order.
    reduction = result.stronger_graph().transitive_reduction()
    edges: List[HasseEdge] = []
    for weaker, stronger in reduction.edges():
        distinguishing = [
            test.name
            for test, weak_allowed, strong_allowed in zip(
                suite, vectors[weaker], vectors[stronger]
            )
            if weak_allowed and not strong_allowed
        ]
        preferred = tuple(name for name in preferred_names if name in distinguishing)
        edges.append(HasseEdge(weaker, stronger, tuple(distinguishing), preferred))
    edges.sort(key=lambda edge: (edge.weaker, edge.stronger))
    result.hasse_edges = edges
    return result
