"""Comparing memory models and exploring model spaces.

* :mod:`repro.comparison.compare` — verdict vectors over a test suite and
  pairwise comparison of two models (equivalent / stronger / weaker /
  incomparable, with witness tests);
* :mod:`repro.comparison.exploration` — exhaustive exploration of a model
  family: equivalence classes, the weaker-to-stronger order, and the Hasse
  diagram with distinguishing-test labels (Figure 4);
* :mod:`repro.comparison.minimal_tests` — greedy computation of a minimal
  set of tests distinguishing every non-equivalent pair (the paper's nine
  tests);
* :mod:`repro.comparison.report` — text and Graphviz renderings of
  exploration results.
"""

from repro.comparison.compare import (
    ComparisonResult,
    ModelComparator,
    Relation,
    compare_models,
    verdict_vector,
)
from repro.comparison.exploration import ExplorationResult, explore_models
from repro.comparison.minimal_tests import find_minimal_distinguishing_set, verify_distinguishing_set
from repro.comparison.report import exploration_report, hasse_dot

__all__ = [
    "Relation",
    "ComparisonResult",
    "ModelComparator",
    "compare_models",
    "verdict_vector",
    "ExplorationResult",
    "explore_models",
    "find_minimal_distinguishing_set",
    "verify_distinguishing_set",
    "exploration_report",
    "hasse_dot",
]
