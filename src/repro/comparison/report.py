"""Human-readable and Graphviz renderings of exploration results."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.comparison.exploration import ExplorationResult


def exploration_report(
    result: ExplorationResult, known_names: Optional[Dict[str, str]] = None
) -> str:
    """Render an exploration result as a text report (Figure 4 in prose).

    ``known_names`` optionally maps model names to well-known names (e.g.
    ``{"M4444": "SC"}``) which are then shown next to the class members.
    """
    known_names = known_names or {}

    def annotate(name: str) -> str:
        return f"{name} ({known_names[name]})" if name in known_names else name

    lines: List[str] = []
    lines.append(
        f"Explored {len(result.models)} models with {len(result.tests)} litmus tests "
        f"({result.checks_performed} admissibility checks)."
    )
    if result.stats is not None:
        lines.append(f"Engine: {result.stats.describe()}.")
    lines.append(
        f"Equivalence classes: {len(result.equivalence_classes)}; "
        f"equivalent pairs: {result.num_equivalent_pairs()}."
    )
    lines.append("")
    lines.append("Equivalence classes (members):")
    for cls in result.equivalence_classes:
        members = ", ".join(annotate(name) for name in cls)
        lines.append(f"  {{{members}}}")
    lines.append("")
    lines.append("Hasse diagram (weaker -> stronger, with distinguishing tests):")
    for edge in result.hasse_edges:
        label = edge.label or "-"
        lines.append(f"  {annotate(edge.weaker)} -> {annotate(edge.stronger)}   [{label}]")
    lines.append("")
    lines.append(f"Weakest models: {', '.join(annotate(n) for n in result.weakest_models())}")
    lines.append(f"Strongest models: {', '.join(annotate(n) for n in result.strongest_models())}")
    return "\n".join(lines)


def hasse_dot(
    result: ExplorationResult,
    known_names: Optional[Dict[str, str]] = None,
    graph_name: str = "model_space",
) -> str:
    """Render the Hasse diagram in Graphviz DOT format (Figure 4)."""
    known_names = known_names or {}
    lines = [f"digraph {graph_name} {{", "  rankdir=BT;", "  node [shape=box];"]
    for cls in result.equivalence_classes:
        representative = cls[0]
        label_parts = []
        for name in cls:
            if name in known_names:
                label_parts.append(f"{name}\\n{known_names[name]}")
            else:
                label_parts.append(name)
        label = "\\n".join(label_parts)
        lines.append(f'  "{representative}" [label="{label}"];')
    for edge in result.hasse_edges:
        label = edge.label
        lines.append(f'  "{edge.weaker}" -> "{edge.stronger}" [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def verdict_table(
    result: ExplorationResult, test_names: Optional[Sequence[str]] = None
) -> str:
    """Render a models x tests verdict table (``A`` allowed, ``.`` forbidden)."""
    names = list(test_names) if test_names is not None else [t.name for t in result.tests]
    name_to_index = {test.name: index for index, test in enumerate(result.tests)}
    missing = [name for name in names if name not in name_to_index]
    if missing:
        raise KeyError(f"tests not part of the exploration: {missing}")
    width = max(len(model.name) for model in result.models)
    header = " " * (width + 2) + " ".join(f"{name:>4s}" for name in names)
    lines = [header]
    for model in result.models:
        vector = result.vectors[model.name]
        cells = " ".join(
            f"{'A' if vector[name_to_index[name]] else '.':>4s}" for name in names
        )
        lines.append(f"{model.name:<{width}s}  {cells}")
    return "\n".join(lines)
