"""Minimal distinguishing test sets.

Section 4.2 reports that nine litmus tests (L1..L9) suffice to distinguish
every pair of non-equivalent models in the explored space.  This module
computes such sets from scratch (greedy weighted set cover over the pairs of
non-equivalent models) and verifies candidate sets such as the paper's nine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.comparison.compare import ModelComparator
from repro.core.litmus import LitmusTest
from repro.core.model import MemoryModel
from repro.engine.engine import CheckEngine

#: An unordered pair of model names.
ModelPair = Tuple[str, str]


@dataclass(frozen=True)
class DistinguishingSetResult:
    """A set of tests together with the pairs each test distinguishes."""

    test_names: Tuple[str, ...]
    covered_pairs: int
    total_pairs: int
    uncovered: Tuple[ModelPair, ...] = ()

    @property
    def complete(self) -> bool:
        return not self.uncovered


def _distinguishable_pairs(
    models: Sequence[MemoryModel], comparator: ModelComparator
) -> Tuple[List[ModelPair], Dict[str, Set[ModelPair]]]:
    """Return the non-equivalent pairs and, per test, the pairs it separates."""
    vectors = {model.name: comparator.verdict_vector(model) for model in models}
    pairs: List[ModelPair] = []
    per_test: Dict[str, Set[ModelPair]] = {test.name: set() for test in comparator.tests}
    names = [model.name for model in models]
    for i, first in enumerate(names):
        for second in names[i + 1 :]:
            if vectors[first] == vectors[second]:
                continue
            pair = (first, second)
            pairs.append(pair)
            for test, a, b in zip(comparator.tests, vectors[first], vectors[second]):
                if a != b:
                    per_test[test.name].add(pair)
    return pairs, per_test


def find_minimal_distinguishing_set(
    models: Sequence[MemoryModel],
    tests: Sequence[LitmusTest],
    checker: Optional[object] = None,
    seed_tests: Sequence[LitmusTest] = (),
) -> DistinguishingSetResult:
    """Greedily select tests until every non-equivalent pair is distinguished.

    ``seed_tests`` are added to the candidate pool (useful for asking "how far
    do the paper's nine tests go, and what else is needed?").  Greedy set
    cover is within a logarithmic factor of optimal, which in this problem's
    tiny instances routinely finds the true minimum.
    """
    pool: List[LitmusTest] = list(tests)
    names = {test.name for test in pool}
    for test in seed_tests:
        if test.name not in names:
            pool.append(test)
            names.add(test.name)
    comparator = ModelComparator(pool, CheckEngine.ensure(checker))
    pairs, per_test = _distinguishable_pairs(models, comparator)

    uncovered: Set[ModelPair] = set(pairs)
    selected: List[str] = []
    while uncovered:
        best_name = max(per_test, key=lambda name: (len(per_test[name] & uncovered), -len(selected)))
        gain = per_test[best_name] & uncovered
        if not gain:
            break  # remaining pairs cannot be covered by the pool
        selected.append(best_name)
        uncovered -= gain
    return DistinguishingSetResult(
        test_names=tuple(selected),
        covered_pairs=len(pairs) - len(uncovered),
        total_pairs=len(pairs),
        uncovered=tuple(sorted(uncovered)),
    )


def verify_distinguishing_set(
    models: Sequence[MemoryModel],
    candidate_tests: Sequence[LitmusTest],
    reference_tests: Sequence[LitmusTest],
    checker: Optional[object] = None,
) -> DistinguishingSetResult:
    """Check whether ``candidate_tests`` distinguish every non-equivalent pair.

    Non-equivalence is judged with respect to ``reference_tests`` (typically
    the full template suite): two models that the reference suite separates
    must also be separated by some candidate test for the candidate set to be
    complete.
    """
    engine = CheckEngine.ensure(checker)
    reference = ModelComparator(list(reference_tests), engine)
    reference_vectors = {model.name: reference.verdict_vector(model) for model in models}

    # Sharing the engine lets the candidate comparator reuse the contexts of
    # every candidate test that also appears in the reference suite.
    candidates = ModelComparator(list(candidate_tests), engine)
    candidate_vectors = {model.name: candidates.verdict_vector(model) for model in models}

    names = [model.name for model in models]
    total = 0
    uncovered: List[ModelPair] = []
    for i, first in enumerate(names):
        for second in names[i + 1 :]:
            if reference_vectors[first] == reference_vectors[second]:
                continue
            total += 1
            if candidate_vectors[first] == candidate_vectors[second]:
                uncovered.append((first, second))
    return DistinguishingSetResult(
        test_names=tuple(test.name for test in candidate_tests),
        covered_pairs=total - len(uncovered),
        total_pairs=total,
        uncovered=tuple(uncovered),
    )
