/* Word-array native checking kernel.
 *
 * C fast path for the explicit checker's hot loop, mirroring the
 * pure-Python word-array reference (repro/native/wordsearch.py and
 * repro/native/flatprog.py) instruction for instruction:
 *
 *   Problem        -- one execution's flattened search problem, built from
 *                     repro.native.problem.KernelProblem: the decision
 *                     plan, coherence orders, read-from candidates and
 *                     program order as contiguous int32/uint64 buffers.
 *   Problem.search -- the decide/propagate/undo backtracking search with
 *                     incremental word-array reachability, O(words) undo
 *                     via a (word-offset, old-word) trail, and cycle /
 *                     anti-program-order pruning.  Returns the first
 *                     witness found (rf sources + chosen coherence order
 *                     index per slot) or None -- iteration order matches
 *                     the Python kernels exactly, so witnesses are
 *                     bit-identical across backends.
 *   Problem.eval_program -- evaluates a flattened ModelIR mask program
 *                     (repro.native.flatprog encoding) over the po-pair
 *                     word universe, atoms supplied as precomputed
 *                     little-endian word buffers.
 *   bench_reach    -- reachability add/undo micro-benchmark hook.
 *
 * Bitsets are little-endian arrays of 64-bit words: bit i lives in word
 * i >> 6 at position i & 63, byte-identical to int.to_bytes(.., "little").
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <string.h>

#define OP_TRUE 0
#define OP_FALSE 1
#define OP_ATOM 2
#define OP_NATOM 3
#define OP_AND 4
#define OP_OR 5

#define RF_INITIAL (-1)

typedef struct {
    PyObject_HEAD
    int n;            /* events */
    int nw;           /* words per event bitset */
    int num_pairs;    /* same-thread po pairs */
    int pw;           /* words per pair mask */
    int nloads;
    int nplan;
    int nslots;       /* coherence slots (locations with stores) */
    int8_t *plan_kind;   /* nplan: 0 = co, 1 = rf */
    int32_t *plan_arg;   /* nplan: co slot | load position */
    int32_t *co_count;   /* nslots: orders per slot */
    int32_t *co_len;     /* nslots: stores per order */
    int64_t *co_off;     /* nslots: offset into co_flat */
    int32_t *co_flat;
    int64_t co_flat_len;
    int32_t *loads;      /* nloads: event index per load position */
    int32_t *load_slot;  /* nloads: coherence slot (-1 when storeless) */
    int32_t *rf_off;     /* nloads + 1 */
    int32_t *rf_flat;
    int32_t *thread_of;  /* n */
    uint64_t *po_before; /* n * nw */
    /* reusable search state */
    uint64_t *reach;     /* n * nw */
    int64_t *trail_off;
    uint64_t *trail_old;
    int64_t trail_cap;
    int64_t trail_len;
    int32_t *rf_choice;  /* nloads */
    int32_t *co_choice;  /* nslots: chosen order index */
    int32_t *co_position;/* n: store position in its chosen order */
} ProblemObject;

/* ------------------------------------------------------------------ */
/* construction                                                        */
/* ------------------------------------------------------------------ */

static void *
copy_bytes(PyObject *obj, Py_ssize_t expected, const char *what)
{
    char *data;
    Py_ssize_t size;
    void *copy;
    if (PyBytes_AsStringAndSize(obj, &data, &size) < 0)
        return NULL;
    if (size != expected) {
        PyErr_Format(PyExc_ValueError, "%s: expected %zd bytes, got %zd",
                     what, expected, size);
        return NULL;
    }
    copy = PyMem_Malloc(expected ? (size_t)expected : 1);
    if (copy == NULL)
        return PyErr_NoMemory();
    memcpy(copy, data, (size_t)expected);
    return copy;
}

static void
Problem_dealloc(ProblemObject *self)
{
    PyMem_Free(self->plan_kind);
    PyMem_Free(self->plan_arg);
    PyMem_Free(self->co_count);
    PyMem_Free(self->co_len);
    PyMem_Free(self->co_off);
    PyMem_Free(self->co_flat);
    PyMem_Free(self->loads);
    PyMem_Free(self->load_slot);
    PyMem_Free(self->rf_off);
    PyMem_Free(self->rf_flat);
    PyMem_Free(self->thread_of);
    PyMem_Free(self->po_before);
    PyMem_Free(self->reach);
    PyMem_RawFree(self->trail_off);
    PyMem_RawFree(self->trail_old);
    PyMem_Free(self->rf_choice);
    PyMem_Free(self->co_choice);
    PyMem_Free(self->co_position);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
Problem_init(ProblemObject *self, PyObject *args, PyObject *kwds)
{
    int n, num_pairs, nloads, nplan, nslots;
    PyObject *plan_kind_b, *plan_arg_b, *co_count_b, *co_len_b, *co_off_b;
    PyObject *co_flat_b, *loads_b, *load_slot_b, *rf_off_b, *rf_flat_b;
    PyObject *thread_of_b, *po_before_b;
    int i;

    if (kwds != NULL && PyDict_Size(kwds) != 0) {
        PyErr_SetString(PyExc_TypeError, "Problem takes no keyword arguments");
        return -1;
    }
    if (!PyArg_ParseTuple(args, "iiiiiSSSSSSSSSSSS", &n, &num_pairs, &nloads,
                          &nplan, &nslots, &plan_kind_b, &plan_arg_b,
                          &co_count_b, &co_len_b, &co_off_b, &co_flat_b,
                          &loads_b, &load_slot_b, &rf_off_b, &rf_flat_b,
                          &thread_of_b, &po_before_b))
        return -1;
    if (n < 0 || num_pairs < 0 || nloads < 0 || nplan < 0 || nslots < 0) {
        PyErr_SetString(PyExc_ValueError, "Problem: negative dimension");
        return -1;
    }
    self->n = n;
    self->nw = n > 0 ? (n + 63) >> 6 : 1;
    self->num_pairs = num_pairs;
    self->pw = num_pairs > 0 ? (num_pairs + 63) >> 6 : 1;
    self->nloads = nloads;
    self->nplan = nplan;
    self->nslots = nslots;

    self->co_flat_len = (int64_t)PyBytes_GET_SIZE(co_flat_b) / 4;

    self->plan_kind = copy_bytes(plan_kind_b, nplan, "plan_kind");
    if (!self->plan_kind) return -1;
    self->plan_arg = copy_bytes(plan_arg_b, (Py_ssize_t)nplan * 4, "plan_arg");
    if (!self->plan_arg) return -1;
    self->co_count = copy_bytes(co_count_b, (Py_ssize_t)nslots * 4, "co_count");
    if (!self->co_count) return -1;
    self->co_len = copy_bytes(co_len_b, (Py_ssize_t)nslots * 4, "co_len");
    if (!self->co_len) return -1;
    self->co_off = copy_bytes(co_off_b, (Py_ssize_t)nslots * 8, "co_off");
    if (!self->co_off) return -1;
    self->co_flat = copy_bytes(co_flat_b, (Py_ssize_t)self->co_flat_len * 4,
                               "co_flat");
    if (!self->co_flat) return -1;
    self->loads = copy_bytes(loads_b, (Py_ssize_t)nloads * 4, "loads");
    if (!self->loads) return -1;
    self->load_slot = copy_bytes(load_slot_b, (Py_ssize_t)nloads * 4,
                                 "load_slot");
    if (!self->load_slot) return -1;
    self->rf_off = copy_bytes(rf_off_b, (Py_ssize_t)(nloads + 1) * 4, "rf_off");
    if (!self->rf_off) return -1;
    self->rf_flat = copy_bytes(rf_flat_b,
                               (Py_ssize_t)self->rf_off[nloads] * 4, "rf_flat");
    if (!self->rf_flat) return -1;
    self->thread_of = copy_bytes(thread_of_b, (Py_ssize_t)n * 4, "thread_of");
    if (!self->thread_of) return -1;
    self->po_before = copy_bytes(po_before_b,
                                 (Py_ssize_t)n * self->nw * 8, "po_before");
    if (!self->po_before) return -1;

    /* Validate every index the search will dereference: a bad buffer must
     * raise here, not corrupt memory later. */
    for (i = 0; i < nplan; i++) {
        int kind = self->plan_kind[i], arg = self->plan_arg[i];
        if (kind == 0 ? (arg < 0 || arg >= nslots)
                      : (kind != 1 || arg < 0 || arg >= nloads)) {
            PyErr_SetString(PyExc_ValueError, "Problem: bad plan step");
            return -1;
        }
    }
    for (i = 0; i < nslots; i++) {
        int64_t need = (int64_t)self->co_count[i] * self->co_len[i];
        int64_t j;
        if (self->co_count[i] < 0 || self->co_len[i] < 0 ||
            self->co_off[i] < 0 || self->co_off[i] + need > self->co_flat_len) {
            PyErr_SetString(PyExc_ValueError, "Problem: bad coherence table");
            return -1;
        }
        for (j = 0; j < need; j++) {
            int32_t store = self->co_flat[self->co_off[i] + j];
            if (store < 0 || store >= n) {
                PyErr_SetString(PyExc_ValueError, "Problem: bad store index");
                return -1;
            }
        }
    }
    for (i = 0; i < nloads; i++) {
        int j;
        if (self->loads[i] < 0 || self->loads[i] >= n ||
            self->load_slot[i] < -1 || self->load_slot[i] >= nslots ||
            self->rf_off[i] < 0 || self->rf_off[i] > self->rf_off[i + 1]) {
            PyErr_SetString(PyExc_ValueError, "Problem: bad load table");
            return -1;
        }
        for (j = self->rf_off[i]; j < self->rf_off[i + 1]; j++) {
            if (self->rf_flat[j] < RF_INITIAL || self->rf_flat[j] >= n) {
                PyErr_SetString(PyExc_ValueError, "Problem: bad rf candidate");
                return -1;
            }
        }
    }

    self->reach = PyMem_Malloc((size_t)n * self->nw * 8 + 8);
    self->rf_choice = PyMem_Malloc((size_t)(nloads ? nloads : 1) * 4);
    self->co_choice = PyMem_Malloc((size_t)(nslots ? nslots : 1) * 4);
    self->co_position = PyMem_Malloc((size_t)(n ? n : 1) * 4);
    self->trail_cap = 256;
    self->trail_len = 0;
    self->trail_off = PyMem_RawMalloc((size_t)self->trail_cap * 8);
    self->trail_old = PyMem_RawMalloc((size_t)self->trail_cap * 8);
    if (!self->reach || !self->rf_choice || !self->co_choice ||
        !self->co_position || !self->trail_off || !self->trail_old) {
        PyErr_NoMemory();
        return -1;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* incremental word-array reachability                                 */
/* ------------------------------------------------------------------ */

static int
trail_push(ProblemObject *p, int64_t offset, uint64_t old)
{
    if (p->trail_len == p->trail_cap) {
        int64_t cap = p->trail_cap * 2;
        int64_t *noff = PyMem_RawRealloc(p->trail_off, (size_t)cap * 8);
        uint64_t *nold;
        if (noff == NULL)
            return 0;
        p->trail_off = noff;
        nold = PyMem_RawRealloc(p->trail_old, (size_t)cap * 8);
        if (nold == NULL)
            return 0;
        p->trail_old = nold;
        p->trail_cap = cap;
    }
    p->trail_off[p->trail_len] = offset;
    p->trail_old[p->trail_len] = old;
    p->trail_len++;
    return 1;
}

static void
undo_to(ProblemObject *p, int64_t mark)
{
    while (p->trail_len > mark) {
        p->trail_len--;
        p->reach[p->trail_off[p->trail_len]] = p->trail_old[p->trail_len];
    }
}

/* Insert u -> v; 0 on a cycle (nothing changed), -1 on allocation failure. */
static int
add_edge(ProblemObject *p, int u, int v)
{
    const int nw = p->nw;
    uint64_t *reach = p->reach;
    uint64_t *row_v = reach + (size_t)v * nw;
    int uw = u >> 6, vw = v >> 6;
    uint64_t ubit = (uint64_t)1 << (u & 63), vbit = (uint64_t)1 << (v & 63);
    int w, k;

    if (u == v || (row_v[uw] & ubit))
        return 0;
    for (w = 0; w < p->n; w++) {
        uint64_t *row = reach + (size_t)w * nw;
        if (w != u && !(row[uw] & ubit))
            continue;
        for (k = 0; k < nw; k++) {
            uint64_t gain = row_v[k];
            uint64_t old, merged;
            if (k == vw)
                gain |= vbit;
            old = row[k];
            merged = old | gain;
            if (merged != old) {
                if (!trail_push(p, (int64_t)((size_t)w * nw + k), old))
                    return -1;
                row[k] = merged;
            }
        }
    }
    return 1;
}

/* ------------------------------------------------------------------ */
/* the backtracking search                                             */
/* ------------------------------------------------------------------ */

/* 1 = witness found, 0 = subtree exhausted, -1 = allocation failure */
static int
do_search(ProblemObject *p, int depth)
{
    int kind, arg;
    if (depth == p->nplan)
        return 1;
    kind = p->plan_kind[depth];
    arg = p->plan_arg[depth];
    if (kind == 0) { /* coherence order for slot arg */
        int count = p->co_count[arg], len = p->co_len[arg];
        const int32_t *base = p->co_flat + p->co_off[arg];
        int oi;
        for (oi = 0; oi < count; oi++) {
            const int32_t *order = base + (int64_t)oi * len;
            int64_t mark = p->trail_len;
            int ok = 1, i, inserted;
            for (i = 0; i + 1 < len; i++) {
                inserted = add_edge(p, order[i], order[i + 1]);
                if (inserted != 1) {
                    if (inserted < 0)
                        return -1;
                    ok = 0;
                    break;
                }
            }
            if (ok) {
                int descended;
                p->co_choice[arg] = oi;
                for (i = 0; i < len; i++)
                    p->co_position[order[i]] = i;
                descended = do_search(p, depth + 1);
                if (descended != 0)
                    return descended;
            }
            undo_to(p, mark);
        }
        return 0;
    } else { /* read-from source for load position arg */
        int load = p->loads[arg];
        int slot = p->load_slot[arg];
        int len = p->co_len[slot];
        const int32_t *order =
            p->co_flat + p->co_off[slot] + (int64_t)p->co_choice[slot] * len;
        const uint64_t *po_row = p->po_before + (size_t)load * p->nw;
        int c;
        for (c = p->rf_off[arg]; c < p->rf_off[arg + 1]; c++) {
            int source = p->rf_flat[c];
            int64_t mark = p->trail_len;
            int ok = 1, inserted;
            if (source != RF_INITIAL &&
                p->thread_of[source] != p->thread_of[load]) {
                inserted = add_edge(p, source, load); /* external rf edge */
                if (inserted < 0)
                    return -1;
                ok = inserted;
            }
            if (ok) {
                /* from-read edges: the load precedes every store not
                 * coherence-before its source */
                int start =
                    source == RF_INITIAL ? 0 : p->co_position[source] + 1;
                int i;
                for (i = start; i < len; i++) {
                    int other = order[i];
                    if (other == source)
                        continue;
                    if ((po_row[other >> 6] >> (other & 63)) & 1) {
                        ok = 0; /* anti-program-order edge */
                        break;
                    }
                    inserted = add_edge(p, load, other);
                    if (inserted != 1) {
                        if (inserted < 0)
                            return -1;
                        ok = 0;
                        break;
                    }
                }
            }
            if (ok) {
                int descended;
                p->rf_choice[arg] = source;
                descended = do_search(p, depth + 1);
                if (descended != 0)
                    return descended;
            }
            undo_to(p, mark);
        }
        return 0;
    }
}

static PyObject *
Problem_search(ProblemObject *self, PyObject *args)
{
    PyObject *edges_b;
    char *edges_data;
    Py_ssize_t edges_size;
    const int32_t *edges;
    Py_ssize_t nedges, e;
    int found = 1;
    int i;

    if (!PyArg_ParseTuple(args, "S", &edges_b))
        return NULL;
    if (PyBytes_AsStringAndSize(edges_b, &edges_data, &edges_size) < 0)
        return NULL;
    if (edges_size % 8 != 0) {
        PyErr_SetString(PyExc_ValueError,
                        "search: edge buffer must be pairs of int32");
        return NULL;
    }
    edges = (const int32_t *)edges_data;
    nedges = edges_size / 8;
    for (e = 0; e < nedges * 2; e++) {
        if (edges[e] < 0 || edges[e] >= self->n) {
            PyErr_SetString(PyExc_ValueError, "search: edge index out of range");
            return NULL;
        }
    }

    memset(self->reach, 0, (size_t)self->n * self->nw * 8);
    self->trail_len = 0;
    for (i = 0; i < self->nloads; i++)
        self->rf_choice[i] = RF_INITIAL;

    Py_BEGIN_ALLOW_THREADS
    for (e = 0; e < nedges; e++) {
        int inserted = add_edge(self, edges[e * 2], edges[e * 2 + 1]);
        if (inserted != 1) {
            found = inserted; /* 0: po alone is cyclic (unreachable) */
            break;
        }
    }
    if (found == 1)
        found = do_search(self, 0);
    Py_END_ALLOW_THREADS

    if (found < 0)
        return PyErr_NoMemory();
    if (found == 0)
        Py_RETURN_NONE;
    {
        PyObject *rf = PyTuple_New(self->nloads);
        PyObject *co, *result;
        if (rf == NULL)
            return NULL;
        for (i = 0; i < self->nloads; i++) {
            PyObject *value = PyLong_FromLong(self->rf_choice[i]);
            if (value == NULL) {
                Py_DECREF(rf);
                return NULL;
            }
            PyTuple_SET_ITEM(rf, i, value);
        }
        co = PyTuple_New(self->nslots);
        if (co == NULL) {
            Py_DECREF(rf);
            return NULL;
        }
        for (i = 0; i < self->nslots; i++) {
            PyObject *value = PyLong_FromLong(self->co_choice[i]);
            if (value == NULL) {
                Py_DECREF(rf);
                Py_DECREF(co);
                return NULL;
            }
            PyTuple_SET_ITEM(co, i, value);
        }
        result = PyTuple_Pack(2, rf, co);
        Py_DECREF(rf);
        Py_DECREF(co);
        return result;
    }
}

/* ------------------------------------------------------------------ */
/* flattened mask-program evaluation                                   */
/* ------------------------------------------------------------------ */

static PyObject *
Problem_eval_program(ProblemObject *self, PyObject *args)
{
    PyObject *codes_b, *atoms_seq, *atoms = NULL, *result = NULL;
    PyObject *outputs_b = NULL;
    int num_instructions;
    char *codes_data;
    Py_ssize_t codes_size, natoms, a;
    const int32_t *codes;
    const int32_t *outputs = NULL;
    Py_ssize_t noutputs = 0;
    int64_t ncodes, position;
    const int pw = self->pw;
    uint64_t tail_last;
    uint64_t *registers = NULL;
    const uint64_t **atom_words = NULL;
    int r, k;

    if (!PyArg_ParseTuple(args, "SiO|S", &codes_b, &num_instructions, &atoms_seq,
                          &outputs_b))
        return NULL;
    if (PyBytes_AsStringAndSize(codes_b, &codes_data, &codes_size) < 0)
        return NULL;
    if (codes_size % 4 != 0 || num_instructions < 1) {
        PyErr_SetString(PyExc_ValueError, "eval_program: bad code buffer");
        return NULL;
    }
    codes = (const int32_t *)codes_data;
    ncodes = codes_size / 4;
    if (outputs_b != NULL) {
        char *outputs_data;
        Py_ssize_t outputs_size;
        if (PyBytes_AsStringAndSize(outputs_b, &outputs_data, &outputs_size) < 0)
            return NULL;
        if (outputs_size % 4 != 0 || outputs_size == 0) {
            PyErr_SetString(PyExc_ValueError, "eval_program: bad output buffer");
            return NULL;
        }
        outputs = (const int32_t *)outputs_data;
        noutputs = outputs_size / 4;
        for (a = 0; a < noutputs; a++) {
            if (outputs[a] < 0 || outputs[a] >= num_instructions) {
                PyErr_SetString(PyExc_ValueError,
                                "eval_program: output register out of range");
                return NULL;
            }
        }
    }

    atoms = PySequence_Fast(atoms_seq, "eval_program: atoms must be a sequence");
    if (atoms == NULL)
        return NULL;
    natoms = PySequence_Fast_GET_SIZE(atoms);
    atom_words = PyMem_Malloc((size_t)(natoms ? natoms : 1) * sizeof(uint64_t *));
    registers = PyMem_Malloc((size_t)num_instructions * pw * 8);
    if (atom_words == NULL || registers == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    for (a = 0; a < natoms; a++) {
        PyObject *item = PySequence_Fast_GET_ITEM(atoms, a);
        char *data;
        Py_ssize_t size;
        if (PyBytes_AsStringAndSize(item, &data, &size) < 0)
            goto done;
        if (size != (Py_ssize_t)pw * 8) {
            PyErr_SetString(PyExc_ValueError, "eval_program: bad atom buffer");
            goto done;
        }
        atom_words[a] = (const uint64_t *)data;
    }

    /* All-ones over num_pairs bits: words 0..pw-2 are always full, the
     * last word is partial (or empty when num_pairs == 0). */
    if (self->num_pairs == 0)
        tail_last = 0;
    else if ((self->num_pairs & 63) == 0)
        tail_last = ~(uint64_t)0;
    else
        tail_last = ((uint64_t)1 << (self->num_pairs & 63)) - 1;

    position = 0;
    for (r = 0; r < num_instructions; r++) {
        uint64_t *reg = registers + (size_t)r * pw;
        int op, operand;
        if (position + 2 > ncodes)
            goto truncated;
        op = codes[position];
        operand = codes[position + 1];
        position += 2;
        switch (op) {
        case OP_TRUE:
            for (k = 0; k < pw - 1; k++)
                reg[k] = ~(uint64_t)0;
            reg[pw - 1] = tail_last;
            break;
        case OP_FALSE:
            memset(reg, 0, (size_t)pw * 8);
            break;
        case OP_ATOM:
        case OP_NATOM:
            if (operand < 0 || operand >= natoms) {
                PyErr_SetString(PyExc_ValueError,
                                "eval_program: atom index out of range");
                goto done;
            }
            if (op == OP_ATOM) {
                memcpy(reg, atom_words[operand], (size_t)pw * 8);
            } else {
                /* complement stays inside the pair universe */
                for (k = 0; k < pw - 1; k++)
                    reg[k] = ~atom_words[operand][k];
                reg[pw - 1] = ~atom_words[operand][pw - 1] & tail_last;
            }
            break;
        case OP_AND:
        case OP_OR: {
            int count = operand, s;
            if (count < 0 || position + count > ncodes)
                goto truncated;
            if (op == OP_AND) {
                for (k = 0; k < pw - 1; k++)
                    reg[k] = ~(uint64_t)0;
                reg[pw - 1] = tail_last;
            } else {
                memset(reg, 0, (size_t)pw * 8);
            }
            for (s = 0; s < count; s++) {
                int source = codes[position + s];
                const uint64_t *row;
                if (source < 0 || source >= r) {
                    PyErr_SetString(PyExc_ValueError,
                                    "eval_program: bad register reference");
                    goto done;
                }
                row = registers + (size_t)source * pw;
                if (op == OP_AND)
                    for (k = 0; k < pw; k++)
                        reg[k] &= row[k];
                else
                    for (k = 0; k < pw; k++)
                        reg[k] |= row[k];
            }
            position += count;
            break;
        }
        default:
            PyErr_SetString(PyExc_ValueError, "eval_program: unknown opcode");
            goto done;
        }
    }
    if (outputs == NULL) {
        result = PyBytes_FromStringAndSize(
            (const char *)(registers + (size_t)(num_instructions - 1) * pw),
            (Py_ssize_t)pw * 8);
    } else {
        /* concatenate the requested output registers, in request order */
        result = PyBytes_FromStringAndSize(NULL, noutputs * (Py_ssize_t)pw * 8);
        if (result != NULL) {
            char *out = PyBytes_AS_STRING(result);
            for (a = 0; a < noutputs; a++)
                memcpy(out + (size_t)a * pw * 8,
                       registers + (size_t)outputs[a] * pw, (size_t)pw * 8);
        }
    }
    goto done;

truncated:
    PyErr_SetString(PyExc_ValueError, "eval_program: truncated code buffer");
done:
    PyMem_Free(registers);
    PyMem_Free(atom_words);
    Py_XDECREF(atoms);
    return result;
}

/* ------------------------------------------------------------------ */
/* reachability micro-benchmark hook                                   */
/* ------------------------------------------------------------------ */

static PyObject *
kernelmod_bench_reach(PyObject *module, PyObject *args)
{
    int n, rounds;
    PyObject *edges_b;
    char *edges_data;
    Py_ssize_t edges_size;
    const int32_t *edges;
    Py_ssize_t nedges, e;
    ProblemObject stack;
    ProblemObject *p = &stack;
    uint64_t checksum = 0;
    int round_index, k;

    if (!PyArg_ParseTuple(args, "iSi", &n, &edges_b, &rounds))
        return NULL;
    if (n <= 0 || rounds < 1) {
        PyErr_SetString(PyExc_ValueError, "bench_reach: bad n or rounds");
        return NULL;
    }
    if (PyBytes_AsStringAndSize(edges_b, &edges_data, &edges_size) < 0)
        return NULL;
    if (edges_size % 8 != 0) {
        PyErr_SetString(PyExc_ValueError, "bench_reach: bad edge buffer");
        return NULL;
    }
    edges = (const int32_t *)edges_data;
    nedges = edges_size / 8;
    for (e = 0; e < nedges * 2; e++) {
        if (edges[e] < 0 || edges[e] >= n) {
            PyErr_SetString(PyExc_ValueError, "bench_reach: edge out of range");
            return NULL;
        }
    }

    memset(p, 0, sizeof(*p));
    p->n = n;
    p->nw = (n + 63) >> 6;
    p->reach = PyMem_Malloc((size_t)n * p->nw * 8);
    p->trail_cap = 256;
    p->trail_off = PyMem_RawMalloc((size_t)p->trail_cap * 8);
    p->trail_old = PyMem_RawMalloc((size_t)p->trail_cap * 8);
    if (!p->reach || !p->trail_off || !p->trail_old) {
        PyMem_Free(p->reach);
        PyMem_RawFree(p->trail_off);
        PyMem_RawFree(p->trail_old);
        return PyErr_NoMemory();
    }

    {
        int failed = 0;
        Py_BEGIN_ALLOW_THREADS
        for (round_index = 0; round_index < rounds && !failed; round_index++) {
            memset(p->reach, 0, (size_t)n * p->nw * 8);
            p->trail_len = 0;
            for (e = 0; e < nedges; e++) {
                int inserted = add_edge(p, edges[e * 2], edges[e * 2 + 1]);
                if (inserted < 0) {
                    failed = 1;
                    break;
                }
                checksum += (uint64_t)(unsigned)inserted;
            }
            for (k = 0; k < n * p->nw; k++)
                checksum ^= p->reach[k];
            undo_to(p, 0);
            for (k = 0; k < n * p->nw; k++)
                checksum += p->reach[k]; /* must be all zeros again */
        }
        Py_END_ALLOW_THREADS

        PyMem_Free(p->reach);
        PyMem_RawFree(p->trail_off);
        PyMem_RawFree(p->trail_old);
        if (failed)
            return PyErr_NoMemory();
    }
    return PyLong_FromUnsignedLongLong(checksum);
}

/* ------------------------------------------------------------------ */
/* batched builtin atom masks                                          */
/* ------------------------------------------------------------------ */

/* Spec codes: one int32 triple (code, a, b) per requested atom.
 * code 0 -- event trait: a = flag bit (0 read, 1 write, 2 fence,
 *           3 memory access), b = pair side (0 = u, 1 = v).
 * code 1 -- same address: a, b = pair sides for the two operands.
 */
static PyObject *
kernelmod_atom_masks(PyObject *module, PyObject *args)
{
    int num_events, num_pairs, pw;
    PyObject *pairs_b, *flags_b, *locid_b, *specs_b;
    char *pairs_data, *flags_data, *locid_data, *specs_data;
    Py_ssize_t pairs_size, flags_size, locid_size, specs_size;
    const int32_t *pairs, *locid, *specs;
    const uint8_t *flags;
    Py_ssize_t num_specs, s;
    PyObject *result;
    uint64_t *out;
    int p;

    if (!PyArg_ParseTuple(args, "iiiSSSS", &num_events, &num_pairs, &pw,
                          &pairs_b, &flags_b, &locid_b, &specs_b))
        return NULL;
    if (PyBytes_AsStringAndSize(pairs_b, &pairs_data, &pairs_size) < 0 ||
        PyBytes_AsStringAndSize(flags_b, &flags_data, &flags_size) < 0 ||
        PyBytes_AsStringAndSize(locid_b, &locid_data, &locid_size) < 0 ||
        PyBytes_AsStringAndSize(specs_b, &specs_data, &specs_size) < 0)
        return NULL;
    if (num_events < 0 || num_pairs < 0 || pw < 1 ||
        (Py_ssize_t)num_pairs > (Py_ssize_t)pw * 64 ||
        pairs_size != (Py_ssize_t)num_pairs * 8 ||
        flags_size != (Py_ssize_t)num_events ||
        locid_size != (Py_ssize_t)num_events * 4 ||
        specs_size % 12 != 0) {
        PyErr_SetString(PyExc_ValueError, "atom_masks: inconsistent buffers");
        return NULL;
    }
    pairs = (const int32_t *)pairs_data;
    flags = (const uint8_t *)flags_data;
    locid = (const int32_t *)locid_data;
    specs = (const int32_t *)specs_data;
    num_specs = specs_size / 12;
    for (p = 0; p < num_pairs * 2; p++) {
        if (pairs[p] < 0 || pairs[p] >= num_events) {
            PyErr_SetString(PyExc_ValueError, "atom_masks: pair out of range");
            return NULL;
        }
    }
    for (s = 0; s < num_specs; s++) {
        int code = specs[s * 3], a = specs[s * 3 + 1], b = specs[s * 3 + 2];
        if (code < 0 || code > 1 || a < 0 || b < 0 || b > 1 ||
            (code == 0 && a > 3) || (code == 1 && a > 1)) {
            PyErr_SetString(PyExc_ValueError, "atom_masks: bad spec");
            return NULL;
        }
    }

    result = PyBytes_FromStringAndSize(NULL, num_specs * (Py_ssize_t)pw * 8);
    if (!result)
        return NULL;
    out = (uint64_t *)PyBytes_AS_STRING(result);
    memset(out, 0, (size_t)num_specs * pw * 8);
    for (s = 0; s < num_specs; s++) {
        int code = specs[s * 3], a = specs[s * 3 + 1], b = specs[s * 3 + 2];
        uint64_t *row = out + (size_t)s * pw;
        if (code == 0) {
            for (p = 0; p < num_pairs; p++) {
                int ev = pairs[p * 2 + b];
                if ((flags[ev] >> a) & 1)
                    row[p >> 6] |= (uint64_t)1 << (p & 63);
            }
        } else {
            for (p = 0; p < num_pairs; p++) {
                int la = locid[pairs[p * 2 + a]];
                if (la >= 0 && la == locid[pairs[p * 2 + b]])
                    row[p >> 6] |= (uint64_t)1 << (p & 63);
            }
        }
    }
    return result;
}

/* ------------------------------------------------------------------ */
/* type and module boilerplate                                         */
/* ------------------------------------------------------------------ */

static PyMethodDef Problem_methods[] = {
    {"search", (PyCFunction)Problem_search, METH_VARARGS,
     "search(po_edges_bytes) -> None | (rf_tuple, co_choice_tuple)"},
    {"eval_program", (PyCFunction)Problem_eval_program, METH_VARARGS,
     "eval_program(codes_bytes, num_instructions, atom_buffers[, outputs_bytes])\n"
     "-> mask bytes (the last register, or the int32-indexed output\n"
     "registers concatenated in request order)"},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject ProblemType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.native._kernelmod.Problem",
    .tp_basicsize = sizeof(ProblemObject),
    .tp_dealloc = (destructor)Problem_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "A flattened kernel search problem over word buffers.",
    .tp_methods = Problem_methods,
    .tp_init = (initproc)Problem_init,
    .tp_new = PyType_GenericNew,
};

static PyMethodDef kernelmod_methods[] = {
    {"bench_reach", kernelmod_bench_reach, METH_VARARGS,
     "bench_reach(n, edges_bytes, rounds) -> checksum (add/undo micro-bench)"},
    {"atom_masks", kernelmod_atom_masks, METH_VARARGS,
     "atom_masks(num_events, num_pairs, pw, pairs_bytes, flags_bytes,\n"
     "locid_bytes, specs_bytes) -> concatenated pw*8-byte truth masks"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernelmod_module = {
    PyModuleDef_HEAD_INIT,
    "repro.native._kernelmod",
    "Word-array native checking kernel (C fast path).",
    -1,
    kernelmod_methods,
};

PyMODINIT_FUNC
PyInit__kernelmod(void)
{
    PyObject *module;
    if (PyType_Ready(&ProblemType) < 0)
        return NULL;
    module = PyModule_Create(&kernelmod_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&ProblemType);
    if (PyModule_AddObject(module, "Problem", (PyObject *)&ProblemType) < 0) {
        Py_DECREF(&ProblemType);
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
