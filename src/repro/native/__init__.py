"""Word-array native checking kernels.

This package lowers the hot loop of the explicit checker — the
decide/propagate/undo search of :mod:`repro.checker.kernel` and the
bitmask-program evaluation of :mod:`repro.compile.lower_masks` — from
unbounded Python ints to fixed-width arrays of 64-bit words, behind one
:class:`~repro.native.backend.KernelBackend` interface with three
implementations: the original ``bigint`` reference, a pure-Python
word-array port (``python``), and a C extension fast path (``native``,
:mod:`repro.native._kernelmod`, built optionally by ``setup.py``).

See ``docs/architecture.md`` ("Kernel backends") for the word layout,
the selection order and the build-fallback semantics.
"""

from repro.native.backend import (
    KERNEL_CHOICES,
    KERNEL_ENV,
    BigintKernelBackend,
    KernelBackend,
    NativeKernelBackend,
    WordKernelBackend,
    native_available,
    native_import_error,
    resolve_kernel,
)
from repro.native.problem import KernelProblem, kernel_problem
from repro.native.words import WORD_BITS, WordReachability, word_count

__all__ = [
    "KERNEL_CHOICES",
    "KERNEL_ENV",
    "BigintKernelBackend",
    "KernelBackend",
    "KernelProblem",
    "NativeKernelBackend",
    "WordKernelBackend",
    "WordReachability",
    "WORD_BITS",
    "kernel_problem",
    "native_available",
    "native_import_error",
    "resolve_kernel",
    "word_count",
]
