"""Pure-Python word-array port of :class:`~repro.checker.kernel.KernelSearch`.

Same decisions, same order, same pruning — coherence orders then per-load
read-from sources, forced co/rf/fr edges through incremental reachability,
cycle and anti-program-order cuts — but every bitset is a
:class:`~repro.native.words.WordReachability` word row instead of a Python
int.  This is the executable specification of the C search loop in
:mod:`repro.native._kernelmod`: the C code is a transliteration of this
module, and the differential suite holds both to the bigint kernel.

Iteration order is load-bearing: a witness is the *first* assignment found,
so any reordering here (or in C) would still satisfy the model but break
the cross-backend witness-identity guarantee the tests pin.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.checker.kernel import INITIAL, KernelWitness
from repro.native.problem import PLAN_CO, KernelProblem
from repro.native.words import WordReachability


def word_search(
    problem: KernelProblem, po_edges: Sequence[Tuple[int, int]]
) -> Optional[KernelWitness]:
    """Run the word-array backtracking search; None when nothing is acyclic."""
    indexed = problem.indexed
    if indexed.infeasible:
        return None
    state = _SearchState(problem)
    if not state.reach.add_edges(po_edges):
        return None  # unreachable: program order alone is acyclic
    if not state.search(0):
        return None
    return problem.witness(tuple(state.rf_choice), tuple(state.co_choice))


class _SearchState:
    """Mutable search state over one problem (fresh per search)."""

    def __init__(self, problem: KernelProblem) -> None:
        self.problem = problem
        self.indexed = problem.indexed
        self.reach = WordReachability(problem.n)
        self.rf_choice = [INITIAL] * len(problem.load_slot)
        self.co_choice = [0] * len(problem.slot_locations)
        self.co_position = [0] * problem.n

    def search(self, depth: int) -> bool:
        problem = self.problem
        if depth == len(problem.plan_kinds):
            return True
        arg = problem.plan_args[depth]
        if problem.plan_kinds[depth] == PLAN_CO:
            return self._search_coherence(depth, arg)
        return self._search_read_from(depth, arg)

    def _search_coherence(self, depth: int, slot: int) -> bool:
        reach = self.reach
        co_position = self.co_position
        for choice, order in enumerate(self.problem.co_orders[slot]):
            mark = reach.mark()
            # Chain edges are reachability-equivalent to the full co order.
            ok = all(
                reach.add_edge(order[i], order[i + 1]) for i in range(len(order) - 1)
            )
            if ok:
                self.co_choice[slot] = choice
                for position, store in enumerate(order):
                    co_position[store] = position
                if self.search(depth + 1):
                    return True
            reach.undo_to(mark)
        return False

    def _search_read_from(self, depth: int, position: int) -> bool:
        problem = self.problem
        indexed = self.indexed
        reach = self.reach
        load = indexed.loads[position]
        slot = problem.load_slot[position]
        order = problem.co_orders[slot][self.co_choice[slot]]
        po_row = load * reach.nw
        po_words = problem.po_words
        for source in indexed.rf_candidates[position]:
            mark = reach.mark()
            ok = True
            if source != INITIAL and indexed.thread_of[source] != indexed.thread_of[load]:
                ok = reach.add_edge(source, load)  # external rf edge
            if ok:
                # from-read edges: the load precedes every store that is not
                # coherence-before its source.
                start = 0 if source == INITIAL else self.co_position[source] + 1
                for other in order[start:]:
                    if other == source:
                        continue
                    if (po_words[po_row + (other >> 6)] >> (other & 63)) & 1:
                        ok = False  # would force an anti-program-order edge
                        break
                    if not reach.add_edge(load, other):
                        ok = False
                        break
            if ok:
                self.rf_choice[position] = source
                if self.search(depth + 1):
                    return True
            reach.undo_to(mark)
        return False
