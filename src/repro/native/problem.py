"""Flattened, model-independent search problems for the word-array kernels.

A :class:`KernelProblem` is everything :class:`~repro.checker.kernel.
KernelSearch` derives from an :class:`~repro.checker.kernel.IndexedExecution`
— the decision plan, the per-location coherence orders, the per-load
read-from candidates, program order — flattened into tuples, typed arrays
and word buffers that both the pure-Python word search
(:mod:`repro.native.wordsearch`) and the C extension consume directly.

Building it is the word-array form of the caching the bigint path gets from
``IndexedExecution.coherence_orders_at``: the problem is computed once per
execution (memoized on the ``IndexedExecution`` itself) and shared by every
model and every backend checked against that execution, so differential
runs between backends don't re-flatten per check.

The plan replicates ``KernelSearch``'s construction *exactly* — locations
in ``ix.locations`` order skipping storeless ones, each location's loads in
``ix.loads`` position order right after its coherence decision, coherence
orders in ``coherence_orders_at`` enumeration order, read-from candidates
in ``rf_candidates`` order — because witness identity across backends (a
tested guarantee) depends on identical decision iteration.
"""

from __future__ import annotations

from array import array
from itertools import chain
from typing import Dict, List, Optional, Tuple

from repro.checker.kernel import IndexedExecution
from repro.core.predicates import FENCE, MEMORY_ACCESS, READ, SAME_ADDR, WRITE
from repro.native.words import int_to_words, word_count

#: plan-step kinds in the flattened plan arrays
PLAN_CO = 0
PLAN_RF = 1

#: flag-bit position per builtin unary trait, matching the C ``atom_masks``
#: spec encoding (code 0, a = bit, b = pair side).
_TRAIT_BITS = {id(READ): 0, id(WRITE): 1, id(FENCE): 2, id(MEMORY_ACCESS): 3}


#: per-atom-list C-call plans keyed by the node-id tuple (capped, see below)
_ATOM_PLANS: Dict[Tuple[int, ...], Tuple[bytes, Tuple[int, ...], Tuple[int, ...]]] = {}
_ATOM_PLAN_CAP = 1024


def _atom_plan(nodes):
    """The batched-C plan for an atom list: (specs bytes, spec node ids,
    fallback positions).

    Atom lists come from cached :class:`~repro.native.flatprog.FlatProgram`
    objects, so the same list recurs for every execution of a run; the plan
    (which atoms flatten to C specs, in what order, and which need the
    Python path) depends only on the hash-consed node ids and is computed
    once per distinct list.
    """
    key = tuple(node.node_id for node in nodes)
    plan = _ATOM_PLANS.get(key)
    if plan is None:
        specs = array("i")
        spec_ids: List[int] = []
        fallback: List[int] = []
        for position, node in enumerate(nodes):
            spec = _builtin_atom_spec(node)
            if spec is None:
                fallback.append(position)
            else:
                specs.extend(spec)
                spec_ids.append(node.node_id)
        if len(_ATOM_PLANS) >= _ATOM_PLAN_CAP:
            _ATOM_PLANS.clear()
        plan = _ATOM_PLANS[key] = (specs.tobytes(), tuple(spec_ids), tuple(fallback))
    return plan


def _builtin_atom_spec(node):
    """The C ``atom_masks`` spec triple for a builtin atom, or None.

    Only trait atoms (Read/Write/Fence/MemAccess) and SameAddr flatten to a
    spec; dependency predicates, custom predicates and opaque calls return
    None and take the Python path.  Predicates are matched by identity so a
    user predicate that merely shares a name never reaches the C encoding.
    """
    if node.kind == "call":
        return None
    args = node.args
    bit = _TRAIT_BITS.get(id(node.predicate))
    if bit is not None and len(args) == 1:
        return (0, bit, 0 if args[0] == "x" else 1)
    if node.predicate is SAME_ADDR and len(args) == 2:
        return (1, 0 if args[0] == "x" else 1, 0 if args[1] == "x" else 1)
    return None


class KernelProblem:
    """One execution's search problem, flattened for the word-array kernels."""

    __slots__ = (
        "indexed",
        "n",
        "nw",
        "num_pairs",
        "pw",
        "plan_kinds",
        "plan_args",
        "slot_locations",
        "slot_of_location",
        "co_orders",
        "load_slot",
        "po_words",
        "_native",
        "_atom_words",
        "_builtin_buffers",
    )

    def __init__(self, indexed: IndexedExecution) -> None:
        self.indexed = indexed
        self.n = indexed.n
        self.nw = word_count(indexed.n)
        self.num_pairs = len(indexed.po_pairs)
        self.pw = word_count(self.num_pairs)

        # The decision plan, flattened: kinds as PLAN_CO/PLAN_RF, arguments
        # as a coherence-slot index or a load position.  Slots number the
        # locations that have stores, in plan (= ``ix.locations``) order.
        loads_of: Dict[Optional[str], List[int]] = {}
        for position, load in enumerate(indexed.loads):
            loads_of.setdefault(indexed.location_of[load], []).append(position)
        kinds: List[int] = []
        args: List[int] = []
        slot_locations: List[str] = []
        coherence = indexed.coherence_orders_at if not indexed.infeasible else {}
        co_orders: List[Tuple[Tuple[int, ...], ...]] = []
        for location in indexed.locations:
            if not indexed.stores_at[location]:
                continue
            slot = len(slot_locations)
            slot_locations.append(location)
            co_orders.append(coherence.get(location, ()))
            kinds.append(PLAN_CO)
            args.append(slot)
            for position in loads_of.get(location, ()):
                kinds.append(PLAN_RF)
                args.append(position)
        self.plan_kinds = array("b", kinds)
        self.plan_args = array("i", args)
        self.slot_locations: Tuple[str, ...] = tuple(slot_locations)
        self.slot_of_location: Dict[str, int] = {
            location: slot for slot, location in enumerate(slot_locations)
        }
        #: per slot: the location's po-respecting store orders (index tuples)
        self.co_orders: Tuple[Tuple[Tuple[int, ...], ...], ...] = tuple(co_orders)
        #: per load position: the coherence slot of its location (-1 if storeless)
        self.load_slot = array(
            "i",
            (
                self.slot_of_location.get(indexed.location_of[load], -1)
                for load in indexed.loads
            ),
        )

        #: program order as one flat word buffer: row i = po_before[i]
        if self.nw == 1:
            # litmus-sized executions: every row is one word already
            po_words = array("Q", indexed.po_before)
        else:
            po_words = array("Q")
            for mask in indexed.po_before:
                po_words.extend(int_to_words(mask, self.nw))
        self.po_words = po_words

        self._native = None
        # word-form (little-endian bytes) atom truth vectors, keyed by IR
        # node id, for the C mask-program evaluator
        self._atom_words: Dict[int, bytes] = {}
        # (pairs, flags, locid) byte buffers for the batched C atom-mask
        # call, built on first use
        self._builtin_buffers: Optional[Tuple[bytes, bytes, bytes]] = None

    # ------------------------------------------------------------------
    def native(self):
        """Return (building once) the C-extension mirror of this problem."""
        if self._native is None:
            from repro.native import _kernelmod  # ImportError surfaces to caller

            indexed = self.indexed
            co_count = array("i")
            co_len = array("i")
            co_off = array("q")
            co_flat = array("i")
            for orders in self.co_orders:
                co_count.append(len(orders))
                co_len.append(len(orders[0]) if orders else 0)
                co_off.append(len(co_flat))
                for order in orders:
                    co_flat.extend(order)
            rf_off = array("i", [0])
            rf_flat = array("i")
            for candidates in indexed.rf_candidates:
                rf_flat.extend(candidates)
                rf_off.append(len(rf_flat))
            self._native = _kernelmod.Problem(
                self.n,
                self.num_pairs,
                len(indexed.loads),
                len(self.plan_kinds),
                len(self.slot_locations),
                self.plan_kinds.tobytes(),
                self.plan_args.tobytes(),
                co_count.tobytes(),
                co_len.tobytes(),
                co_off.tobytes(),
                co_flat.tobytes(),
                array("i", indexed.loads).tobytes(),
                self.load_slot.tobytes(),
                rf_off.tobytes(),
                rf_flat.tobytes(),
                array("i", indexed.thread_of).tobytes(),
                self.po_words.tobytes(),
            )
        return self._native

    def atom_words(self, node) -> bytes:
        """An IR atom's positive truth vector over the po pairs, as words.

        Cached per node id for the problem's lifetime.  This Python path
        derives the mask from the ``IndexedExecution`` caches the bigint
        lowering uses; :meth:`atom_words_list` may instead fill the same
        per-node cache from the batched C computation, which is verified
        bit-identical against this path by the differential suite.
        """
        cached = self._atom_words.get(node.node_id)
        if cached is None:
            from repro.native.flatprog import positive_atom_mask

            mask = positive_atom_mask(self.indexed, node)
            cached = mask.to_bytes(8 * self.pw, "little")
            self._atom_words[node.node_id] = cached
        return cached

    def atom_words_list(self, nodes) -> List[bytes]:
        """Positive truth vectors for a batch of IR atoms.

        Builtin trait/SameAddr atoms missing from the per-node cache are
        computed in a single C call (:func:`_kernelmod.atom_masks`) over
        shared event-flag/location buffers; dependency, custom-predicate
        and call atoms fall back to :meth:`atom_words` individually.
        """
        cache = self._atom_words
        specs_bytes, spec_ids, fallback = _atom_plan(nodes)
        if cache:
            # Warm problem: drop already-cached atoms from the C request.
            specs = array("i")
            pending: List[int] = []
            offset = 0
            for node_id in spec_ids:
                if node_id not in cache:
                    specs.frombytes(specs_bytes[offset : offset + 12])
                    pending.append(node_id)
                offset += 12
            specs_bytes, spec_ids = specs.tobytes(), tuple(pending)
        for position in fallback:
            node = nodes[position]
            if node.node_id not in cache:
                self.atom_words(node)
        if spec_ids:
            from repro.native import _kernelmod

            buffers = self._builtin_buffers
            if buffers is None:
                indexed = self.indexed
                flags = bytes(
                    (1 if event.is_read else 0)
                    | (2 if event.is_write else 0)
                    | (4 if event.is_fence else 0)
                    | (8 if event.is_memory_access else 0)
                    for event in indexed.events
                )
                loc_index = {
                    location: index for index, location in enumerate(indexed.locations)
                }
                locid = array(
                    "i",
                    (
                        -1 if location is None else loc_index[location]
                        for location in indexed.location_of
                    ),
                ).tobytes()
                pairs = array("i", chain.from_iterable(indexed.po_pairs)).tobytes()
                buffers = self._builtin_buffers = (pairs, flags, locid)
            out = _kernelmod.atom_masks(
                self.n, self.num_pairs, self.pw, *buffers, specs_bytes
            )
            row = self.pw * 8
            for index, node_id in enumerate(spec_ids):
                cache[node_id] = out[index * row : (index + 1) * row]
        return [cache[node.node_id] for node in nodes]

    def edges_to_bytes(self, po_edges) -> bytes:
        """Flatten an edge list into the int32 pair buffer the C search takes."""
        return array("i", chain.from_iterable(po_edges)).tobytes()

    def witness(self, rf_choice, co_slot_choice):
        """Rebuild a :data:`~repro.checker.kernel.KernelWitness` from the
        flattened search result (rf sources + chosen order index per slot)."""
        indexed = self.indexed
        coherence: Dict[str, Tuple[int, ...]] = {
            location: () for location in indexed.locations
        }
        for slot, location in enumerate(self.slot_locations):
            coherence[location] = self.co_orders[slot][co_slot_choice[slot]]
        return tuple(rf_choice), coherence


def kernel_problem(indexed: IndexedExecution) -> KernelProblem:
    """Return the execution's flattened problem, built once and memoized."""
    problem = getattr(indexed, "_kernel_problem", None)
    if problem is None:
        problem = KernelProblem(indexed)
        indexed._kernel_problem = problem
    return problem
