"""Flattened mask programs: ModelIR DAGs as linear register code.

The bigint lowering (:mod:`repro.compile.lower_masks`) evaluates a model's
IR as a tree of Python closures over int bitmasks.  The native layer needs
the same program in a form a C loop (or a dumb Python loop over word
arrays) can execute: a linear instruction stream where instruction ``i``
writes register ``i``, children come before parents, and atoms are indices
into a table of precomputed truth-vector buffers.

Instruction encoding (int32 stream)::

    OP_TRUE/OP_FALSE:  [op, 0]
    OP_ATOM/OP_NATOM:  [op, atom_index]
    OP_AND/OP_OR:      [op, k, reg_1, ..., reg_k]

``natom`` complements *within the pair universe*: the evaluator masks the
result with the all-pairs tail mask, exactly like ``all_pairs_mask & ~m``
in the bigint path.  ``call`` nodes become atoms too — their truth vector
is tabulated in Python (memoized per execution in ``_node_masks`` like the
bigint path) and handed to the evaluator as data, so even callable-defined
models run through the native evaluator.

Programs are cached per IR root node id in a size-capped table, mirroring
the closure cache the bigint lowering keeps on the node itself.

A whole model *column* flattens to one combined program
(:func:`flat_program_multi`): the roots share a single register file keyed
by node id, so a subformula shared by N models — the common case in the
hash-consed parametric space — is one instruction, not N, and the per-root
output registers let a single evaluator pass answer every model at once.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Sequence, Tuple

from repro.compile.ir import IRNode
from repro.native.words import int_to_words, word_count, words_to_int

OP_TRUE = 0
OP_FALSE = 1
OP_ATOM = 2
OP_NATOM = 3
OP_AND = 4
OP_OR = 5


class FlatProgram:
    """IR roots flattened to linear register code plus their atom table."""

    __slots__ = ("codes", "codes_bytes", "num_instructions", "atoms", "outputs", "outputs_bytes")

    def __init__(
        self,
        codes: array,
        num_instructions: int,
        atoms: Tuple[IRNode, ...],
        outputs: array,
    ):
        #: int32 instruction stream (see module docstring for the encoding)
        self.codes = codes
        self.codes_bytes = codes.tobytes()
        self.num_instructions = num_instructions
        #: IR atom/natom/call nodes, positions = atom_index operands
        self.atoms = atoms
        #: int32 register index per root, in root order (shared roots may
        #: repeat a register; a root that is a subformula of an earlier one
        #: references an interior register)
        self.outputs = outputs
        self.outputs_bytes = outputs.tobytes()


#: root node_id -> FlatProgram; capped like the other compile-layer caches
#: so serve sessions fed ever-new model documents stay bounded.
_FLAT_CACHE: Dict[int, FlatProgram] = {}
#: (root node_id, ...) -> combined FlatProgram for a whole column.
_MULTI_CACHE: Dict[Tuple[int, ...], FlatProgram] = {}
_FLAT_CACHE_LIMIT = 8192


def flat_program(root: IRNode) -> FlatProgram:
    """Return (building and caching once per root) the root's flat program."""
    program = _FLAT_CACHE.get(root.node_id)
    if program is None:
        program = _flatten([root])
        if len(_FLAT_CACHE) >= _FLAT_CACHE_LIMIT:
            _FLAT_CACHE.clear()
        _FLAT_CACHE[root.node_id] = program
    return program


def flat_program_multi(roots: Sequence[IRNode]) -> FlatProgram:
    """Return (caching per root-id tuple) one combined program for ``roots``.

    Registers are shared across roots through the hash-consed node ids, so
    the combined program is the *union* of the roots' DAGs — evaluating it
    costs one pass over the distinct subformulas of the whole column.
    """
    key = tuple(root.node_id for root in roots)
    program = _MULTI_CACHE.get(key)
    if program is None:
        program = _flatten(roots)
        if len(_MULTI_CACHE) >= _FLAT_CACHE_LIMIT:
            _MULTI_CACHE.clear()
        _MULTI_CACHE[key] = program
    return program


def _flatten(roots: Sequence[IRNode]) -> FlatProgram:
    codes = array("i")
    atoms: List[IRNode] = []
    atom_index: Dict[int, int] = {}
    register_of: Dict[int, int] = {}
    next_register = 0

    def emit(node: IRNode) -> int:
        nonlocal next_register
        register = register_of.get(node.node_id)
        if register is not None:
            return register
        kind = node.kind
        if kind in ("and", "or"):
            operands = [emit(child) for child in node.children]
            codes.append(OP_AND if kind == "and" else OP_OR)
            codes.append(len(operands))
            codes.extend(operands)
        elif kind == "true":
            codes.append(OP_TRUE)
            codes.append(0)
        elif kind == "false":
            codes.append(OP_FALSE)
            codes.append(0)
        else:  # atom / natom / call: an atom-table reference
            index = atom_index.get(node.node_id)
            if index is None:
                index = len(atoms)
                atoms.append(node)
                atom_index[node.node_id] = index
            codes.append(OP_NATOM if kind == "natom" else OP_ATOM)
            codes.append(index)
        register = next_register
        next_register += 1
        register_of[node.node_id] = register
        return register

    outputs = array("i", (emit(root) for root in roots))
    return FlatProgram(codes, next_register, tuple(atoms), outputs)


def positive_atom_mask(indexed, node: IRNode) -> int:
    """An atom node's *positive* truth vector over the target's po pairs.

    For ``atom``/``natom`` nodes this is the predicate application's mask
    (the natom complement happens in the program, not here); for ``call``
    nodes the opaque callable is tabulated, memoized per execution under
    the node id exactly like the bigint lowering memoizes it.
    """
    if node.kind == "call":
        masks = indexed._node_masks
        mask = masks.get(node.node_id)
        if mask is None:
            from repro.compile.lower_masks import _tabulate

            mask = _tabulate(indexed, node.func)
            masks[node.node_id] = mask
        return mask
    return indexed._atom_mask(node.predicate, node.args)


def evaluate_words(program: FlatProgram, indexed, atom_masks: List[int]) -> int:
    """Evaluate a single-root flat program over word arrays.

    ``atom_masks`` are the positive int truth vectors aligned with
    ``program.atoms``.  All intermediate registers are ``array('Q')`` word
    buffers; the final register collapses back to a Python int at the
    boundary so callers (and the digest-keyed engine caches) keep a single
    mask representation.  Bit-identical to ``compiled.mask_program(ix)``;
    the differential suite holds both this and the C evaluator to it.
    """
    return evaluate_words_multi(program, indexed, atom_masks)[0]


def evaluate_words_multi(program: FlatProgram, indexed, atom_masks: List[int]) -> List[int]:
    """Evaluate a flat program over word arrays (pure-Python reference),
    returning one int mask per output register, in root order."""
    num_pairs = len(indexed.po_pairs)
    pw = word_count(num_pairs)
    tail = int_to_words((1 << num_pairs) - 1, pw)
    atom_words = [int_to_words(mask, pw) for mask in atom_masks]
    registers: List[array] = []
    codes = program.codes
    position = 0
    for _ in range(program.num_instructions):
        op = codes[position]
        operand = codes[position + 1]
        position += 2
        if op == OP_TRUE:
            value = array("Q", tail)
        elif op == OP_FALSE:
            value = array("Q", bytes(8 * pw))
        elif op == OP_ATOM:
            value = array("Q", atom_words[operand])
        elif op == OP_NATOM:
            words = atom_words[operand]
            value = array("Q", (tail[k] & ~words[k] for k in range(pw)))
        else:
            count = operand
            sources = codes[position : position + count]
            position += count
            value = array("Q", tail if op == OP_AND else bytes(8 * pw))
            for source in sources:
                row = registers[source]
                if op == OP_AND:
                    for k in range(pw):
                        value[k] &= row[k]
                else:
                    for k in range(pw):
                        value[k] |= row[k]
        registers.append(value)
    return [words_to_int(registers[register]) for register in program.outputs]
