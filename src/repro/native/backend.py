"""Pluggable kernel backends and their selection policy.

A :class:`KernelBackend` answers the two kernel-level questions the explicit
strategy asks: run the decide/propagate/undo search for one po-edge set
(:meth:`~KernelBackend.search`, returning the witness or None), and
evaluate a compiled model's po-pair mask over an execution
(:meth:`~KernelBackend.po_pair_mask`).  Three implementations:

* ``bigint`` — the original Python-int kernel of
  :mod:`repro.checker.kernel` and the closure lowering of
  :mod:`repro.compile.lower_masks`; the semantic reference.
* ``python`` — the pure-Python word-array port
  (:mod:`repro.native.wordsearch` / :mod:`repro.native.flatprog`): same
  fixed-width data layout as the C code, no C.  Slower than ``bigint`` —
  it exists as the executable specification of the native layout and the
  differential oracle, not as a fast path.
* ``native`` — the C extension :mod:`repro.native._kernelmod`, when built.

Selection (:func:`resolve_kernel`) resolves, in order: an explicit
backend instance > an explicit name > the ``REPRO_KERNEL`` environment
variable (consulted only when the spec is absent or ``"auto"``) >
``auto`` = ``native`` when the extension imports, else ``bigint``.
Requesting ``native`` explicitly when the extension is missing is an error;
``auto`` degrades silently (the build is declared optional in packaging,
so a failed compile must never break a pure-Python install).  Resolution
happens when an engine/strategy is *constructed* — once per process for
pipeline workers — never per check.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from repro.checker.kernel import IndexedExecution, KernelSearch, KernelWitness
from repro.native.flatprog import (
    evaluate_words,
    evaluate_words_multi,
    flat_program,
    flat_program_multi,
    positive_atom_mask,
)
from repro.native.problem import kernel_problem
from repro.native.wordsearch import word_search

#: Environment variable consulted by ``auto`` kernel resolution.
KERNEL_ENV = "REPRO_KERNEL"

#: Accepted --kernel / CheckEngine(kernel=...) / REPRO_KERNEL spellings.
KERNEL_CHOICES = ("auto", "native", "python", "bigint")

_NATIVE_IMPORT_ERROR: Optional[str] = None
_NATIVE_CHECKED = False


def native_available() -> bool:
    """True iff the C extension imports in this process (checked once)."""
    global _NATIVE_CHECKED, _NATIVE_IMPORT_ERROR
    if not _NATIVE_CHECKED:
        try:
            from repro.native import _kernelmod  # noqa: F401
        except ImportError as error:
            _NATIVE_IMPORT_ERROR = str(error)
        _NATIVE_CHECKED = True
    return _NATIVE_IMPORT_ERROR is None


def native_import_error() -> Optional[str]:
    """The import failure that made ``native`` unavailable, if any."""
    native_available()
    return _NATIVE_IMPORT_ERROR


class KernelBackend:
    """Interface the explicit strategy drives; see the module docstring."""

    name: str = ""
    #: True for the C-extension backend; drives the native/fallback counters.
    is_native: bool = False

    def search(
        self, indexed: IndexedExecution, po_edges: Sequence[Tuple[int, int]]
    ) -> Optional[KernelWitness]:
        """Run the kernel search; the witness found, or None."""
        raise NotImplementedError

    def allowed(
        self, indexed: IndexedExecution, po_edges: Sequence[Tuple[int, int]]
    ) -> bool:
        """Decide admissibility for a model's program-order edges."""
        return self.search(indexed, po_edges) is not None

    def po_pair_mask(self, indexed: IndexedExecution, compiled) -> int:
        """Evaluate the compiled model's po-pair truth vector (an int mask)."""
        raise NotImplementedError

    def po_pair_masks(self, indexed: IndexedExecution, compiled_list) -> List[int]:
        """Evaluate a whole model column's truth vectors in one pass.

        The word-array backends flatten the column to one combined program
        (registers shared across models through the hash-consed node ids)
        and evaluate it once; the base implementation just loops.  Always
        bit-identical to per-model :meth:`po_pair_mask` calls.
        """
        return [self.po_pair_mask(indexed, compiled) for compiled in compiled_list]


class BigintKernelBackend(KernelBackend):
    """The original Python-int kernel — the semantic reference."""

    name = "bigint"

    def search(self, indexed, po_edges):
        return KernelSearch(indexed, po_edges).run()

    def po_pair_mask(self, indexed, compiled) -> int:
        return compiled.mask_program(indexed)


class WordKernelBackend(KernelBackend):
    """Pure-Python word arrays: the C layout without the C."""

    name = "python"

    def search(self, indexed, po_edges):
        return word_search(kernel_problem(indexed), po_edges)

    def po_pair_mask(self, indexed, compiled) -> int:
        program = flat_program(compiled.root)
        atom_masks = [positive_atom_mask(indexed, node) for node in program.atoms]
        return evaluate_words(program, indexed, atom_masks)

    def po_pair_masks(self, indexed, compiled_list):
        if not compiled_list:
            return []
        program = flat_program_multi([compiled.root for compiled in compiled_list])
        atom_masks = [positive_atom_mask(indexed, node) for node in program.atoms]
        return evaluate_words_multi(program, indexed, atom_masks)


class NativeKernelBackend(KernelBackend):
    """The C extension over contiguous word buffers."""

    name = "native"
    is_native = True

    def search(self, indexed, po_edges):
        if indexed.infeasible:
            return None
        problem = kernel_problem(indexed)
        result = problem.native().search(problem.edges_to_bytes(po_edges))
        if result is None:
            return None
        return problem.witness(result[0], result[1])

    def po_pair_mask(self, indexed, compiled) -> int:
        program = flat_program(compiled.root)
        problem = kernel_problem(indexed)
        atoms: List[bytes] = problem.atom_words_list(program.atoms)
        mask_bytes = problem.native().eval_program(
            program.codes_bytes, program.num_instructions, atoms
        )
        return int.from_bytes(mask_bytes, "little")

    def po_pair_masks(self, indexed, compiled_list):
        if not compiled_list:
            return []
        program = flat_program_multi([compiled.root for compiled in compiled_list])
        problem = kernel_problem(indexed)
        atoms: List[bytes] = problem.atom_words_list(program.atoms)
        out = problem.native().eval_program(
            program.codes_bytes, program.num_instructions, atoms, program.outputs_bytes
        )
        row = problem.pw * 8
        from_bytes = int.from_bytes
        return [
            from_bytes(out[offset : offset + row], "little")
            for offset in range(0, len(out), row)
        ]


_BIGINT = BigintKernelBackend()
_WORD = WordKernelBackend()
_NATIVE = NativeKernelBackend()

_BY_NAME = {"bigint": _BIGINT, "python": _WORD, "native": _NATIVE}


def resolve_kernel(spec: object = None) -> KernelBackend:
    """Resolve a kernel specification to a backend instance.

    ``spec`` is a backend instance (returned as-is), one of
    :data:`KERNEL_CHOICES`, or None (= ``"auto"``).  ``auto`` consults
    ``REPRO_KERNEL`` and falls back to ``native``-if-available-else-
    ``bigint``; any explicit non-auto name overrides the environment.
    """
    if isinstance(spec, KernelBackend):
        return spec
    if spec is None:
        spec = "auto"
    if not isinstance(spec, str):
        raise TypeError(f"cannot resolve a kernel backend from {spec!r}")
    name = spec.strip().lower()
    if name == "auto":
        name = os.environ.get(KERNEL_ENV, "").strip().lower() or "auto"
        if name == "auto":
            return _NATIVE if native_available() else _BIGINT
        source = f" (from ${KERNEL_ENV})"
    else:
        source = ""
    backend = _BY_NAME.get(name)
    if backend is None:
        raise ValueError(
            f"unknown kernel backend {name!r}{source}; "
            f"expected one of {', '.join(KERNEL_CHOICES)}"
        )
    if backend.is_native and not native_available():
        raise ValueError(
            f"kernel backend 'native' requested{source} but the C extension "
            f"is not importable: {native_import_error()}"
        )
    return backend
