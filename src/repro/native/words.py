"""Fixed-width word-array bitset primitives.

The bigint kernel of :mod:`repro.checker.kernel` stores every bitset as an
unbounded Python int.  The native layer instead lays bitsets out as arrays
of 64-bit words (``array('Q')``), little-endian within the array: bit ``i``
lives in word ``i >> 6`` at position ``i & 63``.  This is byte-identical to
``int.to_bytes(..., "little")`` padded to the word count, which is how the
two representations convert into each other at the backend boundary and how
Python hands buffers to the C extension (:mod:`repro.native._kernelmod`).

:class:`WordReachability` is the word-array port of
:class:`~repro.checker.kernel.ReachabilityKernel`: the same incremental
cycle detection with O(edges-worth-of-words) undo, but over one contiguous
``n * words_per_row`` array with a (word-offset, old-word) trail.  It is the
pure-Python reference for the C search loop and is differentially tested
against the bigint kernel (``tests/native/test_kernel_differential.py``),
including at the n = 63/64/65 word boundaries.
"""

from __future__ import annotations

from array import array
from typing import List, Sequence, Tuple

#: Bits per word of every word-array bitset in this package.
WORD_BITS = 64
_WORD_MASK = (1 << WORD_BITS) - 1


def word_count(nbits: int) -> int:
    """Words needed for ``nbits`` bits (at least one, so buffers exist)."""
    return max(1, (nbits + WORD_BITS - 1) >> 6)


def int_to_words(value: int, nwords: int) -> array:
    """Spread a Python-int bitmask over ``nwords`` little-endian words."""
    words = array("Q", bytes(8 * nwords))
    for k in range(nwords):
        words[k] = (value >> (k << 6)) & _WORD_MASK
    return words


def words_to_int(words: Sequence[int]) -> int:
    """Collapse little-endian words back into a Python-int bitmask."""
    value = 0
    for k in range(len(words) - 1, -1, -1):
        value = (value << WORD_BITS) | words[k]
    return value


def tail_mask_words(nbits: int, nwords: int) -> array:
    """The all-ones mask over ``nbits`` bits, as ``nwords`` words."""
    return int_to_words((1 << nbits) - 1, nwords)


class WordReachability:
    """Incremental cycle detection over word-array reachability rows.

    ``reach`` is one flat ``array('Q')`` of ``n * nw`` words; row ``i``
    (words ``i*nw .. i*nw+nw-1``) is the bitset of nodes reachable from
    ``i``.  Inserting ``u -> v`` ORs row ``v`` (plus bit ``v``) into every
    row that reaches ``u``, recording each overwritten *word* on the trail;
    :meth:`undo_to` restores words in reverse, which is exact because later
    trail entries were written later.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self.nw = word_count(n)
        self.reach = array("Q", bytes(8 * n * self.nw))
        self._trail: List[Tuple[int, int]] = []

    def add_edge(self, u: int, v: int) -> bool:
        """Insert ``u -> v``; return False (and change nothing) on a cycle."""
        nw = self.nw
        reach = self.reach
        if u == v or (reach[v * nw + (u >> 6)] >> (u & 63)) & 1:
            return False
        uw, ubit = u >> 6, 1 << (u & 63)
        vw, vbit = v >> 6, 1 << (v & 63)
        vbase = v * nw
        trail = self._trail
        for w in range(self.n):
            base = w * nw
            if w != u and not reach[base + uw] & ubit:
                continue
            for k in range(nw):
                gain = reach[vbase + k]
                if k == vw:
                    gain |= vbit
                old = reach[base + k]
                new = old | gain
                if new != old:
                    trail.append((base + k, old))
                    reach[base + k] = new
        return True

    def add_edges(self, edges: Sequence[Tuple[int, int]]) -> bool:
        """Insert several edges; False on the first cycle (partial inserts
        stay on the trail, so callers undo to their own mark)."""
        for u, v in edges:
            if not self.add_edge(u, v):
                return False
        return True

    def mark(self) -> int:
        """Return an undo mark for the current trail position."""
        return len(self._trail)

    def undo_to(self, mark: int) -> None:
        """Restore every reachability word recorded after ``mark``."""
        trail = self._trail
        reach = self.reach
        while len(trail) > mark:
            offset, old = trail.pop()
            reach[offset] = old

    def has_path(self, u: int, v: int) -> bool:
        """Return True iff a path ``u -> ... -> v`` exists."""
        return bool((self.reach[u * self.nw + (v >> 6)] >> (v & 63)) & 1)

    def row(self, u: int) -> int:
        """Node ``u``'s reachability bitset as a Python int (tests/debugging)."""
        base = u * self.nw
        return words_to_int(self.reach[base : base + self.nw])
