"""SAT-based admissibility checker (the paper's MiniSat role).

The checker encodes the existential question "is there a read-from map and
coherence order making the forced happens-before digraph acyclic?" into CNF
(:mod:`repro.checker.encoder`) and hands it to the CDCL solver in
:mod:`repro.sat`.  When the formula is satisfiable the assignment is decoded
back into a :class:`~repro.checker.result.CheckWitness` so that the two
backends return comparable results.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.checker.encoder import Encoding, encode
from repro.checker.relations import forced_edges, program_order_edges
from repro.checker.result import CheckResult, CheckWitness
from repro.core.events import Event
from repro.core.execution import Execution, ExecutionError
from repro.core.expr import ExprError
from repro.core.litmus import LitmusTest
from repro.core.model import MemoryModel
from repro.sat.cnf import Assignment
from repro.sat.simplify import preprocess
from repro.sat.solver import SatSolver


class SatChecker:
    """Decide admissibility via the SAT encoding.

    Args:
        use_preprocessing: run the CNF simplifier before solving.  The
            simplifier is never required for correctness; the flag exists so
            benchmarks can measure its effect.
    """

    name = "sat"

    def __init__(self, use_preprocessing: bool = False) -> None:
        self.use_preprocessing = use_preprocessing

    def check(self, test: LitmusTest, model: MemoryModel) -> CheckResult:
        """Return whether ``model`` allows the candidate execution of ``test``."""
        try:
            execution = test.execution()
        except (ExecutionError, ExprError) as error:
            return CheckResult(
                False,
                test_name=test.name,
                model_name=model.name,
                reason=f"execution cannot be evaluated: {error}",
            )
        return self.check_execution(execution, model, test_name=test.name)

    def check_execution(
        self, execution: Execution, model: MemoryModel, test_name: str = ""
    ) -> CheckResult:
        encoding = encode(execution, model)
        if encoding.trivially_unsat:
            return CheckResult(
                False,
                test_name=test_name,
                model_name=model.name,
                reason="no read-from source can produce the observed values",
            )

        cnf = encoding.cnf
        if self.use_preprocessing:
            simplified, forced = preprocess(cnf)
            if simplified is None:
                return CheckResult(
                    False,
                    test_name=test_name,
                    model_name=model.name,
                    reason="CNF preprocessing proved the encoding unsatisfiable",
                )
            # Preprocessing removes clauses but keeps variable numbering, so
            # the decoded assignment must merge the forced values back in.
            result = SatSolver(simplified).solve()
            if result.satisfiable and result.assignment is not None:
                result.assignment.update(forced)
        else:
            result = SatSolver(cnf).solve()

        if not result.satisfiable or result.assignment is None:
            return CheckResult(
                False,
                test_name=test_name,
                model_name=model.name,
                reason="SAT encoding is unsatisfiable",
            )

        witness = self._decode_witness(execution, model, encoding, result.assignment)
        return CheckResult(
            True,
            test_name=test_name,
            model_name=model.name,
            witness=witness,
        )

    # ------------------------------------------------------------------
    def _decode_witness(
        self,
        execution: Execution,
        model: MemoryModel,
        encoding: Encoding,
        assignment: Assignment,
    ) -> Optional[CheckWitness]:
        events_by_uid: Dict[str, Event] = {event.uid: event for event in execution.events}

        read_from: Dict[Event, Optional[Event]] = {}
        for (load_uid, source_label), variable in encoding.read_from_vars.items():
            if assignment.get(variable, False):
                load = events_by_uid[load_uid]
                source = None if source_label == "init" else events_by_uid[source_label]
                read_from[load] = source
        if set(read_from) != set(execution.loads()):
            return None  # decoding failed; should not happen for valid encodings

        coherence: Dict[str, Tuple[Event, ...]] = {}
        for location in execution.locations():
            stores = execution.stores_to(location)

            def coherence_key(store: Event) -> int:
                return sum(
                    1
                    for other in stores
                    if other != store and self._coherence_before(encoding, assignment, other, store)
                )

            coherence[location] = tuple(sorted(stores, key=coherence_key))

        edges = forced_edges(
            execution, model, read_from, coherence, program_order_edges(execution, model)
        )
        return CheckWitness(
            read_from=tuple(sorted(read_from.items(), key=lambda kv: kv[0].uid)),
            coherence=tuple(sorted(coherence.items())),
            edges=tuple(edges or ()),
        )

    @staticmethod
    def _coherence_before(
        encoding: Encoding, assignment: Assignment, first: Event, second: Event
    ) -> bool:
        if (first.uid, second.uid) in encoding.coherence_vars:
            return assignment.get(encoding.coherence_vars[(first.uid, second.uid)], False)
        if (second.uid, first.uid) in encoding.coherence_vars:
            return not assignment.get(encoding.coherence_vars[(second.uid, first.uid)], False)
        return False
