"""Result objects returned by the admissibility checkers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.events import Event

#: A happens-before edge: (source event, target event, kind) where kind is
#: one of "po", "rf", "co", "fr".
HbEdge = Tuple[Event, Event, str]


@dataclass(frozen=True)
class CheckWitness:
    """Evidence that an execution is allowed.

    Attributes:
        read_from: for every load event, the store event it reads from, or
            ``None`` when it reads the initial value.
        coherence: per location, the chosen total order of its stores.
        edges: the forced happens-before edges of the witnessing choice.
    """

    read_from: Tuple[Tuple[Event, Optional[Event]], ...]
    coherence: Tuple[Tuple[str, Tuple[Event, ...]], ...]
    edges: Tuple[HbEdge, ...]

    def read_from_map(self) -> Dict[Event, Optional[Event]]:
        return dict(self.read_from)

    def coherence_map(self) -> Dict[str, Tuple[Event, ...]]:
        return dict(self.coherence)

    def describe(self) -> str:
        """Return a human-readable description of the witness."""
        lines: List[str] = []
        for load, store in self.read_from:
            source = store.uid if store is not None else "initial value"
            lines.append(f"  {load.uid} reads from {source}")
        for location, stores in self.coherence:
            if len(stores) > 1:
                order = " -> ".join(store.uid for store in stores)
                lines.append(f"  coherence({location}): {order}")
        for source, target, kind in self.edges:
            lines.append(f"  {kind}: {source.uid} -> {target.uid}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CheckResult:
    """The verdict of one admissibility check."""

    allowed: bool
    test_name: str = ""
    model_name: str = ""
    witness: Optional[CheckWitness] = None
    reason: str = ""

    def __bool__(self) -> bool:
        return self.allowed

    def describe(self) -> str:
        verdict = "ALLOWED" if self.allowed else "FORBIDDEN"
        header = f"{self.test_name} under {self.model_name}: {verdict}"
        if self.reason:
            header += f" ({self.reason})"
        if self.witness is not None:
            return header + "\n" + self.witness.describe()
        return header

    def to_json(self) -> Dict[str, object]:
        """Serialize (witness included) to a schema-versioned JSON document."""
        from repro.api.serialize import check_result_to_json

        return check_result_to_json(self)

    @staticmethod
    def from_json(document: Dict[str, object]) -> "CheckResult":
        """Rebuild from a document written by :meth:`to_json`."""
        from repro.api.serialize import check_result_from_json

        return check_result_from_json(document)
