"""Bitset relation kernel for the explicit checker.

The explicit backend used to materialise the full Cartesian product of
read-from maps and coherence orders and run a fresh :class:`Digraph`
acyclicity check over :class:`Event` objects for every combination.  This
module replaces that machinery with an *indexed* view of an execution and a
backtracking search with constraint propagation:

* :class:`IndexedExecution` numbers the events ``0..n-1`` and precomputes,
  once per test, every model-independent relation the search needs as Python
  ints used as bitmasks: program order, same-thread and same-location masks,
  per-load read-from candidates and per-location program-order-respecting
  store orders.  It also evaluates must-not-reorder functions vectorised:
  models are compiled through :mod:`repro.compile` to a hash-consed ModelIR
  whose bitmask lowering turns each predicate atom into one bitmask over the
  same-thread event pairs, so deriving a model's program-order edges is a
  single DAG traversal of bitwise operations (memoized per distinct subtree
  per execution, shared across every model of a space) instead of one
  evaluator call per pair.
* :class:`ReachabilityKernel` is an incremental cycle detector: it maintains
  per-node reachability bitsets under edge insertion (``O(n)`` int
  operations per edge) and undoes insertions in ``O(edges)`` on backtrack.
* :class:`KernelSearch` assigns per-location coherence orders and per-load
  read-from sources one decision at a time, emitting the forced ``co`` /
  ``rf`` / ``fr`` edges as they become determined and pruning the entire
  subtree the moment the partial forced-edge graph acquires a cycle or an
  anti-program-order edge.

The semantics is exactly that of :mod:`repro.checker.relations`; the
enumerating oracle in :mod:`repro.checker.reference` cross-validates it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.events import Event
from repro.core.execution import Execution
from repro.core.formula import (
    And,
    Atom,
    FalseFormula,
    Formula,
    FormulaError,
    Not,
    Or,
    TrueFormula,
)
from repro.core.model import MemoryModel
from repro.core.predicates import (
    ANY_DEP,
    CTRL_DEP,
    DATA_DEP,
    FENCE,
    MEMORY_ACCESS,
    Predicate,
    READ,
    SAME_ADDR,
    WRITE,
    shared_registry,
)
#: Read-from source index standing for "reads the initial value".
INITIAL = -1

#: An edge between event indices.
IndexEdge = Tuple[int, int]

#: A complete assignment found by the search: (read-from source per load, in
#: ``IndexedExecution.loads`` order, and the chosen store order per location).
KernelWitness = Tuple[Tuple[int, ...], Dict[str, Tuple[int, ...]]]


class _UnsupportedFormula(Exception):
    """A formula node the vectorised evaluator does not know (user subclass)."""


#: Built-in unary predicates answered from event traits (no evaluator call).
_UNARY_TRAITS: Dict[Predicate, str] = {
    READ: "is_read",
    WRITE: "is_write",
    FENCE: "is_fence",
    MEMORY_ACCESS: "is_memory_access",
}


class IndexedExecution:
    """An execution indexed for the bitset kernel.

    Everything here is model-independent and is computed exactly once per
    test; :class:`~repro.engine.context.TestContext` caches instances across
    the models of an exploration.  The search itself consumes ``po_before``,
    ``thread_of``, ``location_of``, ``stores_at``, ``rf_candidates`` and
    ``coherence_orders_at``; the ``same_thread`` / ``same_location`` masks
    round out the relation view for predicate-style consumers and tests.
    """

    def __init__(self, execution: Execution) -> None:
        self.execution = execution
        self.events: List[Event] = list(execution.events)
        self.n = len(self.events)
        # Event -> index table, built lazily (hashing events recurses through
        # their instruction dataclasses; internal construction only needs
        # positions, since ``events`` is thread-major).
        self._index_of: Optional[Dict[Event, int]] = None
        self.thread_of: List[int] = [event.thread_index for event in self.events]

        #: bit ``j`` of ``po_before[i]``: event j is program-order-before event i
        self.po_before: List[int] = [0] * self.n
        #: bit ``j`` of ``same_thread[i]``: events i and j share a thread
        self.same_thread: List[int] = [0] * self.n
        # program-order position within the event's thread (monotone in
        # ``Event.index``, so it orders same-thread events identically)
        self._pos_in_thread: List[int] = [0] * self.n
        # events_by_thread lists each thread's events in program order and
        # ``events`` flattens it thread-major, so each thread's indices are
        # the consecutive range and one linear pass replaces the all-pairs
        # scan (and any per-event dict lookups).
        offset = 0
        for thread_events in execution.events_by_thread:
            indices = range(offset, offset + len(thread_events))
            offset += len(thread_events)
            thread_mask = 0
            for i in indices:
                thread_mask |= 1 << i
            before = 0
            for position, i in enumerate(indices):
                bit = 1 << i
                self.same_thread[i] = thread_mask & ~bit
                self.po_before[i] = before
                self._pos_in_thread[i] = position
                before |= bit

        # One pass fills the load/store indices, the locations in first-use
        # order, the per-location store indices and the location table —
        # the same shapes execution.locations()/stores_to() would produce,
        # without their per-call event-dict traversals.
        loads: List[int] = []
        stores: List[int] = []
        locations: List[str] = []
        stores_by_location: Dict[str, List[int]] = {}
        location_of: List[Optional[str]] = []
        exec_location_of = execution.location_of
        for i, event in enumerate(self.events):
            if event.is_memory_access:
                location = exec_location_of(event)
                location_of.append(location)
                if location not in stores_by_location:
                    locations.append(location)
                    stores_by_location[location] = []
                if event.is_read:
                    loads.append(i)
                else:
                    stores.append(i)
                    stores_by_location[location].append(i)
            else:
                location_of.append(None)
        #: load event indices, in event order
        self.loads: Tuple[int, ...] = tuple(loads)
        #: store event indices, in event order
        self.stores: Tuple[int, ...] = tuple(stores)
        #: locations in first-use order, and per-location store indices
        self.locations: Tuple[str, ...] = tuple(locations)
        self.stores_at: Dict[str, Tuple[int, ...]] = {
            location: tuple(indices) for location, indices in stores_by_location.items()
        }
        self.location_of: List[Optional[str]] = location_of
        #: bit ``j`` of ``same_location[i]``: j accesses the same location as i
        self.same_location: List[int] = [0] * self.n
        members_of: Dict[str, List[int]] = {}
        for i, location in enumerate(self.location_of):
            if location is not None:
                members_of.setdefault(location, []).append(i)
        for members in members_of.values():
            mask = 0
            for i in members:
                mask |= 1 << i
            for i in members:
                self.same_location[i] = mask & ~(1 << i)

        #: per-load read-from candidates as indices (``INITIAL`` = initial value)
        # Index-level twin of relations.read_from_candidates (differentially
        # tested against it): INITIAL first when the observed value matches
        # the initial one, then matching-value stores in stores_to order,
        # skipping program-order-later same-thread stores.
        values: List[Optional[int]] = [
            execution.value_of(event) if event.is_memory_access else None
            for event in self.events
        ]
        thread_of = self.thread_of
        pos_in_thread = self._pos_in_thread
        rf: List[Tuple[int, ...]] = []
        for load in self.loads:
            location = self.location_of[load]
            value = values[load]
            thread = thread_of[load]
            position = pos_in_thread[load]
            candidates: List[int] = []
            if value == execution.initial_value(location):
                candidates.append(INITIAL)
            for store in self.stores_at[location]:
                if values[store] == value and not (
                    thread_of[store] == thread and pos_in_thread[store] > position
                ):
                    candidates.append(store)
            rf.append(tuple(candidates))
        self.rf_candidates: Tuple[Tuple[int, ...], ...] = tuple(rf)
        #: True iff some load's observed value is unobtainable
        self.infeasible = any(not candidates for candidates in self.rf_candidates)

        # Built lazily: infeasible executions (common among enumerated
        # candidate outcomes) never pay for materialising the store orders.
        self._coherence_orders_at: Optional[Dict[str, Tuple[Tuple[int, ...], ...]]] = None

        # Same-thread program-order pairs in the order program_order_edges()
        # visits them: per thread, (earlier, later) with earlier first.
        pairs: List[IndexEdge] = []
        offset = 0
        for thread_events in execution.events_by_thread:
            end = offset + len(thread_events)
            for u in range(offset, end):
                for v in range(u + 1, end):
                    pairs.append((u, v))
            offset = end
        self.po_pairs: Tuple[IndexEdge, ...] = tuple(pairs)
        self.all_pairs_mask = (1 << len(pairs)) - 1

        self._atom_masks: Dict[Tuple[Predicate, Tuple[str, ...]], int] = {}
        # Per-execution masks of hash-consed ModelIR nodes, keyed by
        # node id (see repro.compile.lower_masks); subtrees shared across
        # a model space evaluate once per execution.
        self._node_masks: Dict[int, int] = {}

    @property
    def index_of(self) -> Dict[Event, int]:
        """Event -> index table (``events`` order), built on first use."""
        if self._index_of is None:
            self._index_of = {event: i for i, event in enumerate(self.events)}
        return self._index_of

    @property
    def coherence_orders_at(self) -> Dict[str, Tuple[Tuple[int, ...], ...]]:
        """Per-location program-order-respecting store orders (index tuples).

        The word-array kernels consume these through
        :func:`repro.native.problem.kernel_problem`, which caches the
        flattened form on this instance — so differential runs pay the
        enumeration once however many backends check the execution.
        """
        if self._coherence_orders_at is None:
            self._coherence_orders_at = {
                location: self._store_orders(self.stores_at[location])
                for location in self.locations
            }
        return self._coherence_orders_at

    def _store_orders(self, stores: Tuple[int, ...]) -> Tuple[Tuple[int, ...], ...]:
        """Index-level twin of :func:`relations.po_respecting_store_orders`.

        Generates the po-respecting interleavings directly over event
        indices (differentially tested against the event-level original),
        in the same lexicographic order by position in ``stores``.
        """
        if not stores:
            return ((),)
        chains: Dict[int, List[int]] = {}
        for store in stores:
            chains.setdefault(self.thread_of[store], []).append(store)
        pos_in_thread = self._pos_in_thread
        for chain in chains.values():
            chain.sort(key=pos_in_thread.__getitem__)
        position = {store: index for index, store in enumerate(stores)}

        results: List[Tuple[int, ...]] = []
        prefix: List[int] = []
        heads = {thread: 0 for thread in chains}

        def extend() -> None:
            if len(prefix) == len(stores):
                results.append(tuple(prefix))
                return
            ready = sorted(
                (position[chain[heads[thread]]], thread)
                for thread, chain in chains.items()
                if heads[thread] < len(chain)
            )
            for _, thread in ready:
                store = chains[thread][heads[thread]]
                prefix.append(store)
                heads[thread] += 1
                extend()
                prefix.pop()
                heads[thread] -= 1

        extend()
        return tuple(results)

    # ------------------------------------------------------------------
    # vectorised program-order edges
    # ------------------------------------------------------------------
    def po_edge_pairs(self, model: MemoryModel) -> List[IndexEdge]:
        """Return the model's forced program-order edges as index pairs.

        The model is compiled once per process through :mod:`repro.compile`
        (formula models become hash-consed IR DAGs; callables and user
        formula subclasses become opaque ``call`` atoms) and its bitmask
        lowering is evaluated over this execution, memoized per IR node in
        ``_node_masks`` — so even a whole model space costs each distinct
        subformula once per execution.
        """
        mask = self.po_pair_mask(model)
        return [pair for p, pair in enumerate(self.po_pairs) if (mask >> p) & 1]

    def po_pair_mask(self, model: MemoryModel) -> int:
        """The model's forced-pair truth vector over ``po_pairs`` as a bitmask."""
        from repro.compile import compile_model

        return compile_model(model).mask_program(self)

    def _formula_mask(
        self, formula: Formula, registry: Optional[Dict[str, Predicate]] = None
    ) -> int:
        """Interpret a formula over the po-pair bitmasks (reference path).

        ``po_edge_pairs`` answers through the compiled ModelIR lowering of
        :mod:`repro.compile.lower_masks`; this direct interpreter is kept
        as the semantic reference the compiler is cross-validated against
        (``tests/checker/test_kernel.py`` and the hypothesis differential
        suite) — a new :class:`Formula` node type must be taught to both.

        ``registry`` defaults to the process-wide built-in registry
        (:func:`repro.core.predicates.shared_registry`) instead of a fresh
        per-call dict; pass a model's registry for custom vocabularies.
        """
        if registry is None:
            registry = shared_registry()
        if isinstance(formula, TrueFormula):
            return self.all_pairs_mask
        if isinstance(formula, FalseFormula):
            return 0
        if isinstance(formula, Atom):
            predicate = registry.get(formula.predicate)
            if predicate is None:
                raise FormulaError(f"unknown predicate {formula.predicate!r}")
            return self._atom_mask(predicate, formula.args)
        if isinstance(formula, Not):
            return self.all_pairs_mask & ~self._formula_mask(formula.operand, registry)
        if isinstance(formula, And):
            mask = self.all_pairs_mask
            for operand in formula.operands:
                mask &= self._formula_mask(operand, registry)
                if not mask:
                    break
            return mask
        if isinstance(formula, Or):
            mask = 0
            for operand in formula.operands:
                mask |= self._formula_mask(operand, registry)
                if mask == self.all_pairs_mask:
                    break
            return mask
        raise _UnsupportedFormula(type(formula).__name__)

    def _atom_mask(self, predicate: Predicate, args: Tuple[str, ...]) -> int:
        """The atom's truth vector over ``po_pairs``, cached per (predicate, args).

        Built-in predicates bypass the generic evaluator: unary traits read
        event attributes directly, ``SameAddr`` compares the precomputed
        ``location_of`` table, and the dependency predicates call the
        execution's bound methods without building argument tuples.  Custom
        predicates take the generic per-pair path.
        """
        key = (predicate, args)
        cached = self._atom_masks.get(key)
        if cached is not None:
            return cached
        events = self.events
        po_pairs = self.po_pairs
        mask = 0
        trait = _UNARY_TRAITS.get(predicate)
        if trait is not None and len(args) == 1:
            want_x = args[0] == "x"
            flags = [getattr(event, trait) for event in events]
            for p, (u, v) in enumerate(po_pairs):
                if flags[u if want_x else v]:
                    mask |= 1 << p
        elif predicate is SAME_ADDR and len(args) == 2:
            # same_address(x, y) == both memory accesses at one location.
            location_of = self.location_of
            first_x, second_x = args[0] == "x", args[1] == "x"
            for p, (u, v) in enumerate(po_pairs):
                a = location_of[u if first_x else v]
                if a is not None and a == location_of[u if second_x else v]:
                    mask |= 1 << p
        elif predicate in (DATA_DEP, CTRL_DEP, ANY_DEP) and len(args) == 2:
            data = self.execution.data_dependent
            ctrl = self.execution.control_dependent
            first_x, second_x = args[0] == "x", args[1] == "x"
            for p, (u, v) in enumerate(po_pairs):
                a = events[u if first_x else v]
                b = events[u if second_x else v]
                if predicate is DATA_DEP:
                    value = data(a, b)
                elif predicate is CTRL_DEP:
                    value = ctrl(a, b)
                else:
                    value = data(a, b) or ctrl(a, b)
                if value:
                    mask |= 1 << p
        else:
            execution = self.execution
            for p, (u, v) in enumerate(po_pairs):
                pair_events = tuple(
                    events[u] if arg == "x" else events[v] for arg in args
                )
                if predicate.arity == 1:
                    if len(pair_events) != 1:
                        raise FormulaError(f"predicate {predicate.name} is unary")
                    value = predicate.evaluate(execution, pair_events[0])
                else:
                    if len(pair_events) != 2:
                        raise FormulaError(f"predicate {predicate.name} is binary")
                    value = predicate.evaluate(execution, pair_events[0], pair_events[1])
                if value:
                    mask |= 1 << p
        self._atom_masks[key] = mask
        return mask


class ReachabilityKernel:
    """Incremental cycle detection over ``n`` nodes with O(edges) undo.

    ``reach[i]`` is the bitmask of nodes reachable from node ``i`` along the
    edges inserted so far.  Inserting ``u -> v`` updates the reachability of
    every node that reaches ``u`` (at most ``n`` int operations) and records
    the overwritten bitsets on a trail; :meth:`undo_to` restores them.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self.reach: List[int] = [0] * n
        self._trail: List[Tuple[int, int]] = []

    def add_edge(self, u: int, v: int) -> bool:
        """Insert ``u -> v``; return False (and change nothing) on a cycle."""
        reach = self.reach
        if u == v or (reach[v] >> u) & 1:
            return False
        gain = reach[v] | (1 << v)
        trail = self._trail
        for w in range(self.n):
            old = reach[w]
            if w != u and not (old >> u) & 1:
                continue
            new = old | gain
            if new != old:
                trail.append((w, old))
                reach[w] = new
        return True

    def add_edges(self, edges: Sequence[IndexEdge]) -> bool:
        """Insert several edges; False on the first cycle (partial inserts stay
        on the trail, so callers undo to their own mark)."""
        for u, v in edges:
            if not self.add_edge(u, v):
                return False
        return True

    def mark(self) -> int:
        """Return an undo mark for the current trail position."""
        return len(self._trail)

    def undo_to(self, mark: int) -> None:
        """Restore every reachability bitset recorded after ``mark``."""
        trail = self._trail
        reach = self.reach
        while len(trail) > mark:
            w, old = trail.pop()
            reach[w] = old

    def has_path(self, u: int, v: int) -> bool:
        """Return True iff a path ``u -> ... -> v`` exists."""
        return bool((self.reach[u] >> v) & 1)


class KernelSearch:
    """Backtracking search for an acyclic forced-edge relation.

    Decisions are interleaved per location: first the location's coherence
    order (chain ``co`` edges), then the read-from source of every load of
    that location (``rf`` edge when external, plus the ``fr`` edges the pair
    of choices forces).  Each decision's edges go through the reachability
    kernel; a cycle or an anti-program-order ``fr`` edge prunes the subtree.
    """

    def __init__(self, indexed: IndexedExecution, po_edges: Sequence[IndexEdge]) -> None:
        self.ix = indexed
        self.po_edges = po_edges
        self.kernel = ReachabilityKernel(indexed.n)
        # Decision plan: ("co", location) and ("rf", position-in-loads).
        self.plan: List[Tuple[str, object]] = []
        loads_of: Dict[str, List[int]] = {}
        for position, load in enumerate(indexed.loads):
            location = indexed.location_of[load]
            loads_of.setdefault(location, []).append(position)
        for location in indexed.locations:
            if not indexed.stores_at[location]:
                continue  # nothing to order, and loads here force no edges
            self.plan.append(("co", location))
            for position in loads_of.get(location, ()):
                self.plan.append(("rf", position))
        # Search state.
        self.rf_choice: List[int] = [INITIAL] * len(indexed.loads)
        self.co_choice: Dict[str, Tuple[int, ...]] = {}
        self.co_position: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def run(self) -> Optional[KernelWitness]:
        """Return a witnessing assignment, or None when none is acyclic."""
        if self.ix.infeasible:
            return None
        if not self.kernel.add_edges(self.po_edges):
            return None  # unreachable: program order alone is acyclic
        if not self._search(0):
            return None
        coherence = {
            location: self.co_choice.get(location, ()) for location in self.ix.locations
        }
        return tuple(self.rf_choice), coherence

    # ------------------------------------------------------------------
    def _search(self, depth: int) -> bool:
        if depth == len(self.plan):
            return True
        kind, item = self.plan[depth]
        if kind == "co":
            return self._search_coherence(depth, item)
        return self._search_read_from(depth, item)

    def _search_coherence(self, depth: int, location: str) -> bool:
        kernel = self.kernel
        for order in self.ix.coherence_orders_at[location]:
            mark = kernel.mark()
            # Chain edges are reachability-equivalent to the full co order.
            ok = all(
                kernel.add_edge(order[i], order[i + 1]) for i in range(len(order) - 1)
            )
            if ok:
                self.co_choice[location] = order
                for position, store in enumerate(order):
                    self.co_position[store] = position
                if self._search(depth + 1):
                    return True
                del self.co_choice[location]
            kernel.undo_to(mark)
        return False

    def _search_read_from(self, depth: int, position: int) -> bool:
        ix = self.ix
        kernel = self.kernel
        load = ix.loads[position]
        order = self.co_choice[ix.location_of[load]]
        po_before_load = ix.po_before[load]
        for source in ix.rf_candidates[position]:
            mark = kernel.mark()
            ok = True
            if source != INITIAL and ix.thread_of[source] != ix.thread_of[load]:
                ok = kernel.add_edge(source, load)  # external rf edge
            if ok:
                # from-read edges: the load precedes every store that is not
                # coherence-before its source.
                later = order if source == INITIAL else order[self.co_position[source] + 1 :]
                for other in later:
                    if other == source:
                        continue
                    if (po_before_load >> other) & 1:
                        ok = False  # would force an anti-program-order edge
                        break
                    if not kernel.add_edge(load, other):
                        ok = False
                        break
            if ok:
                self.rf_choice[position] = source
                if self._search(depth + 1):
                    return True
            kernel.undo_to(mark)
        return False


def kernel_allowed(indexed: IndexedExecution, po_edges: Sequence[IndexEdge]) -> bool:
    """Decide admissibility for a model's program-order edges."""
    return KernelSearch(indexed, po_edges).run() is not None
