"""Bitset relation kernel for the explicit checker.

The explicit backend used to materialise the full Cartesian product of
read-from maps and coherence orders and run a fresh :class:`Digraph`
acyclicity check over :class:`Event` objects for every combination.  This
module replaces that machinery with an *indexed* view of an execution and a
backtracking search with constraint propagation:

* :class:`IndexedExecution` numbers the events ``0..n-1`` and precomputes,
  once per test, every model-independent relation the search needs as Python
  ints used as bitmasks: program order, same-thread and same-location masks,
  per-load read-from candidates and per-location program-order-respecting
  store orders.  It also evaluates must-not-reorder functions vectorised:
  models are compiled through :mod:`repro.compile` to a hash-consed ModelIR
  whose bitmask lowering turns each predicate atom into one bitmask over the
  same-thread event pairs, so deriving a model's program-order edges is a
  single DAG traversal of bitwise operations (memoized per distinct subtree
  per execution, shared across every model of a space) instead of one
  evaluator call per pair.
* :class:`ReachabilityKernel` is an incremental cycle detector: it maintains
  per-node reachability bitsets under edge insertion (``O(n)`` int
  operations per edge) and undoes insertions in ``O(edges)`` on backtrack.
* :class:`KernelSearch` assigns per-location coherence orders and per-load
  read-from sources one decision at a time, emitting the forced ``co`` /
  ``rf`` / ``fr`` edges as they become determined and pruning the entire
  subtree the moment the partial forced-edge graph acquires a cycle or an
  anti-program-order edge.

The semantics is exactly that of :mod:`repro.checker.relations`; the
enumerating oracle in :mod:`repro.checker.reference` cross-validates it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.events import Event
from repro.core.execution import Execution
from repro.core.formula import (
    And,
    Atom,
    FalseFormula,
    Formula,
    FormulaError,
    Not,
    Or,
    TrueFormula,
)
from repro.core.model import MemoryModel
from repro.core.predicates import Predicate
from repro.checker.relations import po_respecting_store_orders, read_from_candidates

#: Read-from source index standing for "reads the initial value".
INITIAL = -1

#: An edge between event indices.
IndexEdge = Tuple[int, int]

#: A complete assignment found by the search: (read-from source per load, in
#: ``IndexedExecution.loads`` order, and the chosen store order per location).
KernelWitness = Tuple[Tuple[int, ...], Dict[str, Tuple[int, ...]]]


class _UnsupportedFormula(Exception):
    """A formula node the vectorised evaluator does not know (user subclass)."""


class IndexedExecution:
    """An execution indexed for the bitset kernel.

    Everything here is model-independent and is computed exactly once per
    test; :class:`~repro.engine.context.TestContext` caches instances across
    the models of an exploration.  The search itself consumes ``po_before``,
    ``thread_of``, ``location_of``, ``stores_at``, ``rf_candidates`` and
    ``coherence_orders_at``; the ``same_thread`` / ``same_location`` masks
    round out the relation view for predicate-style consumers and tests.
    """

    def __init__(self, execution: Execution) -> None:
        self.execution = execution
        self.events: List[Event] = list(execution.events)
        self.n = len(self.events)
        self.index_of: Dict[Event, int] = {event: i for i, event in enumerate(self.events)}
        self.thread_of: List[int] = [event.thread_index for event in self.events]

        #: bit ``j`` of ``po_before[i]``: event j is program-order-before event i
        self.po_before: List[int] = [0] * self.n
        #: bit ``j`` of ``same_thread[i]``: events i and j share a thread
        self.same_thread: List[int] = [0] * self.n
        for i, x in enumerate(self.events):
            for j, y in enumerate(self.events):
                if i != j and x.same_thread(y):
                    self.same_thread[i] |= 1 << j
                    if y.program_order_before(x):
                        self.po_before[i] |= 1 << j

        #: load event indices, in event order
        self.loads: Tuple[int, ...] = tuple(
            i for i, event in enumerate(self.events) if event.is_read
        )
        #: store event indices, in event order
        self.stores: Tuple[int, ...] = tuple(
            i for i, event in enumerate(self.events) if event.is_write
        )
        #: locations in first-use order, and per-location store indices
        self.locations: Tuple[str, ...] = tuple(execution.locations())
        self.stores_at: Dict[str, Tuple[int, ...]] = {
            location: tuple(
                self.index_of[store] for store in execution.stores_to(location)
            )
            for location in self.locations
        }
        #: bit ``j`` of ``same_location[i]``: j accesses the same location as i
        self.same_location: List[int] = [0] * self.n
        for location in self.locations:
            members = [
                i
                for i, event in enumerate(self.events)
                if event.is_memory_access and execution.location_of(event) == location
            ]
            mask = 0
            for i in members:
                mask |= 1 << i
            for i in members:
                self.same_location[i] = mask & ~(1 << i)

        self.location_of: List[Optional[str]] = [
            execution.location_of(event) if event.is_memory_access else None
            for event in self.events
        ]

        #: per-load read-from candidates as indices (``INITIAL`` = initial value)
        self.rf_candidates: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(
                INITIAL if source is None else self.index_of[source]
                for source in read_from_candidates(execution, self.events[load])
            )
            for load in self.loads
        )
        #: True iff some load's observed value is unobtainable
        self.infeasible = any(not candidates for candidates in self.rf_candidates)

        # Built lazily: infeasible executions (common among enumerated
        # candidate outcomes) never pay for materialising the store orders.
        self._coherence_orders_at: Optional[Dict[str, Tuple[Tuple[int, ...], ...]]] = None

        # Same-thread program-order pairs in the order program_order_edges()
        # visits them: per thread, (earlier, later) with earlier first.
        pairs: List[IndexEdge] = []
        for thread_events in execution.events_by_thread:
            indices = [self.index_of[event] for event in thread_events]
            for a, u in enumerate(indices):
                for v in indices[a + 1 :]:
                    pairs.append((u, v))
        self.po_pairs: Tuple[IndexEdge, ...] = tuple(pairs)
        self.all_pairs_mask = (1 << len(pairs)) - 1

        self._atom_masks: Dict[Tuple[Predicate, Tuple[str, ...]], int] = {}
        # Per-execution masks of hash-consed ModelIR nodes, keyed by
        # node id (see repro.compile.lower_masks); subtrees shared across
        # a model space evaluate once per execution.
        self._node_masks: Dict[int, int] = {}

    @property
    def coherence_orders_at(self) -> Dict[str, Tuple[Tuple[int, ...], ...]]:
        """Per-location program-order-respecting store orders (index tuples)."""
        if self._coherence_orders_at is None:
            self._coherence_orders_at = {
                location: tuple(
                    tuple(self.index_of[store] for store in order)
                    for order in po_respecting_store_orders(
                        self.execution.stores_to(location)
                    )
                )
                for location in self.locations
            }
        return self._coherence_orders_at

    # ------------------------------------------------------------------
    # vectorised program-order edges
    # ------------------------------------------------------------------
    def po_edge_pairs(self, model: MemoryModel) -> List[IndexEdge]:
        """Return the model's forced program-order edges as index pairs.

        The model is compiled once per process through :mod:`repro.compile`
        (formula models become hash-consed IR DAGs; callables and user
        formula subclasses become opaque ``call`` atoms) and its bitmask
        lowering is evaluated over this execution, memoized per IR node in
        ``_node_masks`` — so even a whole model space costs each distinct
        subformula once per execution.
        """
        mask = self.po_pair_mask(model)
        return [pair for p, pair in enumerate(self.po_pairs) if (mask >> p) & 1]

    def po_pair_mask(self, model: MemoryModel) -> int:
        """The model's forced-pair truth vector over ``po_pairs`` as a bitmask."""
        from repro.compile import compile_model

        return compile_model(model).mask_program(self)

    def _formula_mask(self, formula: Formula, registry: Dict[str, Predicate]) -> int:
        """Interpret a formula over the po-pair bitmasks (reference path).

        ``po_edge_pairs`` answers through the compiled ModelIR lowering of
        :mod:`repro.compile.lower_masks`; this direct interpreter is kept
        as the semantic reference the compiler is cross-validated against
        (``tests/checker/test_kernel.py`` and the hypothesis differential
        suite) — a new :class:`Formula` node type must be taught to both.
        """
        if isinstance(formula, TrueFormula):
            return self.all_pairs_mask
        if isinstance(formula, FalseFormula):
            return 0
        if isinstance(formula, Atom):
            predicate = registry.get(formula.predicate)
            if predicate is None:
                raise FormulaError(f"unknown predicate {formula.predicate!r}")
            return self._atom_mask(predicate, formula.args)
        if isinstance(formula, Not):
            return self.all_pairs_mask & ~self._formula_mask(formula.operand, registry)
        if isinstance(formula, And):
            mask = self.all_pairs_mask
            for operand in formula.operands:
                mask &= self._formula_mask(operand, registry)
                if not mask:
                    break
            return mask
        if isinstance(formula, Or):
            mask = 0
            for operand in formula.operands:
                mask |= self._formula_mask(operand, registry)
                if mask == self.all_pairs_mask:
                    break
            return mask
        raise _UnsupportedFormula(type(formula).__name__)

    def _atom_mask(self, predicate: Predicate, args: Tuple[str, ...]) -> int:
        """The atom's truth vector over ``po_pairs``, cached per (predicate, args)."""
        key = (predicate, args)
        cached = self._atom_masks.get(key)
        if cached is not None:
            return cached
        execution = self.execution
        mask = 0
        for p, (u, v) in enumerate(self.po_pairs):
            events = tuple(
                self.events[u] if arg == "x" else self.events[v] for arg in args
            )
            if predicate.arity == 1:
                if len(events) != 1:
                    raise FormulaError(f"predicate {predicate.name} is unary")
                value = predicate.evaluate(execution, events[0])
            else:
                if len(events) != 2:
                    raise FormulaError(f"predicate {predicate.name} is binary")
                value = predicate.evaluate(execution, events[0], events[1])
            if value:
                mask |= 1 << p
        self._atom_masks[key] = mask
        return mask


class ReachabilityKernel:
    """Incremental cycle detection over ``n`` nodes with O(edges) undo.

    ``reach[i]`` is the bitmask of nodes reachable from node ``i`` along the
    edges inserted so far.  Inserting ``u -> v`` updates the reachability of
    every node that reaches ``u`` (at most ``n`` int operations) and records
    the overwritten bitsets on a trail; :meth:`undo_to` restores them.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self.reach: List[int] = [0] * n
        self._trail: List[Tuple[int, int]] = []

    def add_edge(self, u: int, v: int) -> bool:
        """Insert ``u -> v``; return False (and change nothing) on a cycle."""
        reach = self.reach
        if u == v or (reach[v] >> u) & 1:
            return False
        gain = reach[v] | (1 << v)
        trail = self._trail
        for w in range(self.n):
            old = reach[w]
            if w != u and not (old >> u) & 1:
                continue
            new = old | gain
            if new != old:
                trail.append((w, old))
                reach[w] = new
        return True

    def add_edges(self, edges: Sequence[IndexEdge]) -> bool:
        """Insert several edges; False on the first cycle (partial inserts stay
        on the trail, so callers undo to their own mark)."""
        for u, v in edges:
            if not self.add_edge(u, v):
                return False
        return True

    def mark(self) -> int:
        """Return an undo mark for the current trail position."""
        return len(self._trail)

    def undo_to(self, mark: int) -> None:
        """Restore every reachability bitset recorded after ``mark``."""
        trail = self._trail
        reach = self.reach
        while len(trail) > mark:
            w, old = trail.pop()
            reach[w] = old

    def has_path(self, u: int, v: int) -> bool:
        """Return True iff a path ``u -> ... -> v`` exists."""
        return bool((self.reach[u] >> v) & 1)


class KernelSearch:
    """Backtracking search for an acyclic forced-edge relation.

    Decisions are interleaved per location: first the location's coherence
    order (chain ``co`` edges), then the read-from source of every load of
    that location (``rf`` edge when external, plus the ``fr`` edges the pair
    of choices forces).  Each decision's edges go through the reachability
    kernel; a cycle or an anti-program-order ``fr`` edge prunes the subtree.
    """

    def __init__(self, indexed: IndexedExecution, po_edges: Sequence[IndexEdge]) -> None:
        self.ix = indexed
        self.po_edges = po_edges
        self.kernel = ReachabilityKernel(indexed.n)
        # Decision plan: ("co", location) and ("rf", position-in-loads).
        self.plan: List[Tuple[str, object]] = []
        loads_of: Dict[str, List[int]] = {}
        for position, load in enumerate(indexed.loads):
            location = indexed.location_of[load]
            loads_of.setdefault(location, []).append(position)
        for location in indexed.locations:
            if not indexed.stores_at[location]:
                continue  # nothing to order, and loads here force no edges
            self.plan.append(("co", location))
            for position in loads_of.get(location, ()):
                self.plan.append(("rf", position))
        # Search state.
        self.rf_choice: List[int] = [INITIAL] * len(indexed.loads)
        self.co_choice: Dict[str, Tuple[int, ...]] = {}
        self.co_position: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def run(self) -> Optional[KernelWitness]:
        """Return a witnessing assignment, or None when none is acyclic."""
        if self.ix.infeasible:
            return None
        if not self.kernel.add_edges(self.po_edges):
            return None  # unreachable: program order alone is acyclic
        if not self._search(0):
            return None
        coherence = {
            location: self.co_choice.get(location, ()) for location in self.ix.locations
        }
        return tuple(self.rf_choice), coherence

    # ------------------------------------------------------------------
    def _search(self, depth: int) -> bool:
        if depth == len(self.plan):
            return True
        kind, item = self.plan[depth]
        if kind == "co":
            return self._search_coherence(depth, item)
        return self._search_read_from(depth, item)

    def _search_coherence(self, depth: int, location: str) -> bool:
        kernel = self.kernel
        for order in self.ix.coherence_orders_at[location]:
            mark = kernel.mark()
            # Chain edges are reachability-equivalent to the full co order.
            ok = all(
                kernel.add_edge(order[i], order[i + 1]) for i in range(len(order) - 1)
            )
            if ok:
                self.co_choice[location] = order
                for position, store in enumerate(order):
                    self.co_position[store] = position
                if self._search(depth + 1):
                    return True
                del self.co_choice[location]
            kernel.undo_to(mark)
        return False

    def _search_read_from(self, depth: int, position: int) -> bool:
        ix = self.ix
        kernel = self.kernel
        load = ix.loads[position]
        order = self.co_choice[ix.location_of[load]]
        po_before_load = ix.po_before[load]
        for source in ix.rf_candidates[position]:
            mark = kernel.mark()
            ok = True
            if source != INITIAL and ix.thread_of[source] != ix.thread_of[load]:
                ok = kernel.add_edge(source, load)  # external rf edge
            if ok:
                # from-read edges: the load precedes every store that is not
                # coherence-before its source.
                later = order if source == INITIAL else order[self.co_position[source] + 1 :]
                for other in later:
                    if other == source:
                        continue
                    if (po_before_load >> other) & 1:
                        ok = False  # would force an anti-program-order edge
                        break
                    if not kernel.add_edge(load, other):
                        ok = False
                        break
            if ok:
                self.rf_choice[position] = source
                if self._search(depth + 1):
                    return True
            kernel.undo_to(mark)
        return False


def kernel_allowed(indexed: IndexedExecution, po_edges: Sequence[IndexEdge]) -> bool:
    """Decide admissibility for a model's program-order edges."""
    return KernelSearch(indexed, po_edges).run() is not None
