"""CNF encoding of the admissibility question.

The paper's tool decides whether a litmus test is admissible under a memory
model by handing a propositional encoding to MiniSat.  This module builds the
same kind of encoding for our own SAT solver:

* one selector variable per (load, read-from candidate) pair, with
  exactly-one constraints per load;
* one orientation variable per unordered pair of same-location stores
  (the coherence order);
* one ordering variable per unordered pair of events representing a global
  total order; transitivity clauses make it a genuine order, and every
  forced happens-before edge implies the corresponding ordering literal.

The formula is satisfiable iff some read-from map and coherence order yield
an acyclic forced-edge digraph, i.e. iff the execution is allowed.

The encoding comes in two flavours:

* :meth:`HappensBeforeEncoder.encode` — the one-shot, model-specific CNF:
  every program-order pair the model's ``F`` forces in order becomes a unit
  ordering clause.  This is what :class:`~repro.checker.sat_checker.SatChecker`
  solves from scratch for each (test, model) pair.
* :meth:`HappensBeforeEncoder.encode_skeleton` — the *model-independent*
  skeleton used by :mod:`repro.engine`: only the model-dependent
  program-order units differ between models, so the skeleton replaces each
  with a fresh **selector variable** ``posel(x, y)`` and the implication
  ``posel(x, y) -> ord(x, y)``.  A concrete model is then expressed purely
  as unit *assumptions* over the selectors
  (:meth:`Encoding.po_assumptions`), which lets one persistent incremental
  SAT solver answer every model of a family over the same skeleton while
  keeping its learned clauses.

The model-dependent pieces — the unit ``ord`` clauses of the one-shot
encoding and the selector assumptions of the skeleton — are emitted through
the compile layer's CNF lowering (:mod:`repro.compile.lower_cnf`); batch
callers holding the explicit kernel's po-pair bitmask can replay it
directly via :meth:`Encoding.po_assumptions_from_mask`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.checker.relations import read_from_candidates
from repro.core.events import Event
from repro.core.execution import Execution
from repro.core.model import MemoryModel
from repro.sat.cnf import CNF, Literal


@dataclass
class Encoding:
    """A CNF encoding plus the variable maps needed to decode a model."""

    cnf: CNF
    #: (load uid, candidate uid or "init") -> selector variable
    read_from_vars: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: (store uid, store uid) -> variable meaning "first is coherence-before second"
    coherence_vars: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: (event uid, event uid) -> variable meaning "first is globally ordered before second"
    order_vars: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: skeleton encodings only: (earlier uid, later uid) -> selector variable
    #: meaning "the model forces this program-order pair in order"
    po_selector_vars: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: skeleton encodings only: the same-thread program-order pairs, in
    #: encoding order (parallel to ``po_selector_vars``)
    po_pairs: List[Tuple[Event, Event]] = field(default_factory=list)
    #: set when the encoder already knows the execution is infeasible
    trivially_unsat: bool = False
    events: List[Event] = field(default_factory=list)
    #: the execution this encoding was built from
    execution: Optional[Execution] = None
    #: True for model-independent skeleton encodings (with po selectors)
    is_skeleton: bool = False

    def order_literal(self, first: str, second: str) -> Literal:
        """Return the literal asserting ``first`` is ordered before ``second``."""
        if (first, second) in self.order_vars:
            return self.order_vars[(first, second)]
        return -self.order_vars[(second, first)]

    def coherence_literal(self, first: str, second: str) -> Literal:
        """Return the literal asserting ``first`` is coherence-before ``second``."""
        if (first, second) in self.coherence_vars:
            return self.coherence_vars[(first, second)]
        return -self.coherence_vars[(second, first)]

    def po_assumptions(self, model: MemoryModel) -> List[Literal]:
        """Instantiate a skeleton encoding for ``model`` as assumption literals.

        For every same-thread program-order pair the selector is assumed true
        when the model's must-not-reorder function forces the pair in order,
        and false otherwise (a false selector leaves the implication clause
        vacuously satisfied, i.e. the edge is simply not forced).  The model
        is evaluated through the compile layer's CNF lowering
        (:mod:`repro.compile.lower_cnf`); batch callers that already hold a
        po-pair bitmask use :meth:`po_assumptions_from_mask` instead, so the
        SAT backend shares the explicit kernel's IR-memoized truth vector.
        """
        from repro.compile import assumption_literals, compile_model

        self._require_skeleton()
        return assumption_literals(self, compile_model(model))

    def po_assumptions_from_mask(self, mask: int) -> List[Literal]:
        """Instantiate a skeleton's assumptions from a po-pair bitmask.

        Bit ``p`` corresponds to ``po_pairs[p]`` — the same scan order
        :class:`~repro.checker.kernel.IndexedExecution` uses, so the mask
        the explicit kernel computed for a model can be replayed here.
        """
        from repro.compile import assumptions_from_mask

        self._require_skeleton()
        return assumptions_from_mask(self, mask)

    def _require_skeleton(self) -> None:
        if not self.is_skeleton or self.execution is None:
            raise ValueError(
                "assumptions require a model-independent skeleton; build it with encode_skeleton()"
            )


class HappensBeforeEncoder:
    """Builds the CNF encoding for one execution (and optionally one model)."""

    def __init__(self, execution: Execution, model: Optional[MemoryModel] = None) -> None:
        self.execution = execution
        self.model = model

    def encode(self) -> Encoding:
        """Build the one-shot, model-specific encoding."""
        if self.model is None:
            raise ValueError("encode() needs a model; use encode_skeleton() without one")
        return self._encode(use_selectors=False)

    def encode_skeleton(self) -> Encoding:
        """Build the model-independent skeleton with program-order selectors."""
        return self._encode(use_selectors=True)

    def _encode(self, use_selectors: bool) -> Encoding:
        execution = self.execution
        encoding = Encoding(
            cnf=CNF(),
            events=list(execution.events),
            execution=execution,
            is_skeleton=use_selectors,
        )
        cnf = encoding.cnf

        events = execution.events
        uids = [event.uid for event in events]

        # --- global-order variables and transitivity -------------------------
        for i, first in enumerate(uids):
            for second in uids[i + 1 :]:
                encoding.order_vars[(first, second)] = cnf.new_var(f"ord({first},{second})")
        for i, a in enumerate(uids):
            for j, b in enumerate(uids):
                if i == j:
                    continue
                for k, c in enumerate(uids):
                    if k == i or k == j:
                        continue
                    # ord(a,b) & ord(b,c) -> ord(a,c)
                    cnf.add_clause(
                        [
                            -encoding.order_literal(a, b),
                            -encoding.order_literal(b, c),
                            encoding.order_literal(a, c),
                        ]
                    )

        # --- program-order edges forced by F ---------------------------------
        if use_selectors:
            for thread_events in execution.events_by_thread:
                for i, earlier in enumerate(thread_events):
                    for later in thread_events[i + 1 :]:
                        selector = cnf.new_var(f"posel({earlier.uid},{later.uid})")
                        encoding.po_selector_vars[(earlier.uid, later.uid)] = selector
                        encoding.po_pairs.append((earlier, later))
                        cnf.add_clause(
                            [-selector, encoding.order_literal(earlier.uid, later.uid)]
                        )
        else:
            from repro.compile import compile_model, forced_po_pairs

            for earlier, later in forced_po_pairs(execution, compile_model(self.model)):
                cnf.add_clause([encoding.order_literal(earlier.uid, later.uid)])

        # --- coherence orientation variables ---------------------------------
        stores_by_location: Dict[str, List[Event]] = {}
        for store in execution.stores():
            stores_by_location.setdefault(execution.location_of(store), []).append(store)
        for location, stores in stores_by_location.items():
            for i, first in enumerate(stores):
                for second in stores[i + 1 :]:
                    variable = cnf.new_var(f"co({first.uid},{second.uid})")
                    encoding.coherence_vars[(first.uid, second.uid)] = variable
                    # Coherence edges are happens-before edges in both orientations.
                    cnf.add_clause([-variable, encoding.order_literal(first.uid, second.uid)])
                    cnf.add_clause([variable, encoding.order_literal(second.uid, first.uid)])
                    # Same-thread stores must follow program order ("ignore local").
                    if first.program_order_before(second):
                        cnf.add_clause([variable])
                    elif second.program_order_before(first):
                        cnf.add_clause([-variable])

        # --- read-from selectors ----------------------------------------------
        for load in execution.loads():
            candidates = read_from_candidates(execution, load)
            if not candidates:
                encoding.trivially_unsat = True
                cnf.add_clause([])
                return encoding
            selector_literals: List[Literal] = []
            for candidate in candidates:
                label = candidate.uid if candidate is not None else "init"
                variable = cnf.new_var(f"rf({load.uid},{label})")
                encoding.read_from_vars[(load.uid, label)] = variable
                selector_literals.append(variable)
                self._constrain_candidate(encoding, load, candidate, variable, stores_by_location)
            cnf.add_clause(selector_literals)  # at least one source
            for i, first in enumerate(selector_literals):
                for second in selector_literals[i + 1 :]:
                    cnf.add_clause([-first, -second])  # at most one source

        return encoding

    # ------------------------------------------------------------------
    def _constrain_candidate(
        self,
        encoding: Encoding,
        load: Event,
        candidate: Optional[Event],
        selector: int,
        stores_by_location: Dict[str, List[Event]],
    ) -> None:
        """Add the write-read and read-write (from-read) consequences of one choice."""
        cnf = encoding.cnf
        execution = self.execution
        location = execution.location_of(load)
        same_location_stores = stores_by_location.get(location, [])

        if candidate is not None and not candidate.same_thread(load):
            # External read-from forces a happens-before edge.
            cnf.add_clause([-selector, encoding.order_literal(candidate.uid, load.uid)])

        for other in same_location_stores:
            if candidate is not None and other == candidate:
                continue
            if candidate is None:
                # Reading the initial value: the load precedes every store.
                if other.program_order_before(load):
                    cnf.add_clause([-selector])  # would force an anti-program-order edge
                else:
                    cnf.add_clause([-selector, encoding.order_literal(load.uid, other.uid)])
                continue
            # Reading from `candidate`: `other` must either be coherence-before
            # the candidate, or the load happens before `other`.
            coherence_before = encoding.coherence_literal(other.uid, candidate.uid)
            if other.program_order_before(load):
                # The from-read edge would point against program order, so the
                # only way to keep this candidate is coherence-before.
                cnf.add_clause([-selector, coherence_before])
            else:
                cnf.add_clause(
                    [-selector, coherence_before, encoding.order_literal(load.uid, other.uid)]
                )


def encode(execution: Execution, model: MemoryModel) -> Encoding:
    """Encode the admissibility of ``execution`` under ``model`` into CNF."""
    return HappensBeforeEncoder(execution, model).encode()


def encode_skeleton(execution: Execution) -> Encoding:
    """Encode the model-independent skeleton of ``execution``.

    The skeleton is satisfiable under the assumptions
    :meth:`Encoding.po_assumptions` returns for a model iff the one-shot
    encoding :func:`encode` builds for that model is satisfiable.
    """
    return HappensBeforeEncoder(execution).encode_skeleton()
