"""Explicit admissibility checker over the bitset relation kernel.

This backend decides admissibility with the backtracking search of
:mod:`repro.checker.kernel`: read-from sources and per-location coherence
positions are assigned one decision at a time, forced ``co``/``rf``/``fr``
edges are propagated through an incremental reachability kernel, and a whole
subtree is pruned the moment the partial forced-edge graph acquires a cycle
or an anti-program-order edge.  The model's program-order edges come from
the compile layer (:mod:`repro.compile`): the model is normalized once per
process to a hash-consed ModelIR and its bitmask lowering is evaluated over
the indexed execution.  It is the default backend used by the comparison
and exploration code.

The pre-kernel implementation — enumerate the full Cartesian product of
read-from maps and coherence orders and test each complete combination — is
preserved as :class:`repro.checker.reference.EnumerationChecker` and serves
as the oracle this search is cross-validated against.
"""

from __future__ import annotations

from repro.checker.kernel import INITIAL, IndexedExecution
from repro.checker.relations import forced_edges
from repro.checker.result import CheckResult, CheckWitness
from repro.core.execution import Execution, ExecutionError
from repro.core.expr import ExprError
from repro.core.litmus import LitmusTest
from repro.core.model import MemoryModel


class ExplicitChecker:
    """Decide admissibility by pruned backtracking over indexed relations.

    The search runs on a pluggable kernel backend (``kernel`` — see
    :mod:`repro.native.backend`; default ``auto`` prefers the C extension
    when built, and all backends return bit-identical witnesses).  Batch
    callers should go through :class:`~repro.engine.engine.CheckEngine`,
    which caches the indexed execution and the per-model program-order
    edges across checks.
    """

    name = "explicit"

    def __init__(self, kernel: object = None) -> None:
        from repro.native.backend import resolve_kernel

        self.kernel = resolve_kernel(kernel)

    def check(self, test: LitmusTest, model: MemoryModel) -> CheckResult:
        """Return whether ``model`` allows the candidate execution of ``test``."""
        try:
            execution = test.execution()
        except (ExecutionError, ExprError) as error:
            return CheckResult(
                False,
                test_name=test.name,
                model_name=model.name,
                reason=f"execution cannot be evaluated: {error}",
            )
        return self.check_execution(execution, model, test_name=test.name)

    def check_execution(
        self, execution: Execution, model: MemoryModel, test_name: str = ""
    ) -> CheckResult:
        """Check an already-evaluated execution."""
        indexed = IndexedExecution(execution)
        if indexed.infeasible:
            return CheckResult(
                False,
                test_name=test_name,
                model_name=model.name,
                reason="no read-from source can produce the observed values",
            )

        po_edges = indexed.po_edge_pairs(model)
        assignment = self.kernel.search(indexed, po_edges)
        if assignment is None:
            return CheckResult(
                False,
                test_name=test_name,
                model_name=model.name,
                reason="every read-from/coherence choice yields a happens-before cycle",
            )

        rf_choice, co_choice = assignment
        read_from = {
            indexed.events[load]: None if source == INITIAL else indexed.events[source]
            for load, source in zip(indexed.loads, rf_choice)
        }
        coherence = {
            location: tuple(indexed.events[store] for store in order)
            for location, order in co_choice.items()
        }
        edges = forced_edges(execution, model, read_from, coherence)
        assert edges is not None  # the search only returns valid assignments
        witness = CheckWitness(
            read_from=tuple(sorted(read_from.items(), key=lambda kv: kv[0].uid)),
            coherence=tuple(sorted(coherence.items())),
            edges=tuple(edges),
        )
        return CheckResult(
            True,
            test_name=test_name,
            model_name=model.name,
            witness=witness,
        )


_DEFAULT_CHECKER = ExplicitChecker()


def is_allowed(test: LitmusTest, model: MemoryModel) -> bool:
    """Convenience wrapper: is ``test`` allowed under ``model``?"""
    return _DEFAULT_CHECKER.check(test, model).allowed
