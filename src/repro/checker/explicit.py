"""Explicit-enumeration admissibility checker.

This backend enumerates read-from maps and coherence orders directly (both
spaces are tiny for litmus tests: a handful of candidates per load, at most a
few stores per location) and tests each forced-edge digraph for acyclicity.
It is the default backend used by the comparison and exploration code.
"""

from __future__ import annotations

from typing import Optional

from repro.checker.relations import (
    enumerate_coherence_orders,
    enumerate_read_from_maps,
    forced_edges,
    happens_before_graph,
    program_order_edges,
)
from repro.checker.result import CheckResult, CheckWitness
from repro.core.execution import Execution, ExecutionError
from repro.core.expr import ExprError
from repro.core.litmus import LitmusTest
from repro.core.model import MemoryModel


class ExplicitChecker:
    """Decide admissibility by explicit enumeration.

    Instances are stateless; the class exists so the comparison code can be
    parameterised over checker backends (explicit vs SAT).
    """

    name = "explicit"

    def check(self, test: LitmusTest, model: MemoryModel) -> CheckResult:
        """Return whether ``model`` allows the candidate execution of ``test``."""
        try:
            execution = test.execution()
        except (ExecutionError, ExprError) as error:
            return CheckResult(
                False,
                test_name=test.name,
                model_name=model.name,
                reason=f"execution cannot be evaluated: {error}",
            )
        return self.check_execution(execution, model, test_name=test.name)

    def check_execution(
        self, execution: Execution, model: MemoryModel, test_name: str = ""
    ) -> CheckResult:
        """Check an already-evaluated execution."""
        po_edges = program_order_edges(execution, model)

        saw_read_from_map = False
        for read_from in enumerate_read_from_maps(execution):
            saw_read_from_map = True
            for coherence in enumerate_coherence_orders(execution):
                edges = forced_edges(execution, model, read_from, coherence, po_edges)
                if edges is None:
                    continue
                if happens_before_graph(execution, edges).is_acyclic():
                    witness = CheckWitness(
                        read_from=tuple(sorted(read_from.items(), key=lambda kv: kv[0].uid)),
                        coherence=tuple(sorted(coherence.items())),
                        edges=tuple(edges),
                    )
                    return CheckResult(
                        True,
                        test_name=test_name,
                        model_name=model.name,
                        witness=witness,
                    )

        reason = (
            "every read-from/coherence choice yields a happens-before cycle"
            if saw_read_from_map
            else "no read-from source can produce the observed values"
        )
        return CheckResult(False, test_name=test_name, model_name=model.name, reason=reason)


_DEFAULT_CHECKER = ExplicitChecker()


def is_allowed(test: LitmusTest, model: MemoryModel) -> bool:
    """Convenience wrapper: is ``test`` allowed under ``model``?"""
    return _DEFAULT_CHECKER.check(test, model).allowed
