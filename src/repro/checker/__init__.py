"""Admissibility checking: is a litmus test allowed under a memory model?

The semantics of Section 2.2 is implemented once, as the construction of a
*forced-edge digraph* for a candidate read-from map and coherence order
(:mod:`repro.checker.relations`), and then exposed through three backends:

* :mod:`repro.checker.explicit` — pruned backtracking over the bitset
  relation kernel of :mod:`repro.checker.kernel` (the default, and the
  fastest for litmus-sized tests);
* :mod:`repro.checker.sat_checker` — encode the whole existential question
  into CNF (:mod:`repro.checker.encoder`) and ask the SAT solver, mirroring
  the paper's MiniSat-based tool;
* :mod:`repro.checker.reference` — the brute-force oracles: the pre-kernel
  (rf, co) product enumerator and a total-order enumerator, used to
  cross-validate the fast backends in the test suite.

:mod:`repro.checker.outcomes` builds on the checkers to enumerate every
outcome a program can produce under a model.
"""

from repro.checker.explicit import ExplicitChecker, is_allowed
from repro.checker.sat_checker import SatChecker
from repro.checker.reference import EnumerationChecker, ReferenceChecker
from repro.checker.result import CheckResult, CheckWitness
from repro.checker.outcomes import (
    OutcomeSet,
    allowed_outcome_set,
    allowed_outcomes,
    enumerate_candidate_outcomes,
)

__all__ = [
    "ExplicitChecker",
    "EnumerationChecker",
    "SatChecker",
    "ReferenceChecker",
    "CheckResult",
    "CheckWitness",
    "is_allowed",
    "OutcomeSet",
    "allowed_outcome_set",
    "allowed_outcomes",
    "enumerate_candidate_outcomes",
]
