"""Outcome enumeration: which final results can a program produce?

The litmus-test workflow of the paper always asks about one specific outcome,
but for examples and exploratory use it is handy to ask the dual question:
"given this program, which observable outcomes does a model allow?"  This
module enumerates the finite space of candidate outcomes (every load observes
either the initial value or a value some store to its location can write) and
filters it through an admissibility checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.core.execution import EventKey, Execution, ExecutionError
from repro.core.instructions import Load, Store
from repro.core.litmus import LitmusTest
from repro.core.model import MemoryModel
from repro.core.program import Program


def _load_keys(program: Program) -> List[EventKey]:
    keys: List[EventKey] = []
    for thread_index, thread in enumerate(program.threads):
        for instruction_index, instruction in enumerate(thread.instructions):
            if isinstance(instruction, Load):
                keys.append((thread_index, instruction_index))
    return keys


def _candidate_values(
    program: Program, initial_values: Optional[Mapping[str, int]] = None, rounds: int = 4
) -> Dict[EventKey, Set[int]]:
    """Compute a superset of the values each load can observe.

    Store values may depend on loaded values (dependency idioms), so the
    candidate sets are grown to a fixed point: starting from the initial
    values and constant stores, each round evaluates the program against
    every combination discovered so far and records the store values it
    produces.  Litmus-sized programs converge after one or two rounds.
    """
    initial_values = dict(initial_values or {})
    load_keys = _load_keys(program)
    candidates: Dict[EventKey, Set[int]] = {key: {initial_values.get("", 0)} for key in load_keys}
    # Seed with initial values per location (default 0).
    candidates = {key: {0} for key in load_keys}
    for key in load_keys:
        thread_index, instruction_index = key
        instruction = program.threads[thread_index].instructions[instruction_index]
        # If the address is a plain location, seed with its initial value.
        candidates[key] = {initial_values.get(str(instruction.address), 0)}

    for _round in range(rounds):
        discovered: Dict[EventKey, Set[int]] = {key: set(values) for key, values in candidates.items()}
        value_lists = [sorted(candidates[key]) for key in load_keys]
        for combination in product(*value_lists):
            read_values = dict(zip(load_keys, combination))
            try:
                execution = Execution(program, read_values, initial_values)
            except ExecutionError:
                continue
            for store in execution.stores():
                location = execution.location_of(store)
                value = execution.value_of(store)
                for key in load_keys:
                    load_event = execution.event(*key)
                    if execution.location_of(load_event) == location:
                        discovered[key].add(value)
        if discovered == candidates:
            break
        candidates = discovered
    return candidates


def enumerate_candidate_outcomes(
    program: Program, initial_values: Optional[Mapping[str, int]] = None
) -> Iterator[Dict[EventKey, int]]:
    """Yield every feasible outcome (load-value assignment) of ``program``.

    An outcome is *feasible* when each load's value is either the initial
    value of its location or a value actually written to that location by
    some store in the same execution.  Feasibility does not yet involve a
    memory model; it only rules out values that no store can produce.
    """
    load_keys = _load_keys(program)
    candidates = _candidate_values(program, initial_values)
    value_lists = [sorted(candidates[key]) for key in load_keys]
    for combination in product(*value_lists):
        read_values = dict(zip(load_keys, combination))
        try:
            execution = Execution(program, read_values, initial_values)
        except ExecutionError:
            continue
        if _is_feasible(execution):
            yield read_values


def _is_feasible(execution: Execution) -> bool:
    for load in execution.loads():
        location = execution.location_of(load)
        value = execution.value_of(load)
        if value == execution.initial_value(location):
            continue
        if any(
            execution.value_of(store) == value for store in execution.stores_to(location)
        ):
            continue
        return False
    return True


@dataclass
class OutcomeSet:
    """The outcomes a model allows for one program, as a result object.

    ``outcomes`` maps load destination registers to observed values, one
    dictionary per allowed outcome, in the stable order produced by
    :func:`allowed_outcomes`.  The type round-trips through JSON via
    :mod:`repro.api.serialize`.
    """

    test_name: str
    model_name: str
    outcomes: List[Dict[str, int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self) -> Iterator[Dict[str, int]]:
        return iter(self.outcomes)

    def describe(self) -> str:
        lines = [f"Outcomes allowed under {self.model_name}:"]
        for outcome in self.outcomes:
            rendered = "; ".join(f"{register} = {value}" for register, value in sorted(outcome.items()))
            lines.append(f"  {rendered}")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        """Serialize to a schema-versioned JSON document."""
        from repro.api.serialize import outcome_set_to_json

        return outcome_set_to_json(self)

    @staticmethod
    def from_json(document: Dict[str, Any]) -> "OutcomeSet":
        """Rebuild from a document written by :meth:`to_json`."""
        from repro.api.serialize import outcome_set_from_json

        return outcome_set_from_json(document)


def allowed_outcome_set(
    test: LitmusTest,
    model: MemoryModel,
    checker: Optional[object] = None,
    initial_values: Optional[Mapping[str, int]] = None,
) -> OutcomeSet:
    """Return the outcomes ``model`` allows for the test's program, packaged.

    The candidate outcome of ``test`` itself is ignored — only its program
    matters; the test contributes its name to the result.
    """
    outcomes = allowed_outcomes(
        test.program, model, checker=checker, initial_values=initial_values, name=test.name
    )
    return OutcomeSet(test_name=test.name, model_name=model.name, outcomes=outcomes)


def allowed_outcomes(
    program: Program,
    model: MemoryModel,
    checker: Optional[object] = None,
    initial_values: Optional[Mapping[str, int]] = None,
    name: str = "outcome",
) -> List[Dict[str, int]]:
    """Return the register outcomes ``model`` allows for ``program``.

    ``checker`` is a backend name, a legacy checker object, or a
    :class:`~repro.engine.engine.CheckEngine` to share; explicit enumeration
    by default.  Each element maps load destination registers to observed
    values, in a stable order (sorted by register name within sorted outcome
    tuples).
    """
    from repro.engine.engine import CheckEngine

    engine = CheckEngine.ensure(checker)
    results: List[Dict[str, int]] = []
    seen: Set[Tuple[Tuple[str, int], ...]] = set()
    for read_values in enumerate_candidate_outcomes(program, initial_values):
        test = LitmusTest(name, program, read_values)
        # cache=False: each candidate outcome is a fresh one-shot test, so
        # caching its context in a shared engine could never pay off.
        if not engine.check(test, model, cache=False):
            continue
        register_outcome = test.register_outcome()
        key = tuple(sorted(register_outcome.items()))
        if key not in seen:
            seen.add(key)
            results.append(register_outcome)
    results.sort(key=lambda outcome: tuple(sorted(outcome.items())))
    return results
