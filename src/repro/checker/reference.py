"""Brute-force reference checker.

This backend exists purely for cross-validation: it enumerates read-from
maps, coherence orders *and* global total orders of the events, and accepts
the execution iff some total order is consistent with every forced edge.  Its
complexity is factorial in the number of events, so it is only usable for
programs with a handful of instructions — exactly the regime of the property
tests in ``tests/checker/test_cross_validation.py``.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, List, Optional

from repro.checker.relations import (
    enumerate_coherence_orders,
    enumerate_read_from_maps,
    forced_edges,
    program_order_edges,
)
from repro.checker.result import CheckResult
from repro.core.events import Event
from repro.core.execution import Execution, ExecutionError
from repro.core.expr import ExprError
from repro.core.litmus import LitmusTest
from repro.core.model import MemoryModel


class ReferenceChecker:
    """Exhaustive total-order checker (for small programs only)."""

    name = "reference"

    def __init__(self, max_events: int = 9) -> None:
        self.max_events = max_events

    def check(self, test: LitmusTest, model: MemoryModel) -> CheckResult:
        try:
            execution = test.execution()
        except (ExecutionError, ExprError) as error:
            return CheckResult(
                False,
                test_name=test.name,
                model_name=model.name,
                reason=f"execution cannot be evaluated: {error}",
            )
        return self.check_execution(execution, model, test_name=test.name)

    def check_execution(
        self, execution: Execution, model: MemoryModel, test_name: str = ""
    ) -> CheckResult:
        events = execution.events
        if len(events) > self.max_events:
            raise ValueError(
                f"reference checker limited to {self.max_events} events; "
                f"got {len(events)} — use the explicit or SAT backend instead"
            )
        po_edges = program_order_edges(execution, model)

        for read_from in enumerate_read_from_maps(execution):
            for coherence in enumerate_coherence_orders(execution):
                edges = forced_edges(execution, model, read_from, coherence, po_edges)
                if edges is None:
                    continue
                if self._has_linearisation(events, edges):
                    return CheckResult(True, test_name=test_name, model_name=model.name)
        return CheckResult(
            False,
            test_name=test_name,
            model_name=model.name,
            reason="no global total order satisfies the forced edges",
        )

    @staticmethod
    def _has_linearisation(events: List[Event], edges) -> bool:
        for order in permutations(events):
            position: Dict[Event, int] = {event: index for index, event in enumerate(order)}
            if all(position[source] < position[target] for source, target, _kind in edges):
                return True
        return False
