"""Brute-force oracle checkers.

These backends exist purely for cross-validation of the fast paths:

* :class:`EnumerationChecker` — the pre-kernel explicit checker: it
  materialises the full Cartesian product of read-from maps and coherence
  orders and tests each complete combination's forced-edge digraph for
  acyclicity.  The backtracking kernel of
  :class:`~repro.checker.explicit.ExplicitChecker` is cross-validated
  against it.
* :class:`ReferenceChecker` — one level more naive still: it additionally
  enumerates global total orders of the events and accepts the execution iff
  some total order is consistent with every forced edge.  Its complexity is
  factorial in the number of events, so it is only usable for programs with
  a handful of instructions — exactly the regime of the property tests in
  ``tests/checker/test_cross_validation.py``.

Both use :func:`enumerate_coherence_orders_reference`, the original
permute-then-filter coherence enumeration, so the oracle path stays
independent of the direct interleaving generator it validates.  Model
evaluation goes through the compile layer's *plain-evaluator* lowering
(:func:`repro.checker.relations.program_order_edges`), which is independent
of the bitmask lowering the kernel uses; the uncompiled
``Formula.evaluate`` interpreter remains the reference the compile layer
itself is differentially tested against (``tests/compile/``).
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, List

from repro.checker.relations import (
    enumerate_coherence_orders_reference,
    enumerate_read_from_maps,
    forced_edges,
    happens_before_graph,
    program_order_edges,
)
from repro.checker.result import CheckResult, CheckWitness
from repro.core.events import Event
from repro.core.execution import Execution, ExecutionError
from repro.core.expr import ExprError
from repro.core.litmus import LitmusTest
from repro.core.model import MemoryModel


class EnumerationChecker:
    """Decide admissibility by exhaustive (rf, co) product enumeration.

    This is the explicit backend as it existed before the bitset kernel:
    every read-from map is paired with every coherence order, the forced
    edges are rebuilt per combination, and a fresh digraph acyclicity check
    decides each one.  Kept as the oracle the kernel search is validated
    against.
    """

    name = "enumeration"

    def check(self, test: LitmusTest, model: MemoryModel) -> CheckResult:
        """Return whether ``model`` allows the candidate execution of ``test``."""
        try:
            execution = test.execution()
        except (ExecutionError, ExprError) as error:
            return CheckResult(
                False,
                test_name=test.name,
                model_name=model.name,
                reason=f"execution cannot be evaluated: {error}",
            )
        return self.check_execution(execution, model, test_name=test.name)

    def check_execution(
        self, execution: Execution, model: MemoryModel, test_name: str = ""
    ) -> CheckResult:
        """Check an already-evaluated execution."""
        po_edges = program_order_edges(execution, model)

        saw_read_from_map = False
        for read_from in enumerate_read_from_maps(execution):
            saw_read_from_map = True
            for coherence in enumerate_coherence_orders_reference(execution):
                edges = forced_edges(execution, model, read_from, coherence, po_edges)
                if edges is None:
                    continue
                if happens_before_graph(execution, edges).is_acyclic():
                    witness = CheckWitness(
                        read_from=tuple(sorted(read_from.items(), key=lambda kv: kv[0].uid)),
                        coherence=tuple(sorted(coherence.items())),
                        edges=tuple(edges),
                    )
                    return CheckResult(
                        True,
                        test_name=test_name,
                        model_name=model.name,
                        witness=witness,
                    )

        reason = (
            "every read-from/coherence choice yields a happens-before cycle"
            if saw_read_from_map
            else "no read-from source can produce the observed values"
        )
        return CheckResult(False, test_name=test_name, model_name=model.name, reason=reason)


class ReferenceChecker:
    """Exhaustive total-order checker (for small programs only)."""

    name = "reference"

    def __init__(self, max_events: int = 9) -> None:
        self.max_events = max_events

    def check(self, test: LitmusTest, model: MemoryModel) -> CheckResult:
        try:
            execution = test.execution()
        except (ExecutionError, ExprError) as error:
            return CheckResult(
                False,
                test_name=test.name,
                model_name=model.name,
                reason=f"execution cannot be evaluated: {error}",
            )
        return self.check_execution(execution, model, test_name=test.name)

    def check_execution(
        self, execution: Execution, model: MemoryModel, test_name: str = ""
    ) -> CheckResult:
        events = execution.events
        if len(events) > self.max_events:
            raise ValueError(
                f"reference checker limited to {self.max_events} events; "
                f"got {len(events)} — use the explicit or SAT backend instead"
            )
        po_edges = program_order_edges(execution, model)

        for read_from in enumerate_read_from_maps(execution):
            for coherence in enumerate_coherence_orders_reference(execution):
                edges = forced_edges(execution, model, read_from, coherence, po_edges)
                if edges is None:
                    continue
                if self._has_linearisation(events, edges):
                    return CheckResult(True, test_name=test_name, model_name=model.name)
        return CheckResult(
            False,
            test_name=test_name,
            model_name=model.name,
            reason="no global total order satisfies the forced edges",
        )

    @staticmethod
    def _has_linearisation(events: List[Event], edges) -> bool:
        for order in permutations(events):
            position: Dict[Event, int] = {event: index for index, event in enumerate(order)}
            if all(position[source] < position[target] for source, target, _kind in edges):
                return True
        return False
