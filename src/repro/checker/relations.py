"""Construction of the happens-before relation (Section 2.2).

Given a concrete execution, a memory model and a choice of

* read-from map ``rf`` (which store, or the initial value, every load reads), and
* coherence order ``co`` (a per-location total order of the stores),

the axioms of Section 2.2 *force* a set of happens-before edges:

* **program order**: ``x => y`` for same-thread pairs ordered by the model's
  must-not-reorder function ``F``;
* **write-read**: ``w => r`` when ``r`` reads from ``w`` and the two events
  are in *different* threads (a thread may see its own writes early, so a
  local read-from never creates an edge — this is what lets TSO forward from
  the store buffer in Figure 1);
* **write-write**: same-location stores are ordered by ``co``;
* **read-write** (a.k.a. from-read): a load ``r`` happens before every
  same-location store that is not coherence-before the store ``r`` reads
  from; a load of the initial value precedes every store to its location.

The *ignore local* axiom forbids happens-before edges that point against
program order inside a thread.  Following the paper's own use of the axioms
in Figure 1, only directly forced edges are subject to this check: a forced
anti-program-order edge makes the candidate (rf, co) pair invalid, while a
merely transitive backwards path does not.

The execution is allowed by the model iff there exists an (rf, co) choice
whose forced-edge digraph is acyclic.
"""

from __future__ import annotations

from itertools import permutations, product
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.events import Event
from repro.core.execution import Execution
from repro.core.model import MemoryModel
from repro.util.digraph import Digraph

#: A read-from map: load event -> store event or None (initial value).
ReadFromMap = Dict[Event, Optional[Event]]
#: A coherence order: location -> stores in order.
CoherenceOrder = Dict[str, Tuple[Event, ...]]
#: A forced happens-before edge.
HbEdge = Tuple[Event, Event, str]


class SemanticsError(ValueError):
    """Raised when an execution violates basic structural requirements."""


# ----------------------------------------------------------------------
# read-from candidates
# ----------------------------------------------------------------------
def read_from_candidates(execution: Execution, load: Event) -> List[Optional[Event]]:
    """Return the possible read-from sources for ``load``.

    A load may read from any store to the same location that wrote the
    observed value and is not program-order-later in the same thread, or from
    the initial value when the observed value matches it.  An empty list
    means the observed value is unobtainable and the whole execution is
    infeasible (forbidden under every model).
    """
    location = execution.location_of(load)
    value = execution.value_of(load)
    candidates: List[Optional[Event]] = []
    if value == execution.initial_value(location):
        candidates.append(None)
    for store in execution.stores_to(location):
        if execution.value_of(store) != value:
            continue
        if load.program_order_before(store) or load == store:
            continue  # cannot read from a program-order-later write
        candidates.append(store)
    return candidates


def enumerate_read_from_maps(execution: Execution) -> Iterator[ReadFromMap]:
    """Yield every read-from map consistent with the observed load values."""
    loads = execution.loads()
    candidate_lists = [read_from_candidates(execution, load) for load in loads]
    if any(not candidates for candidates in candidate_lists):
        return
    for choice in product(*candidate_lists):
        yield dict(zip(loads, choice))


# ----------------------------------------------------------------------
# coherence orders
# ----------------------------------------------------------------------
def po_respecting_store_orders(stores: Sequence[Event]) -> List[Tuple[Event, ...]]:
    """Return every total order of ``stores`` that respects program order.

    Same-thread stores are kept in program order (the opposite orientation
    would force an anti-program-order happens-before edge and is therefore
    never useful), so the valid orders are exactly the interleavings of the
    per-thread store chains.  They are generated directly — no
    permute-then-filter — in the same lexicographic order (by position in
    ``stores``) that filtering ``itertools.permutations`` would produce.
    """
    stores = list(stores)
    if not stores:
        return [()]
    chains: Dict[int, List[Event]] = {}
    for store in stores:
        chains.setdefault(store.thread_index, []).append(store)
    for chain in chains.values():
        chain.sort(key=lambda store: store.index)
    position = {store: index for index, store in enumerate(stores)}

    results: List[Tuple[Event, ...]] = []
    prefix: List[Event] = []
    heads = {thread: 0 for thread in chains}

    def extend() -> None:
        if len(prefix) == len(stores):
            results.append(tuple(prefix))
            return
        ready = sorted(
            (position[chain[heads[thread]]], thread)
            for thread, chain in chains.items()
            if heads[thread] < len(chain)
        )
        for _, thread in ready:
            store = chains[thread][heads[thread]]
            prefix.append(store)
            heads[thread] += 1
            extend()
            heads[thread] -= 1
            prefix.pop()

    extend()
    return results


def enumerate_coherence_orders(execution: Execution) -> Iterator[CoherenceOrder]:
    """Yield every per-location total store order consistent with program order.

    Per-location orders come from :func:`po_respecting_store_orders`, which
    interleaves the per-thread store chains directly instead of filtering all
    permutations after the fact.
    """
    locations = execution.locations()
    per_location = [
        po_respecting_store_orders(execution.stores_to(location))
        for location in locations
    ]
    for combination in product(*per_location):
        yield dict(zip(locations, combination))


def enumerate_coherence_orders_reference(execution: Execution) -> Iterator[CoherenceOrder]:
    """The original permute-then-filter enumeration, kept as the oracle path.

    Produces exactly the same sequence as :func:`enumerate_coherence_orders`;
    the cross-validation suite asserts the equivalence.
    """
    locations = execution.locations()
    per_location: List[List[Tuple[Event, ...]]] = []
    for location in locations:
        stores = execution.stores_to(location)
        orders = [
            ordering
            for ordering in permutations(stores)
            if _respects_program_order(ordering)
        ]
        per_location.append(orders)
    for combination in product(*per_location):
        yield dict(zip(locations, combination))


def _respects_program_order(ordering: Sequence[Event]) -> bool:
    for index, earlier in enumerate(ordering):
        for later in ordering[index + 1 :]:
            if later.program_order_before(earlier):
                return False
    return True


# ----------------------------------------------------------------------
# forced happens-before edges
# ----------------------------------------------------------------------
def program_order_edges(execution: Execution, model: MemoryModel) -> List[HbEdge]:
    """Return the program-order edges forced by the model's F.

    The model is evaluated through the plain-evaluator lowering of the
    compile layer (:mod:`repro.compile`): compiled once per process,
    dispatched per pair — formula interpretation overhead is paid at
    compile time, not here.
    """
    from repro.compile import compile_model, forced_po_pairs

    compiled = compile_model(model)
    return [
        (earlier, later, "po")
        for earlier, later in forced_po_pairs(execution, compiled)
    ]


def coherence_position_map(coherence: CoherenceOrder) -> Dict[Event, int]:
    """Return each store's position within its location's coherence order."""
    return {
        store: position
        for stores in coherence.values()
        for position, store in enumerate(stores)
    }


def forced_edges(
    execution: Execution,
    model: MemoryModel,
    read_from: ReadFromMap,
    coherence: CoherenceOrder,
    program_order: Optional[List[HbEdge]] = None,
    coherence_position: Optional[Dict[Event, int]] = None,
) -> Optional[List[HbEdge]]:
    """Return the forced happens-before edges, or None if the choice is invalid.

    ``None`` signals that some axiom would force an edge pointing against
    program order within a thread ("ignore local"), so no valid
    happens-before relation exists for this (rf, co) combination.

    ``program_order`` and ``coherence_position`` accept precomputed values
    (see :class:`~repro.engine.context.TestContext`) so repeated calls over
    the same model or coherence order skip the recomputation.
    """
    edges: List[HbEdge] = list(
        program_order_edges(execution, model) if program_order is None else program_order
    )

    if coherence_position is None:
        coherence_position = coherence_position_map(coherence)

    # write-write (coherence) edges
    for location, stores in coherence.items():
        for i, earlier in enumerate(stores):
            for later in stores[i + 1 :]:
                if later.program_order_before(earlier):
                    return None  # coherence against program order
                edges.append((earlier, later, "co"))

    # write-read (external read-from) edges
    for load, store in read_from.items():
        if store is None or store.same_thread(load):
            continue
        edges.append((store, load, "rf"))

    # read-write (from-read) edges
    for load, source in read_from.items():
        location = execution.location_of(load)
        for other in coherence.get(location, ()):
            if other == source:
                continue
            if source is not None and coherence_position[other] < coherence_position[source]:
                continue  # other is coherence-before the source: no edge forced
            if other.program_order_before(load):
                return None  # would force an anti-program-order edge
            edges.append((load, other, "fr"))

    return edges


def happens_before_graph(execution: Execution, edges: Iterable[HbEdge]) -> Digraph:
    """Build the forced-edge digraph over every event of the execution."""
    graph = Digraph(execution.events)
    for source, target, _kind in edges:
        graph.add_edge(source, target)
    return graph


def is_consistent(execution: Execution, edges: Iterable[HbEdge]) -> bool:
    """Return True iff the forced-edge digraph is acyclic."""
    return happens_before_graph(execution, edges).is_acyclic()
