"""Per-test cached state shared by every model of an exploration.

A :class:`TestContext` owns everything about one litmus test that does *not*
depend on the memory model being checked:

* the evaluated :class:`~repro.core.execution.Execution` (or the evaluation
  error when the candidate outcome is malformed) — evaluated exactly once,
  however many models are checked against the test;
* the :class:`~repro.checker.kernel.IndexedExecution` the kernel-based
  explicit backend searches over (events as ints, relations as bitmasks);
* the enumerated read-from candidate lists, coherence orders and per-order
  coherence-position maps the enumeration oracle iterates over;
* the model-independent CNF skeleton and the persistent incremental
  :class:`~repro.sat.solver.SatSolver` the SAT backend instantiates per
  model through assumption literals, reusing learned clauses across models.

Model-*dependent* but recomputation-heavy facts are cached too: the po-pair
truth vector (bitmask) a model forces on this test, and its derived forms
(kernel index pairs, event triples), are keyed by the model's **IR digest**
(:mod:`repro.compile`) — semantic identity, not object identity — so
repeated checks of the same (test, model) pair stop recomputing them, warm
caches survive model re-registration, and an inline model document resent
to a ``serve`` session hits the same entries as the original.  The mask is
shared between the explicit and SAT strategies (the SAT backend derives its
assumption literals from the same vector the kernel search consumes).
Cache hits are surfaced through :class:`~repro.engine.engine.EngineStats`.

Everything is built lazily so a context only pays for the strategy that
actually uses it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.checker.encoder import Encoding, encode_skeleton
from repro.checker.kernel import IndexedExecution, kernel_allowed
from repro.checker.relations import (
    CoherenceOrder,
    HbEdge,
    coherence_position_map,
    enumerate_coherence_orders,
    read_from_candidates,
)
from repro.compile import CompiledModel, compile_model, forced_po_pairs
from repro.core.events import Event
from repro.core.execution import Execution, ExecutionError
from repro.core.expr import ExprError
from repro.core.litmus import LitmusTest
from repro.core.model import MemoryModel
from repro.sat.solver import SatSolver

#: An edge between kernel event indices.
IndexEdge = Tuple[int, int]

#: Context methods accept either form; raw models are compiled on the fly.
ModelLike = Union[MemoryModel, CompiledModel]


def as_compiled(model: ModelLike) -> CompiledModel:
    """Coerce a model argument to its compiled form."""
    if isinstance(model, CompiledModel):
        return model
    return compile_model(model)


class TestContext:
    """Cached model-independent state for one litmus test."""

    def __init__(self, test: LitmusTest) -> None:
        self.test = test
        self.execution: Optional[Execution] = None
        self.error: str = ""
        try:
            self.execution = test.execution()
        except (ExecutionError, ExprError) as error:
            self.error = f"execution cannot be evaluated: {error}"

        # Kernel-strategy caches, keyed by the model's IR digest (semantic
        # identity): structurally equal models — re-registered, resent over
        # serve, or simply distinct objects — share one entry.
        self._indexed: Optional[IndexedExecution] = None
        self._po_masks: Dict[str, int] = {}
        self._po_pairs_by_digest: Dict[str, List[IndexEdge]] = {}
        self._po_edges_by_digest: Dict[str, List[HbEdge]] = {}
        # Kernel verdicts keyed by the po-edge tuple that produced them.
        # Distinct models frequently force the *same* program-order edges on
        # a small test (the verdict depends on nothing else), so a whole
        # model space often needs only a handful of kernel searches per test.
        self._kernel_verdicts: Dict[Tuple[IndexEdge, ...], bool] = {}

        # Enumeration-strategy caches.
        self._loads: Optional[List[Event]] = None
        self._rf_candidate_lists: Optional[List[List[Optional[Event]]]] = None
        self._coherence_orders: Optional[List[CoherenceOrder]] = None
        self._coherence_positions: Optional[List[Dict[Event, int]]] = None

        # SAT-strategy caches.
        self._skeleton: Optional[Encoding] = None
        self._solver: Optional[SatSolver] = None

    # ------------------------------------------------------------------
    # kernel-strategy caches
    # ------------------------------------------------------------------
    @property
    def candidate_space_built(self) -> bool:
        """True once some strategy has built its candidate space."""
        return (
            self._indexed is not None
            or self._rf_candidate_lists is not None
            or self._skeleton is not None
        )

    def indexed(self) -> IndexedExecution:
        """Return the bitset-indexed execution, building it once."""
        assert self.execution is not None
        if self._indexed is None:
            self._indexed = IndexedExecution(self.execution)
        return self._indexed

    def po_mask(self, model: ModelLike, stats=None, kernel=None) -> int:
        """Return the model's po-pair truth vector over the indexed execution.

        This is the one model-dependent quantity both the explicit kernel
        and the SAT assumptions derive from.  Cached by IR digest; a hit
        increments ``stats.po_edge_cache_hits``.  ``kernel`` selects the
        mask evaluator (a :class:`~repro.native.backend.KernelBackend`);
        the default is the bigint closure lowering.  All kernels compute
        identical masks, so the digest cache is shared between them.
        """
        compiled = as_compiled(model)
        digest = compiled.digest
        mask = self._po_masks.get(digest)
        if mask is not None:
            if stats is not None:
                stats.po_edge_cache_hits += 1
            return mask
        if kernel is None:
            mask = compiled.mask_program(self.indexed())
        else:
            mask = kernel.po_pair_mask(self.indexed(), compiled)
        self._po_masks[digest] = mask
        return mask

    def po_masks_column(self, compiled_models, stats=None, kernel=None) -> List[int]:
        """Return the whole column's po-pair masks, batch-evaluating misses.

        The streaming pipeline answers each test for the full model space
        exactly once, so the common case is every digest missing; the
        misses go through the kernel's :meth:`~repro.native.backend.
        KernelBackend.po_pair_masks` — one combined-program evaluation for
        the column instead of one call per model.  Hits count toward
        ``stats.po_edge_cache_hits`` exactly like :meth:`po_mask`.
        """
        masks = self._po_masks
        missing = []
        for compiled in compiled_models:
            if compiled.digest not in masks:
                missing.append(compiled)
            elif stats is not None:
                stats.po_edge_cache_hits += 1
        if missing:
            indexed = self.indexed()
            if kernel is None:
                for compiled in missing:
                    masks[compiled.digest] = compiled.mask_program(indexed)
            else:
                for compiled, mask in zip(missing, kernel.po_pair_masks(indexed, missing)):
                    masks[compiled.digest] = mask
        return [masks[compiled.digest] for compiled in compiled_models]

    def po_edge_pairs(self, model: ModelLike, stats=None, kernel=None) -> List[IndexEdge]:
        """Return the model's program-order edges as kernel index pairs.

        Cached by IR digest; a hit increments ``stats.po_edge_cache_hits``.
        The miss path is deliberately flat — one digest lookup per cache,
        the mask evaluated inline — because the streaming pipeline hits it
        once per (test, model) with nothing warm.  ``kernel`` selects the
        mask evaluator exactly as in :meth:`po_mask`.
        """
        compiled = model if isinstance(model, CompiledModel) else compile_model(model)
        digest = compiled.digest
        pairs = self._po_pairs_by_digest.get(digest)
        if pairs is not None:
            if stats is not None:
                stats.po_edge_cache_hits += 1
            return pairs
        indexed = self.indexed()
        mask = self._po_masks.get(digest)
        if mask is None:
            if kernel is None:
                mask = compiled.mask_program(indexed)
            else:
                mask = kernel.po_pair_mask(indexed, compiled)
            self._po_masks[digest] = mask
        pairs = [pair for p, pair in enumerate(indexed.po_pairs) if (mask >> p) & 1]
        self._po_pairs_by_digest[digest] = pairs
        return pairs

    def kernel_verdict(self, pairs: List[IndexEdge], kernel=None, stats=None) -> bool:
        """Return (computing once per distinct po-edge set) the kernel verdict.

        The explicit kernel's verdict depends on the indexed execution and
        the po edges alone, and ``po_edge_pairs`` emits edges in a fixed
        scan order, so the edge tuple is a sound memo key across models —
        distinct models frequently force identical edges on a small test.
        It is also sound across kernel backends (they are bit-identical),
        so the memo is shared; an *actual* search (a memo miss) increments
        ``stats.native_searches`` or ``stats.fallback_searches`` by where
        it ran.
        """
        key = tuple(pairs)
        verdict = self._kernel_verdicts.get(key)
        if verdict is None:
            if kernel is None:
                verdict = kernel_allowed(self.indexed(), pairs)
            else:
                verdict = kernel.allowed(self.indexed(), pairs)
                if stats is not None:
                    if kernel.is_native:
                        stats.native_searches += 1
                    else:
                        stats.fallback_searches += 1
            self._kernel_verdicts[key] = verdict
        return verdict

    def program_order_edges(self, model: ModelLike, stats=None) -> List[HbEdge]:
        """Return the model's program-order edges as event triples.

        Cached by IR digest; a hit increments ``stats.po_edge_cache_hits``.
        Deliberately computed through the per-pair evaluator lowering, not
        the bitmask one, so the enumeration oracle stays independent of the
        kernel's vectorised path.
        """
        assert self.execution is not None
        compiled = as_compiled(model)
        edges = self._po_edges_by_digest.get(compiled.digest)
        if edges is not None:
            if stats is not None:
                stats.po_edge_cache_hits += 1
            return edges
        edges = [
            (earlier, later, "po")
            for earlier, later in forced_po_pairs(self.execution, compiled)
        ]
        self._po_edges_by_digest[compiled.digest] = edges
        return edges

    # ------------------------------------------------------------------
    # enumeration-strategy caches
    # ------------------------------------------------------------------
    def read_from_space(self) -> Tuple[List[Event], List[List[Optional[Event]]]]:
        """Return (loads, per-load read-from candidates), computing once."""
        assert self.execution is not None
        if self._rf_candidate_lists is None:
            self._loads = self.execution.loads()
            self._rf_candidate_lists = [
                read_from_candidates(self.execution, load) for load in self._loads
            ]
        return self._loads, self._rf_candidate_lists

    def coherence_orders(self) -> List[CoherenceOrder]:
        """Return every admissible per-location store order, computing once."""
        assert self.execution is not None
        if self._coherence_orders is None:
            self._coherence_orders = list(enumerate_coherence_orders(self.execution))
        return self._coherence_orders

    def coherence_positions(self, stats=None) -> List[Dict[Event, int]]:
        """Return per-order store-position maps aligned with
        :meth:`coherence_orders`, computing once.

        A cached return increments ``stats.coherence_cache_hits``: every hit
        is a ``forced_edges`` sweep that skipped rebuilding the maps.
        """
        if self._coherence_positions is None:
            self._coherence_positions = [
                coherence_position_map(coherence) for coherence in self.coherence_orders()
            ]
        elif stats is not None:
            stats.coherence_cache_hits += 1
        return self._coherence_positions

    # ------------------------------------------------------------------
    # SAT-strategy caches
    # ------------------------------------------------------------------
    def skeleton(self) -> Encoding:
        """Return the model-independent CNF skeleton, encoding once."""
        assert self.execution is not None
        if self._skeleton is None:
            self._skeleton = encode_skeleton(self.execution)
        return self._skeleton

    def solver(self) -> SatSolver:
        """Return the persistent incremental solver over the skeleton."""
        if self._solver is None:
            self._solver = SatSolver(self.skeleton().cnf)
        return self._solver
