"""Per-test cached state shared by every model of an exploration.

A :class:`TestContext` owns everything about one litmus test that does *not*
depend on the memory model being checked:

* the evaluated :class:`~repro.core.execution.Execution` (or the evaluation
  error when the candidate outcome is malformed) — evaluated exactly once,
  however many models are checked against the test;
* the enumerated read-from candidate lists and coherence orders the explicit
  backend iterates over (today this enumeration is repeated per model);
* the model-independent CNF skeleton and the persistent incremental
  :class:`~repro.sat.solver.SatSolver` the SAT backend instantiates per
  model through assumption literals, reusing learned clauses across models.

Everything is built lazily so a context only pays for the strategy that
actually uses it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.checker.encoder import Encoding, encode_skeleton
from repro.checker.relations import (
    CoherenceOrder,
    enumerate_coherence_orders,
    read_from_candidates,
)
from repro.core.events import Event
from repro.core.execution import Execution, ExecutionError
from repro.core.expr import ExprError
from repro.core.litmus import LitmusTest
from repro.sat.solver import SatSolver


class TestContext:
    """Cached model-independent state for one litmus test."""

    def __init__(self, test: LitmusTest) -> None:
        self.test = test
        self.execution: Optional[Execution] = None
        self.error: str = ""
        try:
            self.execution = test.execution()
        except (ExecutionError, ExprError) as error:
            self.error = f"execution cannot be evaluated: {error}"

        # Explicit-strategy caches.
        self._loads: Optional[List[Event]] = None
        self._rf_candidate_lists: Optional[List[List[Optional[Event]]]] = None
        self._coherence_orders: Optional[List[CoherenceOrder]] = None

        # SAT-strategy caches.
        self._skeleton: Optional[Encoding] = None
        self._solver: Optional[SatSolver] = None

    # ------------------------------------------------------------------
    # explicit-strategy caches
    # ------------------------------------------------------------------
    @property
    def candidate_space_built(self) -> bool:
        """True once either strategy has built its candidate space."""
        return self._rf_candidate_lists is not None or self._skeleton is not None

    def read_from_space(self) -> Tuple[List[Event], List[List[Optional[Event]]]]:
        """Return (loads, per-load read-from candidates), computing once."""
        assert self.execution is not None
        if self._rf_candidate_lists is None:
            self._loads = self.execution.loads()
            self._rf_candidate_lists = [
                read_from_candidates(self.execution, load) for load in self._loads
            ]
        return self._loads, self._rf_candidate_lists

    def coherence_orders(self) -> List[CoherenceOrder]:
        """Return every admissible per-location store order, computing once."""
        assert self.execution is not None
        if self._coherence_orders is None:
            self._coherence_orders = list(enumerate_coherence_orders(self.execution))
        return self._coherence_orders

    # ------------------------------------------------------------------
    # SAT-strategy caches
    # ------------------------------------------------------------------
    def skeleton(self) -> Encoding:
        """Return the model-independent CNF skeleton, encoding once."""
        assert self.execution is not None
        if self._skeleton is None:
            self._skeleton = encode_skeleton(self.execution)
        return self._skeleton

    def solver(self) -> SatSolver:
        """Return the persistent incremental solver over the skeleton."""
        if self._solver is None:
            self._solver = SatSolver(self.skeleton().cnf)
        return self._solver
