"""The batched, cached, incremental checking engine.

:class:`CheckEngine` owns the full verdict-matrix computation
(``models × tests -> bool``) behind the comparison, exploration and
outcome-enumeration entry points.  Compared with dispatching one independent
admissibility check per (model, test) pair, the engine:

* evaluates each test's :class:`~repro.core.execution.Execution` exactly
  once and shares it — plus the enumerated read-from/coherence candidate
  spaces or the CNF skeleton — across every model
  (:class:`~repro.engine.context.TestContext`);
* on the SAT backend, keeps one persistent incremental solver per test and
  answers each model through ``solve(assumptions=...)`` over per-pair
  selector literals, reusing learned clauses between models;
* optionally fans the per-test columns of the matrix out over a
  ``jobs``-wide multiprocessing pool;
* reports what it did through :class:`EngineStats`.

The matrix is computed test-major: all models of one test are answered
consecutively, which is exactly the access pattern the per-test caches and
the incremental solver are built for.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.compile import CompiledModel, compile_model
from repro.core.litmus import LitmusTest
from repro.core.model import MemoryModel
from repro.engine.context import TestContext
from repro.engine.strategies import CheckStrategy, make_strategy
from repro.util import faults

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.cache.verdict import VerdictCache

#: One model's verdicts over a test suite, in suite order.
VerdictVector = Tuple[bool, ...]


@dataclass
class EngineStats:
    """Counters describing the work a :class:`CheckEngine` performed."""

    #: individual (test, model) admissibility checks answered
    checks_performed: int = 0
    #: litmus-test executions evaluated (one per distinct test)
    executions_evaluated: int = 0
    #: tests whose candidate outcome could not be evaluated at all
    execution_failures: int = 0
    #: checks answered from an already-built test context
    context_cache_hits: int = 0
    #: read-from/coherence spaces or CNF skeletons built (one per test)
    candidate_spaces_built: int = 0
    #: per-model program-order edge sets answered from the context cache
    po_edge_cache_hits: int = 0
    #: coherence-position map sweeps answered from the context cache
    coherence_cache_hits: int = 0
    #: incremental SAT calls issued (SAT backend only)
    solver_calls: int = 0
    #: learned clauses already present at the start of a SAT call, summed
    #: over all calls (SAT backend only) — the clause-reuse metric
    clauses_reused: int = 0
    #: distinct model IRs this engine compiled (one per semantic digest)
    models_compiled: int = 0
    #: model resolutions answered from the engine's compile cache (repeat
    #: objects and re-registered structurally equal models alike)
    compile_cache_hits: int = 0
    #: IR DAG nodes first seen by this engine across its compiled models
    ir_nodes_created: int = 0
    #: IR DAG nodes shared with previously compiled models — the
    #: cross-model common-subexpression metric
    ir_cse_hits: int = 0
    #: resolved kernel backend name ("native", "python", "bigint"; empty for
    #: strategies that have no kernel, e.g. SAT and enumeration)
    kernel_backend: str = ""
    #: kernel searches answered by the C extension
    native_searches: int = 0
    #: kernel searches answered by a Python kernel (bigint or word-array)
    fallback_searches: int = 0
    #: synthesis queries answered (one per SynthesisEngine.synthesize call)
    synth_runs: int = 0
    #: incremental SAT solves issued by the synthesis SAT strategy (one per
    #: distinct po-pair mask per observation)
    synth_solver_calls: int = 0
    #: synthesis verdicts answered by a model sharing an already-solved
    #: po-pair mask — the SAT strategy's model-grouping metric
    synth_group_hits: int = 0
    #: checks answered from the digest-keyed verdict cache without touching
    #: the strategy (or, for serve's fast path, the engine lock)
    verdict_cache_hits: int = 0
    #: cacheable checks the verdict cache could not answer
    verdict_cache_misses: int = 0
    #: verdicts appended to the cache's persistent tier
    verdict_cache_persisted: int = 0
    #: column verdicts derived from an already-searched po-mask by the
    #: monotonicity order instead of a fresh kernel search (derive mode)
    derived_verdicts: int = 0

    def as_dict(self) -> Dict[str, int]:
        # Not dataclasses.asdict: that deep-copies recursively and shows up
        # in serve's per-request profile; a plain attribute walk is ~10x
        # cheaper and produces the identical dict.
        return {name: getattr(self, name) for name in _STAT_FIELDS}

    def merge(self, other: Dict[str, int]) -> None:
        """Fold a worker's counters into this one.

        ``kernel_backend`` is a label, not a counter: the worker's value is
        adopted when this side has none (workers inherit the parent engine's
        resolved kernel, so the labels agree whenever both are set).
        """
        for key, value in other.items():
            if key == "kernel_backend":
                if value and not self.kernel_backend:
                    self.kernel_backend = value
                continue
            setattr(self, key, getattr(self, key) + value)

    def snapshot(self) -> "EngineStats":
        return replace(self)

    def since(self, before: "EngineStats") -> "EngineStats":
        """Return the counter deltas relative to an earlier snapshot (the
        ``kernel_backend`` label carries over unchanged)."""
        deltas = {
            key: value - getattr(before, key)
            for key, value in self.as_dict().items()
            if key != "kernel_backend"
        }
        return EngineStats(kernel_backend=self.kernel_backend, **deltas)

    def describe(self) -> str:
        parts = [
            f"{self.checks_performed} checks",
            f"{self.executions_evaluated} executions evaluated",
            f"{self.context_cache_hits} cache hits",
        ]
        if self.po_edge_cache_hits:
            parts.append(f"{self.po_edge_cache_hits} po-edge cache hits")
        if self.coherence_cache_hits:
            parts.append(f"{self.coherence_cache_hits} coherence cache hits")
        if self.solver_calls:
            parts.append(f"{self.solver_calls} SAT calls")
            parts.append(f"{self.clauses_reused} learned clauses reused")
        if self.models_compiled:
            parts.append(f"{self.models_compiled} models compiled")
        if self.ir_cse_hits:
            parts.append(f"{self.ir_cse_hits} IR subformulas shared")
        if self.synth_runs:
            parts.append(
                f"{self.synth_runs} synthesis runs "
                f"({self.synth_solver_calls} synthesis SAT calls, "
                f"{self.synth_group_hits} mask-group hits)"
            )
        if self.verdict_cache_hits or self.verdict_cache_misses:
            parts.append(
                f"{self.verdict_cache_hits} verdict-cache hits "
                f"({self.verdict_cache_misses} misses, "
                f"{self.verdict_cache_persisted} persisted)"
            )
        if self.derived_verdicts:
            parts.append(f"{self.derived_verdicts} verdicts derived by monotonicity")
        if self.kernel_backend:
            searches = (
                self.native_searches
                if self.kernel_backend == "native"
                else self.fallback_searches
            )
            parts.append(f"{searches} kernel searches ({self.kernel_backend})")
        return ", ".join(parts)


_STAT_FIELDS = tuple(field.name for field in fields(EngineStats))

#: Strategy names whose verdicts the digest-keyed cache may serve.  All
#: shipped strategies are pure functions of (model IR, canonical test), so
#: their verdicts agree; legacy checker wrappers are excluded because their
#: semantics are whatever the wrapped object does.
_CACHEABLE_STRATEGIES = frozenset(("explicit", "enumeration", "sat"))


class CheckEngine:
    """Single entry point for batched admissibility checking.

    Args:
        backend: ``"explicit"`` (default), ``"sat"``, a strategy instance, or
            a legacy checker object (``ExplicitChecker``, ``SatChecker``,
            ``ReferenceChecker``, ...).
        jobs: number of worker processes for :meth:`verdict_matrix`; ``1``
            computes serially in-process.
        kernel: kernel backend for the explicit strategy — ``"auto"``
            (default; consults ``REPRO_KERNEL`` and prefers the C extension
            when built), ``"native"``, ``"python"``, ``"bigint"``, or a
            :class:`~repro.native.backend.KernelBackend` instance.  Resolved
            once, at construction; ignored by non-kernel backends.
        verdict_cache: optional :class:`~repro.cache.verdict.VerdictCache`
            interposed in :meth:`check`/:meth:`check_column`: cacheable
            (formula model, canonicalizable test) pairs are answered from
            the cache when warm and stored after computing otherwise.
            Verdicts are bit-identical with or without the cache.

    Thread safety: every stats/cache mutation happens under :attr:`lock`
    (an ``RLock``), so concurrent callers — serve's worker pool — observe
    exact counters; a cache-hit :meth:`check` takes only the cache's own
    lock plus one brief :attr:`lock` acquisition for the counters.
    """

    def __init__(
        self,
        backend: object = "explicit",
        jobs: int = 1,
        kernel: object = None,
        verdict_cache: Optional["VerdictCache"] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.backend = backend
        self.jobs = jobs
        self.strategy: CheckStrategy = make_strategy(backend, kernel=kernel)
        #: the resolved kernel backend, when the strategy has one
        self.kernel = getattr(self.strategy, "kernel", None)
        #: serialises stats/cache mutation; public so the serve dispatcher
        #: can hold it across a whole request for exact stats attribution
        self.lock = threading.RLock()
        self.verdict_cache = verdict_cache
        self._cacheable = self.strategy.name in _CACHEABLE_STRATEGIES
        self.stats = EngineStats()
        if self.kernel is not None:
            self.stats.kernel_backend = self.kernel.name
        # id(test) -> (test, context); the test reference keeps the id stable.
        self._contexts: Dict[int, Tuple[LitmusTest, TestContext]] = {}
        # id(model) -> (model, compiled); resolution goes through the
        # process-global compile cache, but hit/miss accounting is kept
        # engine-local (via the digest and node-id sets below) so the
        # compile/CSE counters are deterministic per engine regardless of
        # what other engines in the process compiled first.
        self._compiled: Dict[int, Tuple[MemoryModel, CompiledModel]] = {}
        self._seen_digests: set = set()
        self._seen_node_ids: set = set()
        # id(model sequence) -> (sequence, compiled list): one lookup per
        # verdict column instead of one per model — the streaming pipeline
        # resolves the same model-space list hundreds of thousands of times.
        self._compiled_spaces: Dict[int, Tuple[Sequence[MemoryModel], List[CompiledModel]]] = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def ensure(
        cls, checker: Optional[object] = None, jobs: int = 1, kernel: object = None
    ) -> "CheckEngine":
        """Return ``checker`` if it already is an engine, else wrap it."""
        if isinstance(checker, CheckEngine):
            return checker
        return cls(
            backend=checker if checker is not None else "explicit",
            jobs=jobs,
            kernel=kernel,
        )

    # ------------------------------------------------------------------
    # contexts
    # ------------------------------------------------------------------
    def context(self, test: LitmusTest, cache: bool = True) -> TestContext:
        """Return (building and, by default, caching) the test's context.

        ``cache=False`` builds a throwaway context: callers checking a
        one-shot test (e.g. outcome enumeration, where every candidate
        outcome is a fresh ``LitmusTest``) would otherwise grow the
        identity-keyed cache without any chance of a later hit.
        """
        key = id(test)
        with self.lock:
            entry = self._contexts.get(key)
            if entry is not None and entry[0] is test:
                self.stats.context_cache_hits += 1
                return entry[1]
            context = TestContext(test)
            self.stats.executions_evaluated += 1
            if context.execution is None:
                self.stats.execution_failures += 1
            if cache:
                self._contexts[key] = (test, context)
            return context

    # ------------------------------------------------------------------
    # model compilation
    # ------------------------------------------------------------------
    def compiled(self, model: MemoryModel) -> CompiledModel:
        """Return the model's :class:`~repro.compile.CompiledModel`.

        A repeat resolution — the same object again, or a structurally
        equal model under any name — counts as a ``compile_cache_hits``;
        the first sight of a new IR digest counts as ``models_compiled``
        and attributes its DAG nodes to ``ir_nodes_created`` /
        ``ir_cse_hits`` depending on whether an earlier model of this
        engine already contained them (cross-model CSE).
        """
        with self.lock:
            return self._compiled_locked(model)

    def _compiled_locked(self, model: MemoryModel) -> CompiledModel:
        key = id(model)
        entry = self._compiled.get(key)
        if entry is not None and entry[0] is model:
            self.stats.compile_cache_hits += 1
            return entry[1]
        compiled = compile_model(model)
        if len(self._compiled) >= 4096:
            # A long-lived serve session fed ever-new inline model documents
            # must not pin one model object per request forever; recompiling
            # after a clear is an intern-table walk, and the digest/node-id
            # sets below (tiny, and what the counters key on) are kept.
            self._compiled.clear()
            self._compiled_spaces.clear()
        self._compiled[key] = (model, compiled)
        if compiled.digest in self._seen_digests:
            self.stats.compile_cache_hits += 1
        else:
            self._seen_digests.add(compiled.digest)
            self.stats.models_compiled += 1
            seen = self._seen_node_ids
            for node_id in compiled.node_ids:
                if node_id in seen:
                    self.stats.ir_cse_hits += 1
                else:
                    seen.add(node_id)
                    self.stats.ir_nodes_created += 1
        return compiled

    def compiled_all(self, models: Sequence[MemoryModel]) -> List[CompiledModel]:
        """Resolve a whole model sequence, memoized by sequence identity.

        Counts exactly what per-model :meth:`compiled` calls would count, so
        the compile counters stay deterministic.
        """
        with self.lock:
            entry = self._compiled_spaces.get(id(models))
            if entry is not None and entry[0] is models:
                self.stats.compile_cache_hits += len(entry[1])
                return entry[1]
            compiled = [self._compiled_locked(model) for model in models]
            if len(self._compiled_spaces) >= 64:
                # Callers building a fresh list per call would otherwise pin
                # every list forever; the per-model cache stays warm regardless.
                self._compiled_spaces.clear()
            self._compiled_spaces[id(models)] = (models, compiled)
            return compiled

    def precompile(self, models: Sequence[MemoryModel]) -> None:
        """Eagerly compile a model space (worker warm-up)."""
        self.compiled_all(models)

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------
    def check(self, test: LitmusTest, model: MemoryModel, cache: bool = True) -> bool:
        """Return whether ``model`` allows the candidate execution of ``test``."""
        # Fault point guarded by the armed-table truthiness so the hot
        # check path costs one list check when no fault is injected.
        if faults._FAULTS:
            faults.fire("engine.check", test=test.name, model=model.name)
        vcache = self.verdict_cache
        key = None
        if vcache is not None and self._cacheable:
            key = vcache.key_for(test, model)
            if key is not None:
                verdict = vcache.get(key)
                if verdict is not None:
                    with self.lock:
                        self.stats.checks_performed += 1
                        self.stats.verdict_cache_hits += 1
                    return verdict
        with self.lock:
            if key is not None:
                self.stats.verdict_cache_misses += 1
            compiled = self._compiled_locked(model)
            context = self.context(test, cache=cache)
            self.stats.checks_performed += 1
            if context.execution is None:
                verdict = False
            else:
                verdict = self.strategy.check(context, compiled, self.stats)
        if key is not None and vcache.put(key, verdict) and vcache.store is not None:
            with self.lock:
                self.stats.verdict_cache_persisted += 1
        return verdict

    def verdict_vector(
        self, model: MemoryModel, tests: Sequence[LitmusTest]
    ) -> VerdictVector:
        """Return one model's verdicts over a suite, in suite order."""
        return tuple(self.check(test, model) for test in tests)

    def verdict_matrix(
        self, models: Sequence[MemoryModel], tests: Sequence[LitmusTest]
    ) -> Dict[str, VerdictVector]:
        """Compute every model's verdict vector over the suite.

        The computation is test-major and, with ``jobs > 1``, fans the
        per-test columns out over a multiprocessing pool.
        """
        models = list(models)
        tests = list(tests)
        if self.jobs > 1 and len(tests) > 1:
            columns = self._columns_parallel(models, tests)
        else:
            columns = [self._column(test, models) for test in tests]
        return {
            model.name: tuple(columns[t][m] for t in range(len(tests)))
            for m, model in enumerate(models)
        }

    def _column(self, test: LitmusTest, models: Sequence[MemoryModel]) -> List[bool]:
        """One test's verdicts for every model (the unit of parallel work).

        Deliberately NOT unified with :meth:`check_column`: this path goes
        through :meth:`check` per model, so ``context_cache_hits`` counts
        one hit per (model, test) repeat — the counter semantics the
        serialized ``EngineStats`` documents pin — while ``check_column``
        resolves the context once per column for the streaming hot path.
        """
        return [self.check(test, model) for model in models]

    def check_column(
        self,
        test: LitmusTest,
        models: Sequence[MemoryModel],
        retain: bool = False,
        derive: bool = False,
    ) -> List[bool]:
        """One test's verdicts for every model, then evict the test's context.

        This is the streaming access pattern of the exhaustive-enumeration
        pipeline: each test is answered for the whole model space exactly
        once (sharing the context across the column) and never seen again,
        so by default its context is dropped instead of growing the cache
        unboundedly.  ``retain=True`` keeps it, matching :meth:`check`.

        ``derive=True`` lets strategies with a column fast path derive some
        verdicts by po-mask monotonicity (a model forcing a superset of
        another's program order admits a subset of its witnesses) instead
        of searching each distinct mask; verdicts are identical but the
        search counters differ, so the brute pipeline keeps it off.
        """
        if faults._FAULTS:
            faults.fire("engine.check_column", test=test.name)
        vcache = self.verdict_cache
        keys: Optional[List[Optional[Tuple[str, str]]]] = None
        if vcache is not None and self._cacheable:
            test_digest = vcache.test_digest(test)
            if test_digest is not None:
                keys = []
                cached: List[Optional[bool]] = []
                for model in models:
                    model_digest = vcache.model_digest(model)
                    key = (model_digest, test_digest) if model_digest else None
                    keys.append(key)
                    cached.append(vcache.get(key) if key is not None else None)
                if cached and all(verdict is not None for verdict in cached):
                    with self.lock:
                        self.stats.checks_performed += len(models)
                        self.stats.verdict_cache_hits += len(models)
                    return [bool(verdict) for verdict in cached]
        with self.lock:
            if keys is not None:
                self.stats.verdict_cache_misses += sum(
                    1
                    for key, verdict in zip(keys, cached)
                    if key is not None and verdict is None
                )
            compiled_models = self.compiled_all(models)
            context = self.context(test, cache=retain)
            self.stats.checks_performed += len(models)
            if context.execution is None:
                column = [False] * len(models)
            else:
                strategy = self.strategy
                stats = self.stats
                # Strategies with a column fast path (the explicit kernel
                # batches the whole column's masks through one combined
                # program) take it; verdicts and counters are identical to
                # the per-model loop.
                column_check = getattr(strategy, "check_column", None)
                if column_check is not None:
                    column = column_check(
                        context, compiled_models, stats, derive=derive
                    )
                else:
                    column = [
                        strategy.check(context, compiled, stats)
                        for compiled in compiled_models
                    ]
        if keys is not None:
            persisted = 0
            for key, verdict in zip(keys, column):
                if key is not None and vcache.put(key, verdict):
                    persisted += 1
            if persisted and vcache.store is not None:
                with self.lock:
                    self.stats.verdict_cache_persisted += persisted
        return column

    # ------------------------------------------------------------------
    # parallel fan-out
    # ------------------------------------------------------------------
    def _columns_parallel(
        self, models: List[MemoryModel], tests: List[LitmusTest]
    ) -> List[List[bool]]:
        import multiprocessing

        global _WORKER_STATE
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            # No fork on this platform: fall back to the serial path rather
            # than requiring models/tests to be picklable.
            return [self._column(test, models) for test in tests]

        # Workers inherit the state through fork, so nothing but the column
        # index travels down and nothing but booleans + counters travels up.
        # The lock keeps concurrent engines in one process from clobbering
        # each other's state between set and fork.
        # Workers re-resolve the kernel from the parent's *resolved* name so
        # every process runs the same backend the parent picked.
        kernel_name = self.kernel.name if self.kernel is not None else None
        with _WORKER_STATE_LOCK:
            _WORKER_STATE = (self.backend, kernel_name, models, tests)
            processes = min(self.jobs, len(tests))
            try:
                with context.Pool(processes=processes) as pool:
                    results = pool.map(_worker_column, range(len(tests)))
            finally:
                _WORKER_STATE = None

        columns: List[List[bool]] = [[] for _ in tests]
        with self.lock:
            for index, column, worker_stats in results:
                columns[index] = column
                self.stats.merge(worker_stats)
        return columns


#: State inherited by forked workers; see :meth:`CheckEngine._columns_parallel`.
_WORKER_STATE: Optional[
    Tuple[object, Optional[str], List[MemoryModel], List[LitmusTest]]
] = None
_WORKER_STATE_LOCK = threading.Lock()


def _worker_column(index: int) -> Tuple[int, List[bool], Dict[str, int]]:
    assert _WORKER_STATE is not None
    backend, kernel_name, models, tests = _WORKER_STATE
    engine = CheckEngine(backend=backend, jobs=1, kernel=kernel_name)
    column = engine._column(tests[index], models)
    return index, column, engine.stats.as_dict()
