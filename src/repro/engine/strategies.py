"""Checking strategies: how the engine decides one (test, model) verdict.

Each strategy answers "does ``model`` allow ``test``'s candidate execution?"
for a :class:`~repro.engine.context.TestContext`, exploiting the context's
model-independent caches:

* :class:`ExplicitStrategy` — the explicit-enumeration semantics of
  :class:`~repro.checker.explicit.ExplicitChecker`, but iterating cached
  read-from candidate lists and coherence orders instead of re-enumerating
  them for every model;
* :class:`IncrementalSatStrategy` — the SAT semantics of
  :class:`~repro.checker.sat_checker.SatChecker`, but answering every model
  with one persistent incremental solver over the shared CNF skeleton via
  ``solve(assumptions=...)``, so learned clauses carry over between models;
* :class:`LegacyCheckerStrategy` — adapter for any object with the classic
  ``check(test, model)`` interface (e.g. the brute-force
  :class:`~repro.checker.reference.ReferenceChecker`), still benefiting
  from the cached execution when the checker exposes ``check_execution``.
"""

from __future__ import annotations

from itertools import product
from typing import TYPE_CHECKING, Protocol

from repro.checker.relations import (
    forced_edges,
    happens_before_graph,
    program_order_edges,
)
from repro.core.model import MemoryModel
from repro.engine.context import TestContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.engine.engine import EngineStats


class CheckStrategy(Protocol):
    """The strategy interface the engine dispatches to."""

    name: str

    def check(self, context: TestContext, model: MemoryModel, stats: "EngineStats") -> bool:
        """Return whether the model allows the context's execution."""
        ...


class ExplicitStrategy:
    """Explicit enumeration over the context's cached candidate spaces."""

    name = "explicit"

    def check(self, context: TestContext, model: MemoryModel, stats: "EngineStats") -> bool:
        execution = context.execution
        assert execution is not None
        first_visit = not context.candidate_space_built
        loads, candidate_lists = context.read_from_space()
        if first_visit:
            stats.candidate_spaces_built += 1
        if any(not candidates for candidates in candidate_lists):
            return False  # some load's observed value is unobtainable

        po_edges = program_order_edges(execution, model)
        coherence_orders = context.coherence_orders()
        for choice in product(*candidate_lists):
            read_from = dict(zip(loads, choice))
            for coherence in coherence_orders:
                edges = forced_edges(execution, model, read_from, coherence, po_edges)
                if edges is None:
                    continue
                if happens_before_graph(execution, edges).is_acyclic():
                    return True
        return False


class IncrementalSatStrategy:
    """One persistent assumption-based SAT solver per test."""

    name = "sat"

    def check(self, context: TestContext, model: MemoryModel, stats: "EngineStats") -> bool:
        execution = context.execution
        assert execution is not None
        first_visit = not context.candidate_space_built
        skeleton = context.skeleton()
        if first_visit:
            stats.candidate_spaces_built += 1
        if skeleton.trivially_unsat:
            return False

        solver = context.solver()
        stats.clauses_reused += solver.num_learned_clauses()
        stats.solver_calls += 1
        return solver.solve(skeleton.po_assumptions(model)).satisfiable


class LegacyCheckerStrategy:
    """Adapter around a classic ``check(test, model)`` backend object."""

    def __init__(self, checker: object) -> None:
        self.checker = checker
        self.name = getattr(checker, "name", type(checker).__name__)

    def check(self, context: TestContext, model: MemoryModel, stats: "EngineStats") -> bool:
        check_execution = getattr(self.checker, "check_execution", None)
        if context.execution is not None and callable(check_execution):
            result = check_execution(context.execution, model, test_name=context.test.name)
        else:
            result = self.checker.check(context.test, model)
        return bool(result.allowed)


def make_strategy(backend: object) -> CheckStrategy:
    """Resolve a backend specification into a strategy.

    ``backend`` is either a strategy name (``"explicit"`` or ``"sat"``), an
    existing strategy instance, or a legacy checker object exposing
    ``check(test, model)``.
    """
    from repro.checker.explicit import ExplicitChecker
    from repro.checker.sat_checker import SatChecker

    if isinstance(backend, str):
        if backend == "explicit":
            return ExplicitStrategy()
        if backend == "sat":
            return IncrementalSatStrategy()
        raise ValueError(f"unknown engine backend {backend!r} (expected 'explicit' or 'sat')")
    if isinstance(backend, (ExplicitStrategy, IncrementalSatStrategy, LegacyCheckerStrategy)):
        return backend
    # The two classic backends become the engine's native strategies.  A
    # preprocessing-enabled SatChecker keeps its own per-check pipeline.
    if isinstance(backend, ExplicitChecker):
        return ExplicitStrategy()
    if isinstance(backend, SatChecker) and not backend.use_preprocessing:
        return IncrementalSatStrategy()
    if hasattr(backend, "check"):
        return LegacyCheckerStrategy(backend)
    raise TypeError(f"cannot build a checking strategy from {backend!r}")
