"""Checking strategies: how the engine decides one (test, model) verdict.

Each strategy answers "does ``model`` allow ``test``'s candidate execution?"
for a :class:`~repro.engine.context.TestContext`, exploiting the context's
model-independent caches:

* :class:`ExplicitStrategy` — the pruned backtracking search of
  :mod:`repro.checker.kernel` over the context's cached
  :class:`~repro.checker.kernel.IndexedExecution`, with the per-model
  program-order edges answered from the context's bitset formula evaluator
  and cached across repeated checks;
* :class:`EnumerationStrategy` — the pre-kernel explicit semantics (full
  read-from × coherence product, one digraph acyclicity check per complete
  combination), kept as the in-engine oracle path; it reuses the context's
  cached candidate spaces, program-order edges and coherence-position maps;
* :class:`IncrementalSatStrategy` — the SAT semantics of
  :class:`~repro.checker.sat_checker.SatChecker`, but answering every model
  with one persistent incremental solver over the shared CNF skeleton via
  ``solve(assumptions=...)``, so learned clauses carry over between models;
* :class:`LegacyCheckerStrategy` — adapter for any object with the classic
  ``check(test, model)`` interface (e.g. the brute-force
  :class:`~repro.checker.reference.ReferenceChecker`), still benefiting
  from the cached execution when the checker exposes ``check_execution``.
"""

from __future__ import annotations

from itertools import product
from typing import TYPE_CHECKING, Dict, List, Protocol

from repro.checker.relations import forced_edges, happens_before_graph
from repro.engine.context import ModelLike, TestContext, as_compiled

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.engine.engine import EngineStats


class CheckStrategy(Protocol):
    """The strategy interface the engine dispatches to.

    The engine resolves each model through its compile cache and hands
    strategies the :class:`~repro.compile.CompiledModel`; strategies called
    directly also accept a raw :class:`~repro.core.model.MemoryModel`
    (compiled on the fly).
    """

    name: str

    def check(self, context: TestContext, model: ModelLike, stats: "EngineStats") -> bool:
        """Return whether the model allows the context's execution."""
        ...


class ExplicitStrategy:
    """Pruned backtracking over the context's bitset-indexed execution.

    The search and the mask-program evaluation run on a pluggable
    :class:`~repro.native.backend.KernelBackend` — the C extension, the
    pure-Python word-array port, or the original bigint kernel — resolved
    once at construction (see :func:`repro.native.backend.resolve_kernel`
    for the ``auto``/``REPRO_KERNEL`` selection order).  All backends are
    bit-identical; only speed and the native/fallback counters differ.
    """

    name = "explicit"

    def __init__(self, kernel: object = None) -> None:
        from repro.native.backend import resolve_kernel

        self.kernel = resolve_kernel(kernel)

    def check(self, context: TestContext, model: ModelLike, stats: "EngineStats") -> bool:
        first_visit = not context.candidate_space_built
        indexed = context.indexed()
        if first_visit:
            stats.candidate_spaces_built += 1
        if indexed.infeasible:
            return False  # some load's observed value is unobtainable
        pairs = context.po_edge_pairs(model, stats, kernel=self.kernel)
        return context.kernel_verdict(pairs, kernel=self.kernel, stats=stats)

    def check_column(
        self,
        context: TestContext,
        compiled_models,
        stats: "EngineStats",
        derive: bool = False,
    ) -> List[bool]:
        """A whole model column in one pass — the streaming hot path.

        The column's masks are batch-evaluated through the kernel's
        combined program (one evaluation for the space, registers shared
        across models), then deduplicated by mask value before the pair
        lists are even built: distinct models frequently force identical
        edges on a small test, and the mask determines the pairs, so one
        kernel search (further memoized by edge tuple in the context)
        answers every model that shares it.  Verdicts and search counters
        are identical to per-model :meth:`check` calls.

        ``derive=True`` additionally exploits that verdicts are monotone
        in the forced-po mask: more forced edges means fewer candidate
        executions, so ``allowed`` at a superset mask implies ``allowed``
        at every subset, and ``forbidden`` at a subset implies
        ``forbidden`` at every superset.  Visiting the distinct masks in
        descending popcount order lets many verdicts be read off already-
        searched masks; those shortcuts count as ``derived_verdicts``
        instead of kernel searches, which is why the flag defaults off —
        the brute pipeline's counters stay byte-identical.
        """
        first_visit = not context.candidate_space_built
        indexed = context.indexed()
        if first_visit:
            stats.candidate_spaces_built += 1
        if indexed.infeasible:
            return [False] * len(compiled_models)
        masks = context.po_masks_column(compiled_models, stats, kernel=self.kernel)
        po_pairs = indexed.po_pairs
        kernel = self.kernel
        is_native = kernel.is_native
        # The mask determines the pair list, so the per-column mask memo
        # subsumes the context's tuple-keyed verdict memo (the context is
        # seen exactly once on this path) without the tuple hashing.
        verdict_of_mask: Dict[int, bool] = {}
        if derive:
            ordered = sorted(
                set(masks), key=lambda mask: (-bin(mask).count("1"), mask)
            )
            for mask in ordered:
                verdict = None
                for known_mask, known in verdict_of_mask.items():
                    if known and (mask & known_mask) == mask:
                        verdict = True  # subset of an allowed mask
                        break
                    if not known and (mask & known_mask) == known_mask:
                        verdict = False  # superset of a forbidden mask
                        break
                if verdict is not None:
                    stats.derived_verdicts += 1
                else:
                    pairs = [
                        pair for p, pair in enumerate(po_pairs) if (mask >> p) & 1
                    ]
                    verdict = kernel.allowed(indexed, pairs)
                    if is_native:
                        stats.native_searches += 1
                    else:
                        stats.fallback_searches += 1
                verdict_of_mask[mask] = verdict
            return [verdict_of_mask[mask] for mask in masks]
        verdicts = []
        for mask in masks:
            verdict = verdict_of_mask.get(mask)
            if verdict is None:
                pairs = [pair for p, pair in enumerate(po_pairs) if (mask >> p) & 1]
                verdict = kernel.allowed(indexed, pairs)
                if is_native:
                    stats.native_searches += 1
                else:
                    stats.fallback_searches += 1
                verdict_of_mask[mask] = verdict
            verdicts.append(verdict)
        return verdicts


class EnumerationStrategy:
    """Exhaustive (rf, co) product enumeration over the context's caches.

    The pre-kernel explicit semantics, kept selectable (backend name
    ``"enumeration"``) as the oracle the kernel strategy is cross-validated
    against.  Unlike the standalone
    :class:`~repro.checker.reference.EnumerationChecker` it reuses the
    context's cached program-order edges and coherence-position maps, so
    repeated ``forced_edges`` calls stop recomputing them.
    """

    name = "enumeration"

    def check(self, context: TestContext, model: ModelLike, stats: "EngineStats") -> bool:
        execution = context.execution
        assert execution is not None
        compiled = as_compiled(model)
        first_visit = not context.candidate_space_built
        loads, candidate_lists = context.read_from_space()
        if first_visit:
            stats.candidate_spaces_built += 1
        if any(not candidates for candidates in candidate_lists):
            return False  # some load's observed value is unobtainable

        po_edges = context.program_order_edges(compiled, stats)
        coherence_orders = context.coherence_orders()
        coherence_positions = context.coherence_positions(stats)
        for choice in product(*candidate_lists):
            read_from = dict(zip(loads, choice))
            for coherence, positions in zip(coherence_orders, coherence_positions):
                edges = forced_edges(
                    execution, compiled.model, read_from, coherence, po_edges, positions
                )
                if edges is None:
                    continue
                if happens_before_graph(execution, edges).is_acyclic():
                    return True
        return False


class IncrementalSatStrategy:
    """One persistent assumption-based SAT solver per test.

    The per-model assumptions are derived from the same IR-memoized po-pair
    bitmask the explicit kernel consumes (:meth:`TestContext.po_mask`), so
    across the models of a space each distinct subformula's truth vector is
    computed once per test no matter which backends ask.
    """

    name = "sat"

    def check(self, context: TestContext, model: ModelLike, stats: "EngineStats") -> bool:
        execution = context.execution
        assert execution is not None
        compiled = as_compiled(model)
        first_visit = not context.candidate_space_built
        skeleton = context.skeleton()
        if first_visit:
            stats.candidate_spaces_built += 1
        if skeleton.trivially_unsat:
            return False

        solver = context.solver()
        stats.clauses_reused += solver.num_learned_clauses()
        stats.solver_calls += 1
        assumptions = skeleton.po_assumptions_from_mask(
            context.po_mask(compiled, stats)
        )
        return solver.solve(assumptions).satisfiable


class LegacyCheckerStrategy:
    """Adapter around a classic ``check(test, model)`` backend object."""

    def __init__(self, checker: object) -> None:
        self.checker = checker
        self.name = getattr(checker, "name", type(checker).__name__)

    def check(self, context: TestContext, model: ModelLike, stats: "EngineStats") -> bool:
        model = as_compiled(model).model  # legacy checkers take the raw model
        check_execution = getattr(self.checker, "check_execution", None)
        if context.execution is not None and callable(check_execution):
            result = check_execution(context.execution, model, test_name=context.test.name)
        else:
            result = self.checker.check(context.test, model)
        return bool(result.allowed)


def make_strategy(backend: object, kernel: object = None) -> CheckStrategy:
    """Resolve a backend specification into a strategy.

    ``backend`` is either a strategy name (``"explicit"``, ``"enumeration"``
    or ``"sat"``), an existing strategy instance, or a legacy checker object
    exposing ``check(test, model)``.  ``kernel`` selects the explicit
    strategy's kernel backend (see :mod:`repro.native.backend`); strategy
    instances keep the kernel they were built with, and non-kernel
    strategies ignore it.
    """
    from repro.checker.explicit import ExplicitChecker
    from repro.checker.reference import EnumerationChecker
    from repro.checker.sat_checker import SatChecker

    if isinstance(backend, str):
        if backend == "explicit":
            return ExplicitStrategy(kernel=kernel)
        if backend == "enumeration":
            return EnumerationStrategy()
        if backend == "sat":
            return IncrementalSatStrategy()
        raise ValueError(
            f"unknown engine backend {backend!r} "
            "(expected 'explicit', 'enumeration' or 'sat')"
        )
    if isinstance(
        backend,
        (ExplicitStrategy, EnumerationStrategy, IncrementalSatStrategy, LegacyCheckerStrategy),
    ):
        return backend
    # The classic backends become the engine's native strategies.  A
    # preprocessing-enabled SatChecker keeps its own per-check pipeline.
    if isinstance(backend, ExplicitChecker):
        return ExplicitStrategy(kernel=kernel if kernel is not None else backend.kernel)
    if isinstance(backend, EnumerationChecker):
        return EnumerationStrategy()
    if isinstance(backend, SatChecker) and not backend.use_preprocessing:
        return IncrementalSatStrategy()
    if hasattr(backend, "check"):
        return LegacyCheckerStrategy(backend)
    raise TypeError(f"cannot build a checking strategy from {backend!r}")
