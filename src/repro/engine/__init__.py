"""Batched, cached, incremental admissibility checking.

This package is the single entry point the comparison, exploration,
outcome-enumeration and CLI layers use to compute verdicts:

* :class:`~repro.engine.engine.CheckEngine` — owns the
  ``models × tests -> bool`` verdict-matrix computation, with per-test
  caching, an incremental assumption-based SAT mode, an optional
  multiprocessing fan-out, and :class:`~repro.engine.engine.EngineStats`
  reporting;
* :class:`~repro.engine.context.TestContext` — the per-test
  model-independent caches (execution, candidate spaces, CNF skeleton,
  persistent solver);
* :mod:`repro.engine.strategies` — the explicit / incremental-SAT / legacy
  checking strategies beneath the engine.
"""

from repro.engine.context import TestContext
from repro.engine.engine import CheckEngine, EngineStats, VerdictVector
from repro.engine.strategies import (
    CheckStrategy,
    EnumerationStrategy,
    ExplicitStrategy,
    IncrementalSatStrategy,
    LegacyCheckerStrategy,
    make_strategy,
)

__all__ = [
    "CheckEngine",
    "EngineStats",
    "VerdictVector",
    "TestContext",
    "CheckStrategy",
    "EnumerationStrategy",
    "ExplicitStrategy",
    "IncrementalSatStrategy",
    "LegacyCheckerStrategy",
    "make_strategy",
]
