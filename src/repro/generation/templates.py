"""The seven litmus-test templates of Figure 2.

The proof of Theorem 1 (Section 3.2) constructs, for every possible *critical
segment* (the segment containing the edge on which two models disagree), a
two-thread litmus test with at most six memory accesses.  The case analysis
gives seven templates:

====  =================================================================
case  critical segment / construction
====  =================================================================
1     read-write segment; duplicated with swapped addresses (load buffering)
2     write-write segment; duplicated with swapped addresses plus one
      observer read per thread (the 2+2W shape)
3a    read-read segment against a write-write segment (message passing)
3b    read-read segment against a merged write-read + read-write segment
4     write-read segment to different addresses; duplicated with swapped
      addresses (store buffering)
5a    write-read segment to the same address followed by a read-read
      segment; duplicated (the L8 shape)
5b    write-read segment to the same address followed by a read-write
      segment; the read-write segment is copied to the second thread and an
      observer read witnesses the coherence edge (the L9 shape)
====  =================================================================

Every template is instantiated with concrete local segments
(:class:`~repro.generation.segments.Segment`); instantiation produces a
:class:`~repro.generation.sketch.TestSketch` whose address constraints may be
unsatisfiable (for example a same-address read-read segment paired with a
different-address write-write segment in case 3a) — such instantiations are
counted but yield no test, exactly as in Corollary 1's counting.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence, Tuple

from repro.core.litmus import LitmusTest
from repro.generation.segments import AccessKind, AddressRelation, Segment, SegmentKind
from repro.generation.sketch import AccessSketch, TestSketch


class TemplateCase(str, Enum):
    """The seven template cases of Figure 2."""

    CASE_1_READ_WRITE = "1"
    CASE_2_WRITE_WRITE = "2"
    CASE_3A_READ_READ_VS_WRITE_WRITE = "3a"
    CASE_3B_READ_READ_VS_WRITE_READ_WRITE = "3b"
    CASE_4_WRITE_READ_DIFFERENT = "4"
    CASE_5A_WRITE_READ_SAME_PLUS_READ_READ = "5a"
    CASE_5B_WRITE_READ_SAME_PLUS_READ_WRITE = "5b"

    @property
    def expected_segment_kinds(self) -> Tuple[SegmentKind, ...]:
        """The segment kinds this template consumes, in order."""
        return {
            TemplateCase.CASE_1_READ_WRITE: (SegmentKind.RW,),
            TemplateCase.CASE_2_WRITE_WRITE: (SegmentKind.WW,),
            TemplateCase.CASE_3A_READ_READ_VS_WRITE_WRITE: (SegmentKind.RR, SegmentKind.WW),
            TemplateCase.CASE_3B_READ_READ_VS_WRITE_READ_WRITE: (
                SegmentKind.RR,
                SegmentKind.WR,
                SegmentKind.RW,
            ),
            TemplateCase.CASE_4_WRITE_READ_DIFFERENT: (SegmentKind.WR,),
            TemplateCase.CASE_5A_WRITE_READ_SAME_PLUS_READ_READ: (SegmentKind.WR, SegmentKind.RR),
            TemplateCase.CASE_5B_WRITE_READ_SAME_PLUS_READ_WRITE: (SegmentKind.WR, SegmentKind.RW),
        }[self]


@dataclass(frozen=True)
class TemplateInstance:
    """One template applied to concrete segments."""

    case: TemplateCase
    segments: Tuple[Segment, ...]

    @property
    def label(self) -> str:
        parts = "+".join(segment.label for segment in self.segments)
        return f"C{self.case.value}({parts})"

    def sketch(self) -> TestSketch:
        """Build the symbolic sketch for this instantiation."""
        builder = _BUILDERS[self.case]
        return builder(*self.segments)

    def to_litmus_test(self) -> Optional[LitmusTest]:
        """Concretise into a litmus test, or None when infeasible."""
        description = f"template case {self.case.value} with segments " + ", ".join(
            segment.label for segment in self.segments
        )
        return self.sketch().to_litmus_test(self.label, description)


def instantiate_template(case: TemplateCase, segments: Sequence[Segment]) -> TemplateInstance:
    """Build a :class:`TemplateInstance`, validating segment kinds."""
    expected = case.expected_segment_kinds
    if len(segments) != len(expected):
        raise ValueError(
            f"template case {case.value} needs {len(expected)} segments, got {len(segments)}"
        )
    for segment, kind in zip(segments, expected):
        if segment.kind is not kind:
            raise ValueError(
                f"template case {case.value} expects segment kinds "
                f"{[k.value for k in expected]}, got {[s.kind.value for s in segments]}"
            )
    return TemplateInstance(case, tuple(segments))


# ----------------------------------------------------------------------
# sketch builders, one per case
# ----------------------------------------------------------------------
def _apply_relation(sketch: TestSketch, relation: AddressRelation, first: str, second: str) -> None:
    if relation is AddressRelation.SAME:
        sketch.require_equal(first, second)
    else:
        sketch.require_different(first, second)


def _build_case_1(segment: Segment) -> TestSketch:
    """Critical read-write segment, duplicated with swapped addresses (LB)."""
    sketch = TestSketch()
    sketch.add_thread(
        [
            AccessSketch(AccessKind.READ, "a0"),
            AccessSketch(AccessKind.WRITE, "a1", segment.link),
        ]
    )
    sketch.add_thread(
        [
            AccessSketch(AccessKind.READ, "b0"),
            AccessSketch(AccessKind.WRITE, "b1", segment.link),
        ]
    )
    _apply_relation(sketch, segment.relation, "a0", "a1")
    _apply_relation(sketch, segment.relation, "b0", "b1")
    # The copy reads what the original writes and vice versa.
    sketch.require_equal("b0", "a1")
    sketch.require_equal("b1", "a0")
    sketch.set_read_from((0, 0), (1, 1))
    sketch.set_read_from((1, 0), (0, 1))
    return sketch


def _build_case_2(segment: Segment) -> TestSketch:
    """Critical write-write segment, duplicated, plus observer reads (2+2W)."""
    sketch = TestSketch()
    sketch.add_thread(
        [
            AccessSketch(AccessKind.WRITE, "a0"),
            AccessSketch(AccessKind.WRITE, "a1", segment.link),
            AccessSketch(AccessKind.READ, "a2"),
        ]
    )
    sketch.add_thread(
        [
            AccessSketch(AccessKind.WRITE, "b0"),
            AccessSketch(AccessKind.WRITE, "b1", segment.link),
            AccessSketch(AccessKind.READ, "b2"),
        ]
    )
    _apply_relation(sketch, segment.relation, "a0", "a1")
    _apply_relation(sketch, segment.relation, "b0", "b1")
    # Addresses are swapped between the threads.
    sketch.require_equal("b0", "a1")
    sketch.require_equal("b1", "a0")
    # Each observer read sees the value of the *first* write of the other thread.
    sketch.require_equal("a2", "b0")
    sketch.require_equal("b2", "a0")
    sketch.set_read_from((0, 2), (1, 0))
    sketch.set_read_from((1, 2), (0, 0))
    return sketch


def _build_case_3a(read_read: Segment, write_write: Segment) -> TestSketch:
    """Critical read-read segment against a write-write segment (MP)."""
    sketch = TestSketch()
    sketch.add_thread(
        [
            AccessSketch(AccessKind.READ, "a0"),
            AccessSketch(AccessKind.READ, "a1", read_read.link),
        ]
    )
    sketch.add_thread(
        [
            AccessSketch(AccessKind.WRITE, "b0"),
            AccessSketch(AccessKind.WRITE, "b1", write_write.link),
        ]
    )
    _apply_relation(sketch, read_read.relation, "a0", "a1")
    _apply_relation(sketch, write_write.relation, "b0", "b1")
    # The first read observes the second write; the second read observes the
    # initial value of the first write's location.
    sketch.require_equal("a0", "b1")
    sketch.require_equal("a1", "b0")
    sketch.set_read_from((0, 0), (1, 1))
    sketch.set_read_from((0, 1), None)
    return sketch


def _build_case_3b(read_read: Segment, write_read: Segment, read_write: Segment) -> TestSketch:
    """Critical read-read segment against a merged write-read-write thread."""
    sketch = TestSketch()
    sketch.add_thread(
        [
            AccessSketch(AccessKind.READ, "a0"),
            AccessSketch(AccessKind.READ, "a1", read_read.link),
        ]
    )
    sketch.add_thread(
        [
            AccessSketch(AccessKind.WRITE, "b0"),
            AccessSketch(AccessKind.READ, "b1", write_read.link),
            AccessSketch(AccessKind.WRITE, "b2", read_write.link),
        ]
    )
    _apply_relation(sketch, read_read.relation, "a0", "a1")
    _apply_relation(sketch, write_read.relation, "b0", "b1")
    _apply_relation(sketch, read_write.relation, "b1", "b2")
    # Cycle structure: T2's final write feeds T1's first read; T1's second
    # read observes the initial value of T2's first write's location.
    sketch.require_equal("b2", "a0")
    sketch.require_equal("a1", "b0")
    sketch.set_read_from((0, 0), (1, 2))
    sketch.set_read_from((0, 1), None)
    # T2's middle read: forwarded from its own first write when the
    # write-read segment is same-address, otherwise it reads the initial
    # value of its (otherwise unconstrained) location.
    if write_read.relation is AddressRelation.SAME:
        sketch.set_read_from((1, 1), (1, 0))
    else:
        sketch.set_read_from((1, 1), None)
    return sketch


def _build_case_4(segment: Segment) -> TestSketch:
    """Critical write-read segment, duplicated with swapped addresses (SB)."""
    sketch = TestSketch()
    sketch.add_thread(
        [
            AccessSketch(AccessKind.WRITE, "a0"),
            AccessSketch(AccessKind.READ, "a1", segment.link),
        ]
    )
    sketch.add_thread(
        [
            AccessSketch(AccessKind.WRITE, "b0"),
            AccessSketch(AccessKind.READ, "b1", segment.link),
        ]
    )
    _apply_relation(sketch, segment.relation, "a0", "a1")
    _apply_relation(sketch, segment.relation, "b0", "b1")
    sketch.require_equal("b1", "a0")
    sketch.require_equal("b0", "a1")
    sketch.set_read_from((0, 1), None)
    sketch.set_read_from((1, 1), None)
    return sketch


def _build_case_5a(write_read: Segment, read_read: Segment) -> TestSketch:
    """Same-address write-read segment followed by a read-read segment (L8 shape)."""
    sketch = TestSketch()
    sketch.add_thread(
        [
            AccessSketch(AccessKind.WRITE, "a0"),
            AccessSketch(AccessKind.READ, "a1", write_read.link),
            AccessSketch(AccessKind.READ, "a2", read_read.link),
        ]
    )
    sketch.add_thread(
        [
            AccessSketch(AccessKind.WRITE, "b0"),
            AccessSketch(AccessKind.READ, "b1", write_read.link),
            AccessSketch(AccessKind.READ, "b2", read_read.link),
        ]
    )
    _apply_relation(sketch, write_read.relation, "a0", "a1")
    _apply_relation(sketch, write_read.relation, "b0", "b1")
    _apply_relation(sketch, read_read.relation, "a1", "a2")
    _apply_relation(sketch, read_read.relation, "b1", "b2")
    # The duplicated thread uses the other thread's location and vice versa.
    sketch.require_equal("a2", "b0")
    sketch.require_equal("b2", "a0")
    # Store forwarding in each thread when the critical segment is
    # same-address; otherwise the middle read sees the initial value.
    if write_read.relation is AddressRelation.SAME:
        sketch.set_read_from((0, 1), (0, 0))
        sketch.set_read_from((1, 1), (1, 0))
    else:
        sketch.set_read_from((0, 1), None)
        sketch.set_read_from((1, 1), None)
    sketch.set_read_from((0, 2), None)
    sketch.set_read_from((1, 2), None)
    return sketch


def _build_case_5b(write_read: Segment, read_write: Segment) -> TestSketch:
    """Same-address write-read segment followed by a read-write segment (L9 shape)."""
    sketch = TestSketch()
    sketch.add_thread(
        [
            AccessSketch(AccessKind.WRITE, "a0"),
            AccessSketch(AccessKind.READ, "a1", write_read.link),
            AccessSketch(AccessKind.WRITE, "a2", read_write.link),
        ]
    )
    sketch.add_thread(
        [
            AccessSketch(AccessKind.READ, "b0"),
            AccessSketch(AccessKind.WRITE, "b1", read_write.link),
            AccessSketch(AccessKind.READ, "b2"),
        ]
    )
    _apply_relation(sketch, write_read.relation, "a0", "a1")
    _apply_relation(sketch, read_write.relation, "a1", "a2")
    _apply_relation(sketch, read_write.relation, "b0", "b1")
    # T2's read observes T1's final write; T2's write targets T1's first
    # location and the trailing observer read witnesses the coherence edge by
    # seeing T1's first write.
    sketch.require_equal("b0", "a2")
    sketch.require_equal("b1", "a0")
    sketch.require_equal("b2", "a0")
    sketch.set_read_from((1, 0), (0, 2))
    sketch.set_read_from((1, 2), (0, 0))
    # Store forwarding (or initial value) for T1's middle read.
    if write_read.relation is AddressRelation.SAME:
        sketch.set_read_from((0, 1), (0, 0))
    else:
        sketch.set_read_from((0, 1), None)
    return sketch


_BUILDERS = {
    TemplateCase.CASE_1_READ_WRITE: _build_case_1,
    TemplateCase.CASE_2_WRITE_WRITE: _build_case_2,
    TemplateCase.CASE_3A_READ_READ_VS_WRITE_WRITE: _build_case_3a,
    TemplateCase.CASE_3B_READ_READ_VS_WRITE_READ_WRITE: _build_case_3b,
    TemplateCase.CASE_4_WRITE_READ_DIFFERENT: _build_case_4,
    TemplateCase.CASE_5A_WRITE_READ_SAME_PLUS_READ_READ: _build_case_5a,
    TemplateCase.CASE_5B_WRITE_READ_SAME_PLUS_READ_WRITE: _build_case_5b,
}
