"""Naive bounded enumeration of litmus tests.

Section 3.4 observes that enumerating *all* two-thread tests within the
Theorem 1 bound (up to three memory accesses per thread, optional fences,
all address and outcome choices) yields roughly a million tests even without
dependencies, that the optimisations of earlier work reduce this to a few
thousand, and that the template construction needs only a few hundred.  This
module implements the naive baseline so the benchmark suite can reproduce the
comparison:

* :func:`count_naive_tests` counts the space without materialising it;
* :func:`enumerate_naive_tests` yields the tests (optionally capped), using
  canonical location naming so the count is not inflated by pure renamings.

By default the stream is additionally collapsed by the full symmetry
reduction of :mod:`repro.pipeline.canonical` (thread permutation, location
renaming *and* value renaming — historically only location renaming was
deduplicated), so each kernel-distinct test appears once.  The raw
location-canonical stream — the space :func:`count_naive_tests` counts —
remains available as ``enumerate_naive_tests(raw=True)``.

The enumeration is parameterised so that both the paper's "no dependencies"
setting and richer settings can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.instructions import Fence, Instruction, Load, Store
from repro.core.litmus import LitmusTest
from repro.core.program import Program, Thread
from repro.util.naming import location_name


@dataclass(frozen=True)
class NaiveEnumerationConfig:
    """Parameters of the naive enumeration.

    The defaults mirror the Theorem 1 bound for the dependency-free setting:
    two threads, one to three memory accesses per thread, an optional fence
    between consecutive accesses, and at most four distinct locations.
    """

    max_accesses_per_thread: int = 3
    min_accesses_per_thread: int = 1
    num_threads: int = 2
    max_locations: int = 4
    allow_fences: bool = True

    def __post_init__(self) -> None:
        if self.min_accesses_per_thread < 1:
            raise ValueError("threads need at least one access")
        if self.max_accesses_per_thread < self.min_accesses_per_thread:
            raise ValueError("max accesses must be at least min accesses")
        if self.num_threads < 1:
            raise ValueError("at least one thread is required")


#: One symbolic access: kind ("R" or "W") and location index.
_Access = Tuple[str, int]
#: One thread shape: accesses plus fence positions (between consecutive accesses).
_ThreadShape = Tuple[Tuple[_Access, ...], Tuple[bool, ...]]


def _thread_shapes(config: NaiveEnumerationConfig) -> List[_ThreadShape]:
    """Enumerate the per-thread shapes (accesses, fences), canonically."""
    shapes: List[_ThreadShape] = []
    for length in range(config.min_accesses_per_thread, config.max_accesses_per_thread + 1):
        for kinds in product("RW", repeat=length):
            for locations in product(range(config.max_locations), repeat=length):
                accesses = tuple(zip(kinds, locations))
                fence_slots = max(length - 1, 0)
                fence_options = (
                    product((False, True), repeat=fence_slots)
                    if config.allow_fences
                    else [tuple([False] * fence_slots)]
                )
                for fences in fence_options:
                    shapes.append((accesses, tuple(fences)))
    return shapes


def _canonical_locations(thread_shapes: Sequence[_ThreadShape]) -> Optional[Dict[int, int]]:
    """Relabel locations by first appearance; None if the program skips indices."""
    mapping: Dict[int, int] = {}
    for accesses, _fences in thread_shapes:
        for _kind, location in accesses:
            if location not in mapping:
                mapping[location] = len(mapping)
    # Canonical form: the locations used must be exactly 0..n-1 in first-use order.
    if any(original != canonical for original, canonical in mapping.items()):
        return None
    return mapping


def _outcome_choices(thread_shapes: Sequence[_ThreadShape]) -> List[List[int]]:
    """For every read, the values it could observe (0 or any same-location write value)."""
    # Assign write values: per location, writes numbered 1.. in thread-major order.
    write_values: Dict[Tuple[int, int], int] = {}
    counter: Dict[int, int] = {}
    for thread_index, (accesses, _fences) in enumerate(thread_shapes):
        for access_index, (kind, location) in enumerate(accesses):
            if kind == "W":
                counter[location] = counter.get(location, 0) + 1
                write_values[(thread_index, access_index)] = counter[location]

    choices: List[List[int]] = []
    for thread_index, (accesses, _fences) in enumerate(thread_shapes):
        for access_index, (kind, location) in enumerate(accesses):
            if kind == "R":
                values = [0]
                for (other_thread, other_index), value in write_values.items():
                    other_location = thread_shapes[other_thread][0][other_index][1]
                    if other_location == location:
                        values.append(value)
                choices.append(sorted(set(values)))
    return choices


def count_naive_tests(config: NaiveEnumerationConfig = NaiveEnumerationConfig()) -> int:
    """Count the naive enumeration space without building the tests."""
    shapes = _thread_shapes(config)
    total = 0
    for combination in product(shapes, repeat=config.num_threads):
        if _canonical_locations(combination) is None:
            continue
        outcomes = 1
        for values in _outcome_choices(combination):
            outcomes *= len(values)
        total += outcomes
    return total


def enumerate_naive_tests(
    config: NaiveEnumerationConfig = NaiveEnumerationConfig(),
    limit: Optional[int] = None,
    raw: bool = False,
) -> Iterator[LitmusTest]:
    """Yield the naive enumeration as litmus tests (optionally capped).

    With ``raw=True`` every location-canonical test is yielded — the space
    :func:`count_naive_tests` counts.  By default the stream is further
    collapsed by the symmetry reduction of :mod:`repro.pipeline.canonical`
    (thread permutation, location renaming and value renaming), yielding
    the first-enumerated representative of each kernel-distinct class;
    ``limit`` then caps the number of *unique* tests.
    """
    if raw:
        yield from _enumerate_raw(config, limit)
    else:
        for _key, test in enumerate_canonical_naive_tests(config, limit):
            yield test


def _enumerate_raw(
    config: NaiveEnumerationConfig, limit: Optional[int]
) -> Iterator[LitmusTest]:
    """The historical stream: location-canonical, but symmetry-redundant."""
    shapes = _thread_shapes(config)
    produced = 0
    test_index = 0
    for combination in product(shapes, repeat=config.num_threads):
        if _canonical_locations(combination) is None:
            continue
        outcome_choices = _outcome_choices(combination)
        for outcome in product(*outcome_choices):
            test_index += 1
            if limit is not None and produced >= limit:
                return
            test = _build_test(combination, outcome, f"N{test_index}")
            produced += 1
            yield test


def enumerate_canonical_naive_tests(
    config: NaiveEnumerationConfig = NaiveEnumerationConfig(),
    limit: Optional[int] = None,
    index: Optional[object] = None,
) -> Iterator[Tuple[object, LitmusTest]]:
    """Yield ``(canonical_key, test)`` for each kernel-distinct naive test.

    This is the symmetry-reduced stream the exhaustive-verification
    pipeline consumes.  Canonical keys are computed directly on the
    enumeration's internal shape/outcome representation, so duplicate
    symmetry classes are rejected *before* any
    :class:`~repro.core.litmus.LitmusTest` is constructed — on the paper's
    Theorem 1 bound that skips materialising the vast majority of the
    roughly one million raw tests.

    Pass a :class:`~repro.pipeline.canonical.CanonicalIndex` as ``index``
    to observe the raw/unique counts or to dedup across several streams.
    """
    from repro.pipeline.canonical import CanonicalIndex, canonical_form

    if index is None:
        index = CanonicalIndex()
    shapes = _thread_shapes(config)
    produced = 0
    test_index = 0
    for combination in product(shapes, repeat=config.num_threads):
        if _canonical_locations(combination) is None:
            continue
        outcome_choices = _outcome_choices(combination)
        for outcome in product(*outcome_choices):
            test_index += 1
            if limit is not None and produced >= limit:
                return
            key = canonical_form(_abstract_items(combination, outcome))
            if not index.add(key):
                continue
            produced += 1
            yield key, _build_test(combination, outcome, f"N{test_index}")


def _abstract_items(
    thread_shapes: Sequence[_ThreadShape], outcome: Sequence[int]
) -> Tuple[Tuple[Tuple[str, object, object], ...], ...]:
    """The abstract shape of one enumerated test, without building it.

    Mirrors :func:`_build_test` exactly: write values numbered per location
    in thread-major order, outcome values consumed in read order.
    """
    write_values: Dict[Tuple[int, int], int] = {}
    counter: Dict[int, int] = {}
    for thread_index, (accesses, _fences) in enumerate(thread_shapes):
        for access_index, (kind, location) in enumerate(accesses):
            if kind == "W":
                counter[location] = counter.get(location, 0) + 1
                write_values[(thread_index, access_index)] = counter[location]

    outcome_iter = iter(outcome)
    threads = []
    for thread_index, (accesses, fences) in enumerate(thread_shapes):
        items = []
        for access_index, (kind, location) in enumerate(accesses):
            if access_index > 0 and fences[access_index - 1]:
                items.append(("F", "full", 0))
            if kind == "R":
                items.append(("R", location, next(outcome_iter)))
            else:
                items.append(("W", location, write_values[(thread_index, access_index)]))
        threads.append(tuple(items))
    return tuple(threads)


def _build_test(
    thread_shapes: Sequence[_ThreadShape], outcome: Sequence[int], name: str
) -> LitmusTest:
    threads: List[Thread] = []
    read_values: Dict[Tuple[int, int], int] = {}
    outcome_iter = iter(outcome)
    write_counter: Dict[int, int] = {}

    # First pass for write values (must match _outcome_choices numbering).
    write_values: Dict[Tuple[int, int], int] = {}
    for thread_index, (accesses, _fences) in enumerate(thread_shapes):
        for access_index, (kind, location) in enumerate(accesses):
            if kind == "W":
                write_counter[location] = write_counter.get(location, 0) + 1
                write_values[(thread_index, access_index)] = write_counter[location]

    for thread_index, (accesses, fences) in enumerate(thread_shapes):
        instructions: List[Instruction] = []
        register_serial = 0
        for access_index, (kind, location) in enumerate(accesses):
            if access_index > 0 and fences[access_index - 1]:
                instructions.append(Fence())
            location_label = location_name(location)
            if kind == "R":
                register = f"r{thread_index + 1}{register_serial}"
                register_serial += 1
                instructions.append(Load(register, location_label))
                read_values[(thread_index, len(instructions) - 1)] = next(outcome_iter)
            else:
                instructions.append(Store(location_label, write_values[(thread_index, access_index)]))
        threads.append(Thread(f"T{thread_index + 1}", instructions))

    return LitmusTest(name, Program(threads), read_values, description="naive enumeration")
