"""Naive bounded enumeration of litmus tests.

Section 3.4 observes that enumerating *all* two-thread tests within the
Theorem 1 bound (up to three memory accesses per thread, optional fences,
all address and outcome choices) yields roughly a million tests even without
dependencies, that the optimisations of earlier work reduce this to a few
thousand, and that the template construction needs only a few hundred.  This
module implements the naive baseline so the benchmark suite can reproduce the
comparison:

* :func:`count_naive_tests` counts the space without materialising it;
* :func:`enumerate_naive_tests` yields the tests (optionally capped), using
  canonical location naming so the count is not inflated by pure renamings.

By default the stream is additionally collapsed by the full symmetry
reduction of :mod:`repro.pipeline.canonical` (thread permutation, location
renaming *and* value renaming — historically only location renaming was
deduplicated), so each kernel-distinct test appears once.  The raw
location-canonical stream — the space :func:`count_naive_tests` counts —
remains available as ``enumerate_naive_tests(raw=True)``.

The enumeration is parameterised so that both the paper's "no dependencies"
setting and richer settings can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.instructions import Fence, Instruction, Load, Store
from repro.core.litmus import LitmusTest
from repro.core.program import Program, Thread
from repro.util.naming import location_name


@dataclass(frozen=True)
class NaiveEnumerationConfig:
    """Parameters of the naive enumeration.

    The defaults mirror the Theorem 1 bound for the dependency-free setting:
    two threads, one to three memory accesses per thread, an optional fence
    between consecutive accesses, and at most four distinct locations.
    """

    max_accesses_per_thread: int = 3
    min_accesses_per_thread: int = 1
    num_threads: int = 2
    max_locations: int = 4
    allow_fences: bool = True

    def __post_init__(self) -> None:
        if self.min_accesses_per_thread < 1:
            raise ValueError("threads need at least one access")
        if self.max_accesses_per_thread < self.min_accesses_per_thread:
            raise ValueError("max accesses must be at least min accesses")
        if self.num_threads < 1:
            raise ValueError("at least one thread is required")


#: One symbolic access: kind ("R" or "W") and location index.
_Access = Tuple[str, int]
#: One thread shape: accesses plus fence positions (between consecutive accesses).
_ThreadShape = Tuple[Tuple[_Access, ...], Tuple[bool, ...]]


def _thread_shapes(config: NaiveEnumerationConfig) -> List[_ThreadShape]:
    """Enumerate the per-thread shapes (accesses, fences), canonically."""
    shapes: List[_ThreadShape] = []
    for length in range(config.min_accesses_per_thread, config.max_accesses_per_thread + 1):
        for kinds in product("RW", repeat=length):
            for locations in product(range(config.max_locations), repeat=length):
                accesses = tuple(zip(kinds, locations))
                fence_slots = max(length - 1, 0)
                fence_options = (
                    product((False, True), repeat=fence_slots)
                    if config.allow_fences
                    else [tuple([False] * fence_slots)]
                )
                for fences in fence_options:
                    shapes.append((accesses, tuple(fences)))
    return shapes


def _canonical_locations(thread_shapes: Sequence[_ThreadShape]) -> Optional[Dict[int, int]]:
    """Relabel locations by first appearance; None if the program skips indices."""
    mapping: Dict[int, int] = {}
    for accesses, _fences in thread_shapes:
        for _kind, location in accesses:
            if location not in mapping:
                mapping[location] = len(mapping)
    # Canonical form: the locations used must be exactly 0..n-1 in first-use order.
    if any(original != canonical for original, canonical in mapping.items()):
        return None
    return mapping


def _outcome_choices(thread_shapes: Sequence[_ThreadShape]) -> List[List[int]]:
    """For every read, the values it could observe (0 or any same-location write value)."""
    # Assign write values: per location, writes numbered 1.. in thread-major order.
    write_values: Dict[Tuple[int, int], int] = {}
    counter: Dict[int, int] = {}
    for thread_index, (accesses, _fences) in enumerate(thread_shapes):
        for access_index, (kind, location) in enumerate(accesses):
            if kind == "W":
                counter[location] = counter.get(location, 0) + 1
                write_values[(thread_index, access_index)] = counter[location]

    choices: List[List[int]] = []
    for thread_index, (accesses, _fences) in enumerate(thread_shapes):
        for access_index, (kind, location) in enumerate(accesses):
            if kind == "R":
                values = [0]
                for (other_thread, other_index), value in write_values.items():
                    other_location = thread_shapes[other_thread][0][other_index][1]
                    if other_location == location:
                        values.append(value)
                choices.append(sorted(set(values)))
    return choices


def count_naive_tests(config: NaiveEnumerationConfig = NaiveEnumerationConfig()) -> int:
    """Count the naive enumeration space without building the tests."""
    shapes = _thread_shapes(config)
    total = 0
    for combination in product(shapes, repeat=config.num_threads):
        if _canonical_locations(combination) is None:
            continue
        outcomes = 1
        for values in _outcome_choices(combination):
            outcomes *= len(values)
        total += outcomes
    return total


def enumerate_naive_tests(
    config: NaiveEnumerationConfig = NaiveEnumerationConfig(),
    limit: Optional[int] = None,
    raw: bool = False,
) -> Iterator[LitmusTest]:
    """Yield the naive enumeration as litmus tests (optionally capped).

    With ``raw=True`` every location-canonical test is yielded — the space
    :func:`count_naive_tests` counts.  By default the stream is further
    collapsed by the symmetry reduction of :mod:`repro.pipeline.canonical`
    (thread permutation, location renaming and value renaming), yielding
    the first-enumerated representative of each kernel-distinct class;
    ``limit`` then caps the number of *unique* tests.
    """
    if raw:
        yield from _enumerate_raw(config, limit)
    else:
        for _key, test in enumerate_canonical_naive_tests(config, limit):
            yield test


def _enumerate_raw(
    config: NaiveEnumerationConfig, limit: Optional[int]
) -> Iterator[LitmusTest]:
    """The historical stream: location-canonical, but symmetry-redundant."""
    shapes = _thread_shapes(config)
    produced = 0
    test_index = 0
    for combination in product(shapes, repeat=config.num_threads):
        if _canonical_locations(combination) is None:
            continue
        outcome_choices = _outcome_choices(combination)
        for outcome in product(*outcome_choices):
            test_index += 1
            if limit is not None and produced >= limit:
                return
            test = _build_test(combination, outcome, f"N{test_index}")
            produced += 1
            yield test


def enumerate_canonical_naive_tests(
    config: NaiveEnumerationConfig = NaiveEnumerationConfig(),
    limit: Optional[int] = None,
    index: Optional[object] = None,
) -> Iterator[Tuple[object, LitmusTest]]:
    """Yield ``(canonical_key, test)`` for each kernel-distinct naive test.

    This is the symmetry-reduced stream the exhaustive-verification
    pipeline consumes.  Canonical keys are computed directly on the
    enumeration's internal shape/outcome representation, so duplicate
    symmetry classes are rejected *before* any
    :class:`~repro.core.litmus.LitmusTest` is constructed — on the paper's
    Theorem 1 bound that skips materialising the vast majority of the
    roughly one million raw tests.

    Pass a :class:`~repro.pipeline.canonical.CanonicalIndex` as ``index``
    to observe the raw/unique counts or to dedup across several streams.
    """
    for key, name, items in enumerate_canonical_naive_items(config, limit, index):
        yield key, test_from_items(items, name)


def enumerate_raw_naive_items(
    config: NaiveEnumerationConfig = NaiveEnumerationConfig(),
) -> Iterator[Tuple[str, Tuple[Tuple[Tuple[str, object, object], ...], ...]]]:
    """Yield ``(name, abstract_items)`` for every raw location-canonical test.

    The symmetry-redundant stream underneath
    :func:`enumerate_canonical_naive_items`: every test
    :func:`count_naive_tests` counts appears exactly once, numbered
    ``N1, N2, ...`` in enumeration order (the same numbering the canonical
    stream's surviving representatives carry).  The adaptive verification
    pipeline consumes this stream directly so its profile-based prefilter
    can *replace* the canonicalizer as the primary dedup.
    """
    shapes = _thread_shapes(config)
    test_index = 0
    for combination in product(shapes, repeat=config.num_threads):
        if _canonical_locations(combination) is None:
            continue
        outcome_choices = _outcome_choices(combination)
        # Per-combination item template: everything except the read values
        # is outcome-independent (2-tuples mark reads awaiting a value), so
        # the inner loop only fills values instead of rebuilding the shape.
        templates = _item_templates(combination)
        for outcome in product(*outcome_choices):
            test_index += 1
            position = 0
            threads = []
            for template in templates:
                row = []
                for item in template:
                    if len(item) == 2:
                        row.append(("R", item[1], outcome[position]))
                        position += 1
                    else:
                        row.append(item)
                threads.append(tuple(row))
            yield f"N{test_index}", tuple(threads)


def enumerate_canonical_naive_items(
    config: NaiveEnumerationConfig = NaiveEnumerationConfig(),
    limit: Optional[int] = None,
    index: Optional[object] = None,
) -> Iterator[Tuple[object, str, Tuple[Tuple[Tuple[str, object, object], ...], ...]]]:
    """Yield ``(canonical_key, name, abstract_items)`` per kernel-distinct test.

    The compact core of :func:`enumerate_canonical_naive_tests`: the
    abstract item tuples fully determine the representative
    (:func:`test_from_items` rebuilds it bit-for-bit), so a parallel
    pipeline can stream these small picklable tuples to worker processes
    and materialise the :class:`~repro.core.litmus.LitmusTest` objects
    there, instead of building every test in the enumerating process and
    pickling whole object graphs through the pool.
    """
    from repro.pipeline.canonical import CanonicalIndex, canonical_form

    if index is None:
        index = CanonicalIndex()
    produced = 0
    for name, items in enumerate_raw_naive_items(config):
        if limit is not None and produced >= limit:
            return
        key = canonical_form(items)
        if not index.add(key):
            continue
        produced += 1
        yield key, name, items


def test_from_items(
    items: Tuple[Tuple[Tuple[str, object, object], ...], ...], name: str
) -> LitmusTest:
    """Materialise one enumerated test from its abstract items.

    Equal to what :func:`_build_test` constructs at the same enumeration
    point: the abstract items already carry the thread-major write
    numbering and the outcome values in read order, so the rebuild is a
    straight transliteration (shared with the canonicalizer's
    :func:`~repro.pipeline.canonical.build_canonical_test`).
    """
    from repro.pipeline.canonical import build_canonical_test

    return build_canonical_test(items, name, description="naive enumeration")


def _item_templates(
    thread_shapes: Sequence[_ThreadShape],
) -> Tuple[Tuple[Tuple, ...], ...]:
    """Outcome-independent item rows of a shape combination.

    Identical to :func:`_abstract_items` except reads carry no value yet: a
    2-tuple ``("R", location)`` marks a read whose value the caller fills
    from the outcome, in the same thread-major read order.
    """
    write_values: Dict[Tuple[int, int], int] = {}
    counter: Dict[int, int] = {}
    for thread_index, (accesses, _fences) in enumerate(thread_shapes):
        for access_index, (kind, location) in enumerate(accesses):
            if kind == "W":
                counter[location] = counter.get(location, 0) + 1
                write_values[(thread_index, access_index)] = counter[location]
    rows = []
    for thread_index, (accesses, fences) in enumerate(thread_shapes):
        row: List[Tuple] = []
        for access_index, (kind, location) in enumerate(accesses):
            if access_index > 0 and fences[access_index - 1]:
                row.append(("F", "full", 0))
            if kind == "R":
                row.append(("R", location))
            else:
                row.append(("W", location, write_values[(thread_index, access_index)]))
        rows.append(tuple(row))
    return tuple(rows)


def _abstract_items(
    thread_shapes: Sequence[_ThreadShape], outcome: Sequence[int]
) -> Tuple[Tuple[Tuple[str, object, object], ...], ...]:
    """The abstract shape of one enumerated test, without building it.

    Mirrors :func:`_build_test` exactly: write values numbered per location
    in thread-major order, outcome values consumed in read order.
    """
    write_values: Dict[Tuple[int, int], int] = {}
    counter: Dict[int, int] = {}
    for thread_index, (accesses, _fences) in enumerate(thread_shapes):
        for access_index, (kind, location) in enumerate(accesses):
            if kind == "W":
                counter[location] = counter.get(location, 0) + 1
                write_values[(thread_index, access_index)] = counter[location]

    outcome_iter = iter(outcome)
    threads = []
    for thread_index, (accesses, fences) in enumerate(thread_shapes):
        items = []
        for access_index, (kind, location) in enumerate(accesses):
            if access_index > 0 and fences[access_index - 1]:
                items.append(("F", "full", 0))
            if kind == "R":
                items.append(("R", location, next(outcome_iter)))
            else:
                items.append(("W", location, write_values[(thread_index, access_index)]))
        threads.append(tuple(items))
    return tuple(threads)


def _build_test(
    thread_shapes: Sequence[_ThreadShape], outcome: Sequence[int], name: str
) -> LitmusTest:
    threads: List[Thread] = []
    read_values: Dict[Tuple[int, int], int] = {}
    outcome_iter = iter(outcome)
    write_counter: Dict[int, int] = {}

    # First pass for write values (must match _outcome_choices numbering).
    write_values: Dict[Tuple[int, int], int] = {}
    for thread_index, (accesses, _fences) in enumerate(thread_shapes):
        for access_index, (kind, location) in enumerate(accesses):
            if kind == "W":
                write_counter[location] = write_counter.get(location, 0) + 1
                write_values[(thread_index, access_index)] = write_counter[location]

    for thread_index, (accesses, fences) in enumerate(thread_shapes):
        instructions: List[Instruction] = []
        register_serial = 0
        for access_index, (kind, location) in enumerate(accesses):
            if access_index > 0 and fences[access_index - 1]:
                instructions.append(Fence())
            location_label = location_name(location)
            if kind == "R":
                register = f"r{thread_index + 1}{register_serial}"
                register_serial += 1
                instructions.append(Load(register, location_label))
                read_values[(thread_index, len(instructions) - 1)] = next(outcome_iter)
            else:
                instructions.append(Store(location_label, write_values[(thread_index, access_index)]))
        threads.append(Thread(f"T{thread_index + 1}", instructions))

    return LitmusTest(name, Program(threads), read_values, description="naive enumeration")
