"""Litmus-test generation.

* :mod:`repro.generation.segments` — enumeration of *local segments* (the
  building blocks of Section 3.3): an access pair, an optional fence or
  dependency between them, and a same/different address relation.
* :mod:`repro.generation.templates` — the seven templates extracted from the
  proof of Theorem 1 (Figure 2) and their instantiation into concrete
  litmus tests.
* :mod:`repro.generation.suite` — the complete template suite for a
  predicate set (the paper's 230- and 124-test suites).
* :mod:`repro.generation.counting` — Corollary 1 in closed form.
* :mod:`repro.generation.enumeration` — naive bounded enumeration (the
  ~10^6-test baseline the paper improves on).
* :mod:`repro.generation.named_tests` — Test A (Figure 1) and the nine
  contrasting tests L1–L9 (Figure 3).
"""

from repro.generation.segments import Segment, SegmentKind, LinkKind, AddressRelation, enumerate_segments
from repro.generation.templates import TemplateCase, TemplateInstance, instantiate_template
from repro.generation.suite import TemplateSuite, generate_suite
from repro.generation.counting import corollary1_count, segment_counts
from repro.generation.named_tests import TEST_A, L_TESTS, all_named_tests
from repro.generation.enumeration import NaiveEnumerationConfig, count_naive_tests, enumerate_naive_tests

__all__ = [
    "Segment",
    "SegmentKind",
    "LinkKind",
    "AddressRelation",
    "enumerate_segments",
    "TemplateCase",
    "TemplateInstance",
    "instantiate_template",
    "TemplateSuite",
    "generate_suite",
    "corollary1_count",
    "segment_counts",
    "TEST_A",
    "L_TESTS",
    "all_named_tests",
    "NaiveEnumerationConfig",
    "count_naive_tests",
    "enumerate_naive_tests",
]
