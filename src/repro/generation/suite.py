"""The complete template suite for a predicate set.

``generate_suite`` instantiates every template of Figure 2 with every
compatible combination of local segments.  Instantiations whose address
constraints are contradictory (for example a same-address read-read segment
against a different-address write-write segment in case 3a) are counted but
produce no test; the remaining tests form the suite used by the comparison
and exploration machinery.

For the paper's standard predicate set the suite has 230 instantiations
(124 without data dependencies), which is the number reported at the end of
Section 3.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.litmus import LitmusTest
from repro.core.predicates import NO_DEP_PREDICATES, PredicateSet, STANDARD_PREDICATES
from repro.generation.counting import SegmentCounts, corollary1_count, segment_counts
from repro.generation.segments import Segment, enumerate_segments
from repro.generation.templates import TemplateCase, TemplateInstance, instantiate_template


@dataclass(frozen=True)
class SuiteEntry:
    """One template instantiation and (when feasible) its litmus test."""

    instance: TemplateInstance
    test: Optional[LitmusTest]

    @property
    def feasible(self) -> bool:
        return self.test is not None


@dataclass
class TemplateSuite:
    """All template instantiations for a predicate set."""

    predicates: PredicateSet
    entries: List[SuiteEntry] = field(default_factory=list)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def tests(self) -> List[LitmusTest]:
        """Return the feasible litmus tests, in generation order."""
        return [entry.test for entry in self.entries if entry.test is not None]

    def num_instantiations(self) -> int:
        """Return the Corollary 1 count (feasible or not)."""
        return len(self.entries)

    def num_feasible(self) -> int:
        return sum(1 for entry in self.entries if entry.feasible)

    def per_case(self) -> Dict[str, int]:
        """Return the instantiation count per template case."""
        result: Dict[str, int] = {}
        for entry in self.entries:
            key = entry.instance.case.value
            result[key] = result.get(key, 0) + 1
        return result

    def segment_counts(self) -> SegmentCounts:
        return segment_counts(self.predicates)

    def __len__(self) -> int:
        return self.num_instantiations()

    def __iter__(self) -> Iterator[SuiteEntry]:
        return iter(self.entries)


def _segment_combinations(
    case: TemplateCase, predicates: PredicateSet
) -> Iterator[Tuple[Segment, ...]]:
    pools = [enumerate_segments(kind, predicates) for kind in case.expected_segment_kinds]
    for combination in product(*pools):
        yield combination


def generate_suite(predicates: PredicateSet = STANDARD_PREDICATES) -> TemplateSuite:
    """Generate the full template suite for ``predicates``.

    The result's :meth:`~TemplateSuite.num_instantiations` equals the
    Corollary 1 count for the same predicate set.
    """
    suite = TemplateSuite(predicates)
    for case in TemplateCase:
        for segments in _segment_combinations(case, predicates):
            instance = instantiate_template(case, segments)
            suite.entries.append(SuiteEntry(instance, instance.to_litmus_test()))
    expected = corollary1_count(segment_counts(predicates))
    actual = suite.num_instantiations()
    if actual != expected:  # defensive: the generator must agree with Corollary 1
        raise AssertionError(
            f"template suite has {actual} instantiations but Corollary 1 predicts {expected}"
        )
    return suite


def standard_suite() -> TemplateSuite:
    """The paper's 230-instantiation suite (with data dependencies)."""
    return generate_suite(STANDARD_PREDICATES)


def no_dependency_suite() -> TemplateSuite:
    """The paper's 124-instantiation suite (without data dependencies)."""
    return generate_suite(NO_DEP_PREDICATES)
