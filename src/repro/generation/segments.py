"""Local segments (Section 3.3).

A *segment* is a sequence of instructions that starts and ends with a memory
access and has no other memory access in between.  For litmus-test generation
a segment is characterised by

* the kinds of its two accesses (read/write, giving the four segment types
  RR, RW, WR, WW);
* the *link* between them: nothing, a fence, a data dependency or a control
  dependency (dependencies only exist when the first access is a read);
* whether the two accesses touch the same address or different addresses.

The number of distinct segments of each type, for a given predicate set, is
exactly what Corollary 1 needs: with the paper's standard predicate set the
counts are ``N_RW = N_RR = 6`` and ``N_WR = N_WW = 4``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List

from repro.core.predicates import PredicateSet, STANDARD_PREDICATES


class AccessKind(str, Enum):
    """The kind of one memory access."""

    READ = "R"
    WRITE = "W"


class SegmentKind(str, Enum):
    """The kind of a segment: first and second access kinds."""

    RR = "RR"
    RW = "RW"
    WR = "WR"
    WW = "WW"

    @property
    def first(self) -> AccessKind:
        return AccessKind(self.value[0])

    @property
    def second(self) -> AccessKind:
        return AccessKind(self.value[1])


class LinkKind(str, Enum):
    """What separates the two accesses of a segment."""

    NONE = "none"
    FENCE = "fence"
    DATA_DEP = "data"
    CTRL_DEP = "ctrl"


class AddressRelation(str, Enum):
    """Whether the two accesses of a segment touch the same location."""

    SAME = "same"
    DIFFERENT = "diff"


@dataclass(frozen=True)
class Segment:
    """A local segment: two accesses, a link, and an address relation."""

    kind: SegmentKind
    link: LinkKind
    relation: AddressRelation

    def __post_init__(self) -> None:
        if self.link in (LinkKind.DATA_DEP, LinkKind.CTRL_DEP) and self.kind.first is not AccessKind.READ:
            raise ValueError(
                f"{self.kind.value} segments cannot carry a {self.link.value} dependency: "
                "writes do not produce values for later instructions to depend on"
            )

    @property
    def label(self) -> str:
        """A compact label such as ``"RW[data,diff]"``."""
        return f"{self.kind.value}[{self.link.value},{self.relation.value}]"

    def __str__(self) -> str:
        return self.label


def available_links(kind: SegmentKind, predicates: PredicateSet) -> List[LinkKind]:
    """Return the link kinds available for ``kind`` segments under ``predicates``."""
    links = [LinkKind.NONE]
    if predicates.has_fence:
        links.append(LinkKind.FENCE)
    if kind.first is AccessKind.READ:
        if predicates.has_data_dep:
            links.append(LinkKind.DATA_DEP)
        if predicates.has_ctrl_dep:
            links.append(LinkKind.CTRL_DEP)
    return links


def available_relations(predicates: PredicateSet) -> List[AddressRelation]:
    """Return the address relations distinguishable under ``predicates``."""
    if predicates.has_same_addr:
        return [AddressRelation.SAME, AddressRelation.DIFFERENT]
    return [AddressRelation.DIFFERENT]


def enumerate_segments(
    kind: SegmentKind, predicates: PredicateSet = STANDARD_PREDICATES
) -> List[Segment]:
    """Enumerate the distinct segments of one kind for a predicate set.

    The enumeration order is deterministic: links in declaration order, then
    relations (same before different).
    """
    segments: List[Segment] = []
    for link in available_links(kind, predicates):
        for relation in available_relations(predicates):
            segments.append(Segment(kind, link, relation))
    return segments


def enumerate_all_segments(
    predicates: PredicateSet = STANDARD_PREDICATES,
) -> Dict[SegmentKind, List[Segment]]:
    """Enumerate the segments of every kind."""
    return {kind: enumerate_segments(kind, predicates) for kind in SegmentKind}


def segment_count(kind: SegmentKind, predicates: PredicateSet = STANDARD_PREDICATES) -> int:
    """Return the number of distinct segments of ``kind``."""
    return len(enumerate_segments(kind, predicates))
