"""The paper's named litmus tests.

* ``TEST_A`` — Figure 1's Test A, the store-forwarding example that is
  allowed under TSO but forbidden under SC and IBM 370.
* ``L1`` .. ``L9`` — Figure 3's nine contrasting litmus tests, which are
  sufficient to distinguish every pair of non-equivalent models in the
  paper's 90-model space.

Each test is written exactly as printed in the paper, including the
``t = r - r + k`` idiom used to manufacture data dependencies.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.expr import BinOp, Loc, Reg
from repro.core.instructions import Fence, Load, Op, Store
from repro.core.litmus import LitmusTest
from repro.core.program import Program, Thread


def _dep(dest: str, source: str, payload) -> Op:
    """Return ``dest = source - source + payload`` (a data dependency)."""
    return Op(dest, BinOp("+", BinOp("-", Reg(source), Reg(source)), payload))


# ----------------------------------------------------------------------
# Figure 1: Test A (TSO store forwarding)
# ----------------------------------------------------------------------
TEST_A = LitmusTest.from_register_outcome(
    "A",
    Program(
        [
            Thread("T1", [Store("X", 1), Fence(), Load("r1", "Y")]),
            Thread("T2", [Store("Y", 2), Load("r2", "Y"), Load("r3", "X")]),
        ]
    ),
    {"r1": 0, "r2": 2, "r3": 0},
    description=(
        "Figure 1: T2 forwards its own store to Y while its read of X is "
        "satisfied before T1's store becomes visible.  Allowed under TSO, "
        "forbidden under SC and IBM370."
    ),
)

# ----------------------------------------------------------------------
# Figure 3: the nine contrasting tests
# ----------------------------------------------------------------------
L1 = LitmusTest.from_register_outcome(
    "L1",
    Program(
        [
            Thread("T1", [Store("X", 1), Store("Y", 1)]),
            Thread("T2", [Load("r1", "Y"), Fence(), Load("r2", "X")]),
        ]
    ),
    {"r1": 1, "r2": 0},
    description="Message passing with a fenced observer: detects write-write reordering.",
)

L2 = LitmusTest.from_register_outcome(
    "L2",
    Program(
        [
            Thread("T1", [Store("X", 1), Store("X", 2)]),
            Thread("T2", [Load("r1", "X"), Load("r2", "X")]),
        ]
    ),
    {"r1": 2, "r2": 0},
    description="Same-address reads observed out of order: detects read-read reordering to the same address.",
)

L3 = LitmusTest.from_register_outcome(
    "L3",
    Program(
        [
            Thread("T1", [Store("X", 1), Fence(), Store("Y", 2)]),
            Thread("T2", [Load("r1", "Y"), Load("r2", "X")]),
        ]
    ),
    {"r1": 2, "r2": 0},
    description="Message passing with fenced writer: detects read-read reordering (different addresses).",
)

L4 = LitmusTest.from_register_outcome(
    "L4",
    Program(
        [
            Thread("T1", [Store("X", 1), Fence(), Store("Y", 2)]),
            Thread(
                "T2",
                [
                    Load("r1", "Y"),
                    _dep("t1", "r1", Loc("X")),
                    Load("r2", Reg("t1")),
                ],
            ),
        ]
    ),
    {"r1": 2, "r2": 0},
    description="Like L3 but the second read is address-dependent on the first: detects dependent read-read reordering.",
)

L5 = LitmusTest.from_register_outcome(
    "L5",
    Program(
        [
            Thread("T1", [Load("r1", "X"), Store("Y", 1)]),
            Thread("T2", [Load("r2", "Y"), Store("X", 1)]),
        ]
    ),
    {"r1": 1, "r2": 1},
    description="Load buffering: detects read-write reordering (independent, different addresses).",
)

L6 = LitmusTest.from_register_outcome(
    "L6",
    Program(
        [
            Thread("T1", [Load("r1", "X"), _dep("t1", "r1", 1), Store("Y", Reg("t1"))]),
            Thread("T2", [Load("r2", "Y"), _dep("t2", "r2", 1), Store("X", Reg("t2"))]),
        ]
    ),
    {"r1": 1, "r2": 1},
    description="Load buffering with data-dependent writes: detects dependent read-write reordering.",
)

L7 = LitmusTest.from_register_outcome(
    "L7",
    Program(
        [
            Thread("T1", [Store("X", 1), Load("r1", "Y")]),
            Thread("T2", [Store("Y", 1), Load("r2", "X")]),
        ]
    ),
    {"r1": 0, "r2": 0},
    description="Store buffering: detects write-read reordering to different addresses.",
)

L8 = LitmusTest.from_register_outcome(
    "L8",
    Program(
        [
            Thread(
                "T1",
                [
                    Store("X", 1),
                    Load("r1", "X"),
                    _dep("t1", "r1", Loc("Y")),
                    Load("r2", Reg("t1")),
                ],
            ),
            Thread(
                "T2",
                [
                    Store("Y", 1),
                    Load("r3", "Y"),
                    _dep("t2", "r3", Loc("X")),
                    Load("r4", Reg("t2")),
                ],
            ),
        ]
    ),
    {"r1": 1, "r2": 0, "r3": 1, "r4": 0},
    description=(
        "Store forwarding observed through dependent reads: detects write-read "
        "reordering to the same address in models that order (dependent) reads."
    ),
)

L9 = LitmusTest.from_register_outcome(
    "L9",
    Program(
        [
            Thread(
                "T1",
                [
                    Store("X", 1),
                    Load("r1", "X"),
                    _dep("t1", "r1", 1),
                    Store("Y", Reg("t1")),
                ],
            ),
            Thread(
                "T2",
                [
                    Load("r2", "Y"),
                    _dep("t2", "r2", 2),
                    Store("X", Reg("t2")),
                    Load("r3", "X"),
                ],
            ),
        ]
    ),
    {"r1": 1, "r2": 1, "r3": 1},
    description=(
        "Store forwarding observed through a dependent write chain: detects write-read "
        "reordering to the same address in models that order (dependent) read-write pairs."
    ),
)

#: The nine contrasting tests of Figure 3, in order.
L_TESTS: List[LitmusTest] = [L1, L2, L3, L4, L5, L6, L7, L8, L9]


def all_named_tests() -> Dict[str, LitmusTest]:
    """Return every named test keyed by name (Test A plus L1..L9)."""
    tests = {"A": TEST_A}
    for test in L_TESTS:
        tests[test.name] = test
    return tests
