"""Test sketches: the intermediate form between templates and litmus tests.

A template instantiation first produces a *sketch*: per thread, a list of
memory accesses with symbolic address variables and the link that connects
each access to its predecessor; plus

* address equality and disequality constraints (from the segments' address
  relations and from the cycle structure of the template);
* a read-from specification saying, for every read slot, which write slot it
  observes (or that it observes the initial value).

Concretising a sketch resolves the address constraints with a union-find,
names the resulting location classes ``X, Y, Z, W, ...``, gives every write a
distinct value per location, materialises fences and dependency idioms, and
derives the outcome from the read-from specification.  Sketches whose address
constraints are contradictory are *infeasible* and produce no test (the
paper's Corollary 1 still counts them, which is how the 230/124 totals
arise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.expr import BinOp, Loc, Reg
from repro.core.instructions import Branch, Fence, Instruction, Load, Op, Store
from repro.core.litmus import LitmusTest
from repro.core.program import Program, Thread
from repro.generation.segments import AccessKind, LinkKind
from repro.util.naming import location_name
from repro.util.unionfind import UnionFind

#: A slot identifies one access in a sketch: (thread index, access index).
Slot = Tuple[int, int]
#: A read-from source: a write slot, or None for the initial value.
RfSource = Optional[Slot]


@dataclass(frozen=True)
class AccessSketch:
    """One memory access of a sketch.

    ``link`` describes what sits between this access and the *previous*
    access of the same thread (it is ignored for the first access).
    """

    kind: AccessKind
    address_var: str
    link: LinkKind = LinkKind.NONE


@dataclass
class TestSketch:
    """A symbolic two-thread (or n-thread) litmus-test skeleton."""

    threads: List[List[AccessSketch]] = field(default_factory=list)
    equalities: List[Tuple[str, str]] = field(default_factory=list)
    disequalities: List[Tuple[str, str]] = field(default_factory=list)
    read_from: Dict[Slot, RfSource] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction helpers used by the templates
    # ------------------------------------------------------------------
    def add_thread(self, accesses: List[AccessSketch]) -> int:
        """Append a thread; return its index."""
        self.threads.append(list(accesses))
        return len(self.threads) - 1

    def require_equal(self, first: str, second: str) -> None:
        self.equalities.append((first, second))

    def require_different(self, first: str, second: str) -> None:
        self.disequalities.append((first, second))

    def set_read_from(self, reader: Slot, source: RfSource) -> None:
        self.read_from[reader] = source

    # ------------------------------------------------------------------
    # feasibility and concretisation
    # ------------------------------------------------------------------
    def _address_classes(self) -> Optional[Dict[str, str]]:
        """Resolve address constraints; return var -> location name, or None."""
        union_find = UnionFind()
        for thread in self.threads:
            for access in thread:
                union_find.add(access.address_var)
        for first, second in self.equalities:
            union_find.union(first, second)
        for first, second in self.disequalities:
            if union_find.connected(first, second):
                return None

        assignment: Dict[str, str] = {}
        next_index = 0
        for thread in self.threads:
            for access in thread:
                root = union_find.find(access.address_var)
                if root not in assignment:
                    assignment[root] = location_name(next_index)
                    next_index += 1
        return {
            access.address_var: assignment[union_find.find(access.address_var)]
            for thread in self.threads
            for access in thread
        }

    def is_feasible(self) -> bool:
        """Return True iff the address constraints are satisfiable."""
        return self._address_classes() is not None

    def slots(self) -> List[Slot]:
        """Return every access slot in thread-major order."""
        return [
            (thread_index, access_index)
            for thread_index, thread in enumerate(self.threads)
            for access_index in range(len(thread))
        ]

    def access(self, slot: Slot) -> AccessSketch:
        return self.threads[slot[0]][slot[1]]

    def to_litmus_test(self, name: str, description: str = "") -> Optional[LitmusTest]:
        """Concretise the sketch into a litmus test (None if infeasible)."""
        locations = self._address_classes()
        if locations is None:
            return None

        # Assign one distinct value to every write, numbered per location so
        # that read-from sources are identifiable from values alone.
        write_values: Dict[Slot, int] = {}
        per_location_counter: Dict[str, int] = {}
        for slot in self.slots():
            access = self.access(slot)
            if access.kind is AccessKind.WRITE:
                location = locations[access.address_var]
                per_location_counter[location] = per_location_counter.get(location, 0) + 1
                write_values[slot] = per_location_counter[location]

        threads: List[Thread] = []
        read_values: Dict[Slot, int] = {}
        load_slot_to_key: Dict[Slot, Tuple[int, int]] = {}
        for thread_index, thread in enumerate(self.threads):
            instructions: List[Instruction] = []
            register_serial = 0
            previous_read_register: Optional[str] = None
            for access_index, access in enumerate(thread):
                slot = (thread_index, access_index)
                location = locations[access.address_var]
                link = access.link if access_index > 0 else LinkKind.NONE

                if link is LinkKind.FENCE:
                    instructions.append(Fence())
                elif link is LinkKind.CTRL_DEP:
                    if previous_read_register is None:
                        raise ValueError("control dependency without a preceding read")
                    instructions.append(Branch(Reg(previous_read_register)))

                dependency_register: Optional[str] = None
                if link is LinkKind.DATA_DEP:
                    if previous_read_register is None:
                        raise ValueError("data dependency without a preceding read")
                    dependency_register = f"t{thread_index + 1}{register_serial}"
                    register_serial += 1

                if access.kind is AccessKind.READ:
                    register = f"r{thread_index + 1}{register_serial}"
                    register_serial += 1
                    if dependency_register is not None:
                        # address dependency: t = r_prev - r_prev + location
                        instructions.append(
                            Op(
                                dependency_register,
                                BinOp(
                                    "+",
                                    BinOp("-", Reg(previous_read_register), Reg(previous_read_register)),
                                    Loc(location),
                                ),
                            )
                        )
                        instructions.append(Load(register, Reg(dependency_register)))
                    else:
                        instructions.append(Load(register, location))
                    load_slot_to_key[slot] = (thread_index, len(instructions) - 1)
                    previous_read_register = register
                else:
                    value = write_values[slot]
                    if dependency_register is not None:
                        # value dependency: t = r_prev - r_prev + value
                        instructions.append(
                            Op(
                                dependency_register,
                                BinOp(
                                    "+",
                                    BinOp("-", Reg(previous_read_register), Reg(previous_read_register)),
                                    value,
                                ),
                            )
                        )
                        instructions.append(Store(location, Reg(dependency_register)))
                    else:
                        instructions.append(Store(location, value))
            threads.append(Thread(f"T{thread_index + 1}", instructions))

        # Outcome: every read observes either the initial value or the value
        # of the write slot named in the read-from specification.
        outcome: Dict[Tuple[int, int], int] = {}
        for slot, key in load_slot_to_key.items():
            source = self.read_from.get(slot)
            if source is None:
                outcome[key] = 0
            else:
                outcome[key] = write_values[source]

        return LitmusTest(name, Program(threads), outcome, description)
