"""Corollary 1: counting the template instantiations.

For segment counts ``N_WW, N_WR, N_RW, N_RR`` the number of template
instantiations needed to contrast any two models in the class is::

    N_RW                                   (case 1)
    + N_WW                                 (case 2)
    + N_RR * (N_WW + N_WR * N_RW)          (cases 3a and 3b)
    + N_WR * (1 + N_RR + N_RW)             (cases 4, 5a and 5b)

With the paper's standard predicate set (Read, Write, Fence, SameAddr,
DataDep) the segment counts are ``N_RW = N_RR = 6`` and ``N_WR = N_WW = 4``,
giving **230** instantiations; dropping data dependencies gives ``6 -> 4``
and **124** instantiations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.predicates import PredicateSet, STANDARD_PREDICATES
from repro.generation.segments import SegmentKind, segment_count


@dataclass(frozen=True)
class SegmentCounts:
    """The number of distinct local segments of each kind."""

    ww: int
    wr: int
    rw: int
    rr: int

    def as_dict(self) -> Dict[str, int]:
        return {"ww": self.ww, "wr": self.wr, "rw": self.rw, "rr": self.rr}


def segment_counts(predicates: PredicateSet = STANDARD_PREDICATES) -> SegmentCounts:
    """Return the segment counts for a predicate set."""
    return SegmentCounts(
        ww=segment_count(SegmentKind.WW, predicates),
        wr=segment_count(SegmentKind.WR, predicates),
        rw=segment_count(SegmentKind.RW, predicates),
        rr=segment_count(SegmentKind.RR, predicates),
    )


def corollary1_count(counts: SegmentCounts) -> int:
    """Evaluate Corollary 1 for the given segment counts."""
    return (
        counts.rw
        + counts.ww
        + counts.rr * (counts.ww + counts.wr * counts.rw)
        + counts.wr * (1 + counts.rr + counts.rw)
    )


def corollary1_count_for(predicates: PredicateSet = STANDARD_PREDICATES) -> int:
    """Evaluate Corollary 1 directly for a predicate set."""
    return corollary1_count(segment_counts(predicates))


def per_case_counts(counts: SegmentCounts) -> Dict[str, int]:
    """Return the instantiation count contributed by every template case."""
    return {
        "1": counts.rw,
        "2": counts.ww,
        "3a": counts.rr * counts.ww,
        "3b": counts.rr * counts.wr * counts.rw,
        "4": counts.wr,
        "5a": counts.wr * counts.rr,
        "5b": counts.wr * counts.rw,
    }
