"""Tests for the union-find structure."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util.unionfind import UnionFind


def test_singletons_are_their_own_representatives():
    uf = UnionFind(["a", "b", "c"])
    assert uf.find("a") == "a"
    assert not uf.connected("a", "b")
    assert len(uf) == 3


def test_union_connects_elements():
    uf = UnionFind()
    uf.union("a", "b")
    uf.union("b", "c")
    assert uf.connected("a", "c")
    assert not uf.connected("a", "d")
    assert "d" in uf  # find/connected adds lazily


def test_union_is_idempotent():
    uf = UnionFind()
    uf.union("a", "b")
    root = uf.find("a")
    assert uf.union("a", "b") == root


def test_groups_partition_all_elements():
    uf = UnionFind(["a", "b", "c", "d"])
    uf.union("a", "b")
    uf.union("c", "d")
    groups = uf.groups()
    assert sorted(sorted(group) for group in groups) == [["a", "b"], ["c", "d"]]


def test_lazy_add_through_find():
    uf = UnionFind()
    assert uf.find(42) == 42
    assert 42 in uf


@given(st.lists(st.tuples(st.integers(0, 10), st.integers(0, 10)), max_size=30))
def test_connectivity_matches_naive_model(pairs):
    """Union-find connectivity agrees with a naive set-merging model."""
    uf = UnionFind(range(11))
    naive = [{i} for i in range(11)]

    def naive_find(x):
        for group in naive:
            if x in group:
                return group
        raise AssertionError

    for a, b in pairs:
        uf.union(a, b)
        group_a, group_b = naive_find(a), naive_find(b)
        if group_a is not group_b:
            group_a |= group_b
            naive.remove(group_b)

    for a in range(11):
        for b in range(11):
            assert uf.connected(a, b) == (naive_find(a) is naive_find(b))


@given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=20))
def test_groups_cover_every_element_exactly_once(pairs):
    uf = UnionFind(range(9))
    for a, b in pairs:
        uf.union(a, b)
    groups = uf.groups()
    flattened = [element for group in groups for element in group]
    assert sorted(flattened) == list(range(9))
