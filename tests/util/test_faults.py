"""Tests for the fault-injection registry (repro.util.faults)."""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.util import faults


@pytest.fixture(autouse=True)
def _isolate_faults():
    saved = faults.snapshot()
    faults.clear()
    yield
    faults.restore(saved)


# ----------------------------------------------------------------------
# spec parsing
# ----------------------------------------------------------------------
def test_parse_simple_raise():
    (fault,) = faults.parse_faults("serve.request=raise")
    assert fault.point == "serve.request"
    assert fault.action == "raise"
    assert fault.arg is None and fault.count is None and fault.where == {}


def test_parse_delay_with_arg_and_count():
    (fault,) = faults.parse_faults("session.run=delay:2.5*3")
    assert fault.action == "delay" and fault.arg == 2.5 and fault.count == 3


def test_parse_filters_with_commas_inside_brackets():
    specs = faults.parse_faults(
        "pipeline.shard[shard=1,attempt=0]=kill,pipeline.checkpoint[shard=2]=truncate:40"
    )
    assert len(specs) == 2
    assert specs[0].where == {"shard": "1", "attempt": "0"}
    assert specs[1].action == "truncate" and specs[1].arg == 40.0


@pytest.mark.parametrize(
    "bad",
    [
        "no-action-here",
        "point=explode",
        "point=delay",  # delay requires an argument
        "point=truncate",  # truncate requires an argument
        "point=raise*0",  # counts start at 1
        "point=raise*x",
        "point[unterminated=raise",
        "point[novalue]=raise",
        "=raise",
    ],
)
def test_malformed_specs_raise(bad):
    with pytest.raises(faults.FaultSpecError):
        faults.parse_faults(bad)


# ----------------------------------------------------------------------
# firing semantics
# ----------------------------------------------------------------------
def test_unarmed_fire_is_a_no_op():
    faults.fire("anything.at.all", shard=7)


def test_raise_fault_fires_and_respects_count():
    faults.install("p=raise*2")
    with pytest.raises(faults.InjectedFault):
        faults.fire("p")
    with pytest.raises(faults.InjectedFault):
        faults.fire("p")
    faults.fire("p")  # count exhausted


def test_injected_fault_is_not_a_value_error():
    # The serving layer catches the ValueError family for expected
    # problems; injected faults must land in the catch-all instead.
    assert not issubclass(faults.InjectedFault, ValueError)
    assert issubclass(faults.InjectedFault, RuntimeError)


def test_context_filters_select_fire_sites():
    faults.install("p[shard=1]=raise")
    faults.fire("p", shard=0)  # no match
    faults.fire("p")  # missing key: str(None) != "1"
    with pytest.raises(faults.InjectedFault):
        faults.fire("p", shard=1)


def test_point_names_must_match_exactly():
    faults.install("p.q=raise")
    faults.fire("p")
    faults.fire("p.q.r")
    with pytest.raises(faults.InjectedFault):
        faults.fire("p.q")


def test_delay_fault_sleeps():
    faults.install("p=delay:0.05*1")
    started = time.monotonic()
    faults.fire("p")
    assert time.monotonic() - started >= 0.04


def test_truncate_fault_applies_only_via_truncate_file(tmp_path):
    path = tmp_path / "x.jsonl"
    path.write_text("0123456789")
    faults.install("chk=truncate:4*1")
    faults.fire("chk")  # ignored at plain fire sites
    assert path.read_text() == "0123456789"
    assert faults.truncate_file("chk", str(path)) is True
    assert path.read_text() == "0123"
    assert faults.truncate_file("chk", str(path)) is False  # count exhausted


def test_install_replaces_and_clear_disarms():
    faults.install("a=raise")
    faults.install("b=raise")
    faults.fire("a")  # replaced
    faults.clear()
    faults.fire("b")
    assert not faults.active()


def test_install_from_env_reads_the_variable(monkeypatch):
    monkeypatch.setenv(faults.ENV_VAR, "env.point=raise*1")
    faults.install_from_env()
    with pytest.raises(faults.InjectedFault):
        faults.fire("env.point")


def test_env_spec_reaches_subprocesses():
    """The registry arms itself at import from REPRO_FAULTS — the mechanism
    CI jobs and CLI subprocesses use."""
    code = (
        "from repro.util import faults\n"
        "try:\n"
        "    faults.fire('sub.point')\n"
        "    print('no-fire')\n"
        "except faults.InjectedFault:\n"
        "    print('fired')\n"
    )
    env = dict(os.environ, REPRO_FAULTS="sub.point=raise")
    env["PYTHONPATH"] = os.pathsep.join(sys.path)
    result = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )
    assert result.stdout.strip() == "fired"


def test_snapshot_restore_roundtrip():
    faults.install("p=raise*1")
    saved = faults.snapshot()
    faults.clear()
    assert not faults.active()
    faults.restore(saved)
    with pytest.raises(faults.InjectedFault):
        faults.fire("p")
