"""Tests for the directed-graph toolkit."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.digraph import CycleError, Digraph


def test_nodes_preserve_insertion_order():
    graph = Digraph(["c", "a", "b"])
    assert graph.nodes() == ["c", "a", "b"]


def test_add_edge_adds_endpoints():
    graph = Digraph()
    graph.add_edge(1, 2)
    assert graph.has_node(1) and graph.has_node(2)
    assert graph.has_edge(1, 2)
    assert not graph.has_edge(2, 1)


def test_parallel_edges_collapse():
    graph = Digraph()
    graph.add_edge("a", "b")
    graph.add_edge("a", "b")
    assert graph.num_edges() == 1


def test_acyclic_graph_has_no_cycle():
    graph = Digraph(edges=[(1, 2), (2, 3), (1, 3)])
    assert graph.is_acyclic()
    assert graph.find_cycle() is None


def test_simple_cycle_is_found():
    graph = Digraph(edges=[(1, 2), (2, 3), (3, 1)])
    cycle = graph.find_cycle()
    assert cycle is not None
    assert cycle[0] == cycle[-1]
    # every consecutive pair is an edge
    for src, dst in zip(cycle, cycle[1:]):
        assert graph.has_edge(src, dst)


def test_self_loop_is_a_cycle():
    graph = Digraph(edges=[("x", "x")])
    assert graph.has_cycle()


def test_topological_sort_respects_edges():
    graph = Digraph(edges=[("a", "b"), ("b", "c"), ("a", "c"), ("d", "c")])
    order = graph.topological_sort()
    assert set(order) == {"a", "b", "c", "d"}
    for src, dst in graph.edges():
        assert order.index(src) < order.index(dst)


def test_topological_sort_raises_on_cycle():
    graph = Digraph(edges=[(1, 2), (2, 1)])
    with pytest.raises(CycleError):
        graph.topological_sort()


def test_reachability():
    graph = Digraph(edges=[(1, 2), (2, 3), (4, 1)])
    assert graph.reachable_from(1) == {2, 3}
    assert graph.reachable_from(4) == {1, 2, 3}
    assert graph.reachable_from(3) == set()


def test_transitive_closure_adds_paths_as_edges():
    graph = Digraph(edges=[(1, 2), (2, 3)])
    closure = graph.transitive_closure()
    assert closure.has_edge(1, 3)
    assert closure.has_edge(1, 2) and closure.has_edge(2, 3)


def test_transitive_reduction_removes_redundant_edges():
    graph = Digraph(edges=[(1, 2), (2, 3), (1, 3)])
    reduction = graph.transitive_reduction()
    assert reduction.has_edge(1, 2) and reduction.has_edge(2, 3)
    assert not reduction.has_edge(1, 3)


def test_transitive_reduction_requires_acyclic():
    graph = Digraph(edges=[(1, 2), (2, 1)])
    with pytest.raises(CycleError):
        graph.transitive_reduction()


def test_subgraph_keeps_only_selected_nodes():
    graph = Digraph(edges=[(1, 2), (2, 3), (3, 4)])
    sub = graph.subgraph([2, 3])
    assert sub.nodes() == [2, 3]
    assert sub.has_edge(2, 3)
    assert not sub.has_node(1)


def _random_dags():
    """Random DAG edge lists: only edges from smaller to larger integers."""
    return st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 6)).map(lambda p: (min(p), max(p))).filter(
            lambda p: p[0] != p[1]
        ),
        max_size=20,
    )


@given(_random_dags())
def test_dags_are_acyclic_and_sortable(edges):
    graph = Digraph(nodes=range(7), edges=edges)
    assert graph.is_acyclic()
    order = graph.topological_sort()
    for src, dst in graph.edges():
        assert order.index(src) < order.index(dst)


@given(_random_dags())
def test_transitive_reduction_preserves_reachability(edges):
    graph = Digraph(nodes=range(7), edges=edges)
    reduction = graph.transitive_reduction()
    for node in graph.nodes():
        assert graph.reachable_from(node) == reduction.reachable_from(node)


@given(_random_dags())
def test_closure_of_reduction_equals_closure(edges):
    graph = Digraph(nodes=range(7), edges=edges)
    closure = graph.transitive_closure()
    reduced_closure = graph.transitive_reduction().transitive_closure()
    assert sorted(closure.edges()) == sorted(reduced_closure.edges())
