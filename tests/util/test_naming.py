"""Tests for naming helpers."""

import pytest

from repro.util.naming import fresh_names, join_nonempty, location_name, register_name, temp_name


def test_canonical_location_names():
    assert [location_name(i) for i in range(6)] == ["X", "Y", "Z", "W", "V1", "V2"]


def test_location_name_rejects_negative_index():
    with pytest.raises(ValueError):
        location_name(-1)


def test_register_names_are_unique_across_threads():
    names = {register_name(t, s) for t in range(3) for s in range(5)}
    assert len(names) == 15


def test_temp_names_do_not_collide_with_registers():
    assert temp_name(0, 0) != register_name(0, 0)


def test_fresh_names():
    assert fresh_names("v", 3) == ["v1", "v2", "v3"]


def test_join_nonempty_drops_empty_strings():
    assert join_nonempty(["a", "", "b"]) == "a b"
    assert join_nonempty([], "-") == ""
