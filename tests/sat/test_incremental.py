"""Incremental assumption solving: one solver, many ``solve(assumptions)`` calls.

The engine keeps one :class:`SatSolver` per litmus test alive across a whole
model family, so a reused solver must give exactly the answers a fresh solver
would — including after conflicts, learned-clause reduction, restarts and
UNSAT-under-assumptions calls.
"""

import random
from itertools import combinations, product

import pytest

from repro.sat.cnf import CNF
from repro.sat.solver import SatSolver


def brute_force_satisfiable(cnf: CNF, assumptions=()) -> bool:
    variables = sorted(set(cnf.variables()) | {abs(lit) for lit in assumptions})
    for values in product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if all(assignment[abs(lit)] == (lit > 0) for lit in assumptions) and cnf.evaluate(
            assignment
        ):
            return True
    return False


def random_cnf(rng: random.Random, num_vars: int, num_clauses: int) -> CNF:
    clauses = []
    for _ in range(num_clauses):
        size = rng.randint(1, 3)
        variables = rng.sample(range(1, num_vars + 1), size)
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return CNF(clauses=clauses)


def random_assumptions(rng: random.Random, num_vars: int):
    count = rng.randint(0, 4)
    variables = rng.sample(range(1, num_vars + 1), count)
    return [v if rng.random() < 0.5 else -v for v in variables]


def relaxed_pigeonhole(holes: int):
    """PHP(holes+1, holes) with a relaxation variable guarding every at-most-one.

    Under the assumption ``-relax`` the instance is the (conflict-heavy)
    unsatisfiable pigeonhole problem; under ``relax`` it is trivially
    satisfiable.  Alternating the two exercises learned clauses that mention
    the assumption literal.
    """
    pigeons = holes + 1
    cnf = CNF()
    var = {}
    for p in range(pigeons):
        for h in range(holes):
            var[(p, h)] = cnf.new_var()
    relax = cnf.new_var()
    for p in range(pigeons):
        cnf.add_clause([var[(p, h)] for h in range(holes)])
    for h in range(holes):
        for p1, p2 in combinations(range(pigeons), 2):
            cnf.add_clause([-var[(p1, h)], -var[(p2, h)], relax])
    return cnf, relax


@pytest.mark.parametrize("seed", range(8))
def test_persistent_solver_agrees_with_fresh_and_truth_table(seed):
    rng = random.Random(seed)
    cnf = random_cnf(rng, 10, 42)
    persistent = SatSolver(cnf)
    for _ in range(12):
        assumptions = random_assumptions(rng, 10)
        expected = SatSolver(cnf).solve(assumptions).satisfiable
        assert expected == brute_force_satisfiable(cnf, assumptions)
        result = persistent.solve(assumptions)
        assert result.satisfiable == expected
        if result.satisfiable:
            assignment = dict(result.assignment)
            assert cnf.evaluate(assignment)
            assert all(assignment[abs(lit)] == (lit > 0) for lit in assumptions)


def test_unsat_under_assumptions_does_not_poison_later_calls():
    """Regression: an assumption falsified by an earlier assumption's
    propagation used to leave its decision levels on the trail, making the
    reused solver treat the stale assumptions as permanent facts."""
    cnf = CNF(clauses=[[-1, 2]])
    solver = SatSolver(cnf)
    assert not solver.solve([1, -2]).satisfiable  # 1 propagates 2, -2 is false
    assert solver.solve([]).satisfiable
    assert solver.solve([1]).satisfiable
    assert solver.solve([-2]).satisfiable
    assert not solver.solve([1, -2]).satisfiable


def test_root_level_conflict_persists_across_calls():
    cnf = CNF(clauses=[[1], [-1, 2], [-2]])
    solver = SatSolver(cnf)
    assert not solver.solve().satisfiable
    assert not solver.solve().satisfiable
    assert not solver.solve([2]).satisfiable


def test_incremental_answers_survive_reduction_and_restarts():
    cnf, relax = relaxed_pigeonhole(5)
    solver = SatSolver(cnf)
    solver.reduce_learned_threshold = 20  # force frequent clause reduction
    for _ in range(3):
        assert not solver.solve([-relax]).satisfiable
        result = solver.solve([relax])
        assert result.satisfiable
        assert cnf.evaluate(dict(result.assignment))
    # The run must actually have exercised the machinery under test.
    assert solver.stats.restarts > 0
    assert solver.stats.learned_clauses > solver.reduce_learned_threshold
    assert solver.num_learned_clauses() < solver.stats.learned_clauses


def test_learned_clauses_are_reused_across_calls():
    """The second UNSAT call is answered from reused learned clauses."""
    cnf, relax = relaxed_pigeonhole(4)
    solver = SatSolver(cnf)
    assert not solver.solve([-relax]).satisfiable
    conflicts_first = solver.stats.conflicts
    assert conflicts_first > 0
    assert not solver.solve([-relax]).satisfiable
    assert solver.stats.conflicts <= conflicts_first * 2  # far fewer new conflicts
    assert solver.num_learned_clauses() > 0


def test_persistent_solver_interleaves_sat_and_unsat_assumption_sets():
    rng = random.Random(1234)
    cnf = random_cnf(rng, 8, 30)
    solver = SatSolver(cnf)
    fresh_answers = []
    persistent_answers = []
    for _ in range(20):
        assumptions = random_assumptions(rng, 8)
        fresh_answers.append(SatSolver(cnf).solve(assumptions).satisfiable)
        persistent_answers.append(solver.solve(assumptions).satisfiable)
    assert persistent_answers == fresh_answers
