"""Tests for boolean expressions and the Tseitin transformation."""

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import CNF
from repro.sat.solver import solve
from repro.sat.tseitin import (
    FALSE,
    TRUE,
    BoolAnd,
    BoolConst,
    BoolNot,
    BoolOr,
    BoolVar,
    TseitinEncoder,
    conjoin,
    disjoin,
    iff,
    implies,
    negate,
    tseitin_encode,
)


def evaluate_expression(expression, valuation):
    if isinstance(expression, BoolConst):
        return expression.value
    if isinstance(expression, BoolVar):
        return valuation[expression.name]
    if isinstance(expression, BoolNot):
        return not evaluate_expression(expression.operand, valuation)
    if isinstance(expression, BoolAnd):
        return all(evaluate_expression(op, valuation) for op in expression.operands)
    if isinstance(expression, BoolOr):
        return any(evaluate_expression(op, valuation) for op in expression.operands)
    raise TypeError(expression)


def test_conjoin_simplifications():
    a = BoolVar("a")
    assert conjoin([]) == TRUE
    assert conjoin([a]) == a
    assert conjoin([a, FALSE]) == FALSE
    assert conjoin([a, TRUE]) == a


def test_disjoin_simplifications():
    a = BoolVar("a")
    assert disjoin([]) == FALSE
    assert disjoin([a]) == a
    assert disjoin([a, TRUE]) == TRUE
    assert disjoin([a, FALSE]) == a


def test_negate_eliminates_double_negation():
    a = BoolVar("a")
    assert negate(negate(a)) == a
    assert negate(TRUE) == FALSE


def test_operator_sugar():
    a, b = BoolVar("a"), BoolVar("b")
    assert isinstance(a & b, BoolAnd)
    assert isinstance(a | b, BoolOr)
    assert isinstance(~a, BoolNot)


def test_implies_and_iff_truth_tables():
    a, b = BoolVar("a"), BoolVar("b")
    for va, vb in product([False, True], repeat=2):
        valuation = {"a": va, "b": vb}
        assert evaluate_expression(implies(a, b), valuation) == ((not va) or vb)
        assert evaluate_expression(iff(a, b), valuation) == (va == vb)


def test_tseitin_encode_simple_formula():
    a, b = BoolVar("a"), BoolVar("b")
    cnf, variables = tseitin_encode(a & ~b)
    result = solve(cnf)
    assert result.satisfiable
    assert result.assignment[variables["a"]] is True
    assert result.assignment[variables["b"]] is False


def test_tseitin_encode_unsatisfiable_formula():
    a = BoolVar("a")
    cnf, _ = tseitin_encode(a & ~a)
    assert not solve(cnf).satisfiable


def test_assert_true_on_constant_false_makes_unsat():
    cnf = CNF()
    encoder = TseitinEncoder(cnf)
    encoder.assert_true(FALSE)
    assert not solve(cnf).satisfiable


def test_encoder_shares_variables_across_expressions():
    cnf = CNF()
    encoder = TseitinEncoder(cnf)
    a = BoolVar("a")
    encoder.assert_true(a | BoolVar("b"))
    encoder.assert_true(~a)
    result = solve(cnf)
    assert result.satisfiable
    assert result.assignment[encoder.variable("a")] is False
    assert result.assignment[encoder.variable("b")] is True


@st.composite
def random_expressions(draw, depth=3):
    if depth == 0 or draw(st.integers(0, 3)) == 0:
        return BoolVar(draw(st.sampled_from(["a", "b", "c", "d"])))
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return negate(draw(random_expressions(depth=depth - 1)))
    operands = draw(st.lists(random_expressions(depth=depth - 1), min_size=1, max_size=3))
    return conjoin(operands) if kind == "and" else disjoin(operands)


@settings(max_examples=80, deadline=None)
@given(random_expressions())
def test_tseitin_is_equisatisfiable_with_truth_table(expression):
    cnf, variables = tseitin_encode(expression)
    names = ["a", "b", "c", "d"]
    expected = any(
        evaluate_expression(expression, dict(zip(names, values)))
        for values in product([False, True], repeat=len(names))
    )
    assert solve(cnf).satisfiable == expected
