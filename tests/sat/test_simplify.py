"""Tests for CNF preprocessing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import CNF
from repro.sat.simplify import (
    eliminate_pure_literals,
    preprocess,
    propagate_units,
    remove_duplicate_clauses,
    remove_tautologies,
)
from repro.sat.solver import solve


def test_remove_tautologies():
    cnf = CNF(clauses=[[1, -1, 2], [2, 3]])
    cleaned = remove_tautologies(cnf)
    assert len(cleaned) == 1


def test_propagate_units_forces_assignment():
    cnf = CNF(clauses=[[1], [-1, 2], [-2, 3], [3, 4]])
    simplified, forced = propagate_units(cnf)
    assert forced == {1: True, 2: True, 3: True}
    assert len(simplified) == 0


def test_propagate_units_detects_conflict():
    cnf = CNF(clauses=[[1], [-1]])
    simplified, _forced = preprocess(cnf)
    assert simplified is None


def test_pure_literal_elimination():
    cnf = CNF(clauses=[[1, 2], [1, 3], [-2, 3]])
    simplified, pure = eliminate_pure_literals(cnf)
    assert pure[1] is True and pure[3] is True
    assert len(simplified) == 0


def test_remove_duplicate_clauses():
    cnf = CNF(clauses=[[1, 2], [2, 1], [1, 2, 2]])
    assert len(remove_duplicate_clauses(cnf)) == 1


def test_preprocess_preserves_simple_satisfiability():
    cnf = CNF(clauses=[[1, 2], [-1, 2], [3], [-3, 4]])
    simplified, forced = preprocess(cnf)
    assert simplified is not None
    assert forced[3] is True and forced[4] is True


_random_cnfs = st.lists(
    st.lists(st.integers(-5, 5).filter(lambda x: x != 0), min_size=1, max_size=3),
    min_size=1,
    max_size=12,
)


@settings(max_examples=80, deadline=None)
@given(_random_cnfs)
def test_preprocessing_preserves_satisfiability(clauses):
    cnf = CNF(clauses=clauses)
    original = solve(cnf).satisfiable
    simplified, forced = preprocess(cnf)
    if simplified is None:
        assert original is False
        return
    remaining = solve(simplified).satisfiable
    # The simplified formula plus the forced assignment must reproduce the
    # original satisfiability (pure-literal choices never hurt).
    assert remaining == original or (remaining and not original) is False
    if original:
        assert remaining
