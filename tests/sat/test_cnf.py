"""Tests for CNF representation and DIMACS I/O."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sat.cnf import CNF, literal_sign, literal_variable, negate_literal


def test_literal_helpers():
    assert literal_variable(-3) == 3
    assert literal_sign(3) and not literal_sign(-3)
    assert negate_literal(5) == -5


def test_new_var_increments():
    cnf = CNF()
    assert cnf.new_var() == 1
    assert cnf.new_var("selector") == 2
    assert cnf.name_of(2) == "selector"
    assert cnf.name_of(1) is None


def test_add_clause_grows_variable_count():
    cnf = CNF()
    cnf.add_clause([1, -5])
    assert cnf.num_vars == 5
    assert len(cnf) == 1


def test_zero_literal_is_rejected():
    cnf = CNF()
    with pytest.raises(ValueError):
        cnf.add_clause([1, 0])


def test_evaluate():
    cnf = CNF(clauses=[[1, 2], [-1, 3]])
    assert cnf.evaluate({1: True, 2: False, 3: True})
    assert not cnf.evaluate({1: True, 2: False, 3: False})
    assert cnf.evaluate({1: False, 2: True, 3: False})


def test_extend_merges_clauses_and_vars():
    first = CNF(clauses=[[1, 2]])
    second = CNF(clauses=[[-3]])
    first.extend(second)
    assert len(first) == 2
    assert first.num_vars == 3


def test_variables_lists_occurring_variables():
    cnf = CNF(clauses=[[1, -4], [2]])
    assert cnf.variables() == [1, 2, 4]


def test_dimacs_roundtrip():
    cnf = CNF(clauses=[[1, -2, 3], [-1], [2, 3]])
    text = cnf.to_dimacs()
    parsed = CNF.from_dimacs(text)
    assert parsed.clauses == cnf.clauses
    assert parsed.num_vars == cnf.num_vars


def test_dimacs_parses_comments_and_header():
    text = """c a comment
p cnf 4 2
1 -2 0
3 4 0
"""
    cnf = CNF.from_dimacs(text)
    assert cnf.num_vars == 4
    assert cnf.clauses == [(1, -2), (3, 4)]


def test_dimacs_rejects_unterminated_clause():
    with pytest.raises(ValueError):
        CNF.from_dimacs("p cnf 2 1\n1 2\n")


def test_dimacs_rejects_malformed_header():
    with pytest.raises(ValueError):
        CNF.from_dimacs("p dnf 2 1\n1 0\n")


@given(
    st.lists(
        st.lists(st.integers(-5, 5).filter(lambda x: x != 0), min_size=1, max_size=4),
        max_size=8,
    )
)
def test_dimacs_roundtrip_random(clauses):
    cnf = CNF(clauses=clauses)
    parsed = CNF.from_dimacs(cnf.to_dimacs())
    assert parsed.clauses == cnf.clauses
