"""Tests for the CDCL SAT solver, including a truth-table cross-check."""

from itertools import combinations, product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import CNF
from repro.sat.solver import SatSolver, solve


def brute_force_satisfiable(cnf: CNF) -> bool:
    variables = cnf.variables()
    for values in product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if cnf.evaluate(assignment):
            return True
    return False


def test_empty_formula_is_satisfiable():
    assert solve(CNF()).satisfiable


def test_empty_clause_is_unsatisfiable():
    cnf = CNF()
    cnf.add_clause([])
    assert not solve(cnf).satisfiable


def test_single_unit_clause():
    result = solve(CNF(clauses=[[3]]))
    assert result.satisfiable
    assert result.assignment[3] is True


def test_contradicting_units_unsat():
    assert not solve(CNF(clauses=[[1], [-1]])).satisfiable


def test_simple_satisfiable_instance():
    cnf = CNF(clauses=[[1, 2], [-1, 2], [1, -2]])
    result = solve(cnf)
    assert result.satisfiable
    assert cnf.evaluate(result.assignment)


def test_simple_unsatisfiable_instance():
    cnf = CNF(clauses=[[1, 2], [-1, 2], [1, -2], [-1, -2]])
    assert not solve(cnf).satisfiable


def test_implication_chain_propagates():
    # x1 and (x1 -> x2 -> ... -> x20)
    clauses = [[1]] + [[-i, i + 1] for i in range(1, 20)]
    result = solve(CNF(clauses=clauses))
    assert result.satisfiable
    assert all(result.assignment[i] for i in range(1, 21))


def test_tautological_clause_is_ignored():
    result = solve(CNF(clauses=[[1, -1], [2]]))
    assert result.satisfiable
    assert result.assignment[2] is True


def pigeonhole(holes: int) -> CNF:
    """PHP(holes+1, holes): unsatisfiable for every holes >= 1."""
    pigeons = holes + 1
    cnf = CNF()
    var = {}
    for p in range(pigeons):
        for h in range(holes):
            var[(p, h)] = cnf.new_var()
    for p in range(pigeons):
        cnf.add_clause([var[(p, h)] for h in range(holes)])
    for h in range(holes):
        for p1, p2 in combinations(range(pigeons), 2):
            cnf.add_clause([-var[(p1, h)], -var[(p2, h)]])
    return cnf


@pytest.mark.parametrize("holes", [1, 2, 3, 4])
def test_pigeonhole_unsatisfiable(holes):
    assert not solve(pigeonhole(holes)).satisfiable


def test_graph_coloring_satisfiable():
    """A 5-cycle is 3-colourable (but not 2-colourable)."""
    def coloring_cnf(colors):
        cnf = CNF()
        var = {(v, c): cnf.new_var() for v in range(5) for c in range(colors)}
        for v in range(5):
            cnf.add_clause([var[(v, c)] for c in range(colors)])
            for c1, c2 in combinations(range(colors), 2):
                cnf.add_clause([-var[(v, c1)], -var[(v, c2)]])
        for v in range(5):
            u = (v + 1) % 5
            for c in range(colors):
                cnf.add_clause([-var[(v, c)], -var[(u, c)]])
        return cnf

    assert solve(coloring_cnf(3)).satisfiable
    assert not solve(coloring_cnf(2)).satisfiable


def test_assumptions_restrict_models():
    cnf = CNF(clauses=[[1, 2]])
    assert solve(cnf, assumptions=[-1]).satisfiable
    assert not solve(cnf, assumptions=[-1, -2]).satisfiable


def test_assumption_conflicting_with_unit_clause():
    cnf = CNF(clauses=[[1]])
    assert not solve(cnf, assumptions=[-1]).satisfiable


def test_solver_is_reusable_after_solve():
    cnf = CNF(clauses=[[1, 2], [-1, 2]])
    solver = SatSolver(cnf)
    first = solver.solve()
    second = solver.solve()
    assert first.satisfiable and second.satisfiable


def test_stats_are_populated():
    result = solve(pigeonhole(3))
    assert result.stats.conflicts > 0


_random_cnfs = st.lists(
    st.lists(st.integers(-6, 6).filter(lambda x: x != 0), min_size=1, max_size=3),
    min_size=1,
    max_size=14,
)


@settings(max_examples=150, deadline=None)
@given(_random_cnfs)
def test_solver_agrees_with_truth_table(clauses):
    cnf = CNF(clauses=clauses)
    result = solve(cnf)
    assert result.satisfiable == brute_force_satisfiable(cnf)
    if result.satisfiable:
        assert cnf.evaluate(result.assignment)


@settings(max_examples=60, deadline=None)
@given(_random_cnfs, st.lists(st.integers(-6, 6).filter(lambda x: x != 0), max_size=3))
def test_solver_with_assumptions_agrees_with_truth_table(clauses, assumptions):
    cnf = CNF(clauses=clauses)
    augmented = CNF(clauses=clauses + [[a] for a in assumptions])
    result = solve(cnf, assumptions=assumptions)
    assert result.satisfiable == brute_force_satisfiable(augmented)
