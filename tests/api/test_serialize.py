"""JSON round-trip tests for the schema-versioned serialization layer.

The golden files under ``golden/`` pin the wire format: a document written
by an earlier version of the library must still deserialize to an object
that re-serializes bit-identically, and must still equal the freshly
computed result.  Regenerate them (consciously!) with the snippet in each
test when the schema version is bumped.
"""

import copy
import json
from pathlib import Path

import pytest

from repro import SC, TEST_A, TSO, compare_models, explore_models
from repro.api.serialize import (
    SCHEMA_VERSION,
    SchemaVersionError,
    SerializationError,
    engine_stats_from_json,
    from_json,
    model_from_json,
    model_to_json,
    to_json,
)
from repro.api.serialize import test_from_json as litmus_from_json
from repro.api.serialize import test_to_json as litmus_to_json
from repro.checker.explicit import ExplicitChecker
from repro.checker.outcomes import OutcomeSet
from repro.core.catalog import named_models
from repro.core.model import MemoryModel
from repro.core.parametric import model_space, parametric_model
from repro.engine.engine import EngineStats
from repro.generation.named_tests import L_TESTS

GOLDEN = Path(__file__).parent / "golden"

KNOWN_NAMES = ("M1010", "M1044", "M4044", "M4144", "M4444")


def _known_exploration():
    # Pinned to the bigint kernel so the embedded EngineStats (which carry
    # the kernel label and the native/fallback search counters) match the
    # golden file in every environment — with or without the C extension,
    # and under any REPRO_KERNEL setting.
    from repro.engine.engine import CheckEngine

    models = [parametric_model(name) for name in KNOWN_NAMES]
    return explore_models(
        models,
        list(L_TESTS),
        checker=CheckEngine(kernel="bigint"),
        preferred_tests=L_TESTS,
    )


# ----------------------------------------------------------------------
# golden files: the wire format is pinned
# ----------------------------------------------------------------------
def test_golden_exploration_result_roundtrips_bit_identically():
    document = json.loads((GOLDEN / "exploration_result.json").read_text())
    result = from_json(document)
    assert to_json(result) == document


def test_golden_exploration_result_matches_fresh_computation():
    document = json.loads((GOLDEN / "exploration_result.json").read_text())
    fresh = _known_exploration()
    assert from_json(document) == fresh
    assert to_json(fresh) == document


def test_golden_comparison_result_roundtrips_bit_identically():
    document = json.loads((GOLDEN / "comparison_result.json").read_text())
    result = from_json(document)
    assert to_json(result) == document
    assert from_json(document) == compare_models(SC, TSO, list(L_TESTS))


def _known_synthesis(case):
    # Pinned like _known_exploration: the bigint kernel and a fresh engine
    # per case make the embedded EngineStats deterministic everywhere.
    from repro.engine.engine import CheckEngine
    from repro.synth import SynthesisEngine

    models = [parametric_model(name) for name in KNOWN_NAMES]

    def fresh():
        return SynthesisEngine(
            models,
            list(L_TESTS),
            engine=CheckEngine(kernel="bigint"),
            preferred_tests=L_TESTS,
            space="deps",
        )

    probe = CheckEngine(kernel="bigint")
    target = parametric_model("M4044")
    row = [(test, probe.check(test, target)) for test in L_TESTS]
    if case == "unique":
        return fresh().synthesize(row, backend="enum")
    if case == "conflict":
        flipped = [(row[0][0], not row[0][1])] + row[1:]
        return fresh().synthesize(flipped, backend="enum")
    assert case == "ambiguous"
    return fresh().synthesize(row[:2], backend="enum")


SYNTHESIS_GOLDEN_CASES = ("unique", "conflict", "ambiguous")


@pytest.mark.parametrize("case", SYNTHESIS_GOLDEN_CASES)
def test_golden_synthesis_result_roundtrips_bit_identically(case):
    document = json.loads((GOLDEN / f"synthesis_{case}.json").read_text())
    result = from_json(document)
    assert to_json(result) == document


@pytest.mark.parametrize("case", SYNTHESIS_GOLDEN_CASES)
def test_golden_synthesis_result_matches_fresh_computation(case):
    document = json.loads((GOLDEN / f"synthesis_{case}.json").read_text())
    assert from_json(document) == _known_synthesis(case)


def test_golden_synthesis_cases_cover_the_three_outcomes():
    unique = from_json(json.loads((GOLDEN / "synthesis_unique.json").read_text()))
    assert unique.unique_model == "M4044"
    assert unique.weakest == unique.strongest == ("M4044",)

    conflict = from_json(json.loads((GOLDEN / "synthesis_conflict.json").read_text()))
    assert not conflict.consistent
    assert conflict.conflict_core  # minimal conflicting subset is recorded
    assert conflict.witnesses  # one witness per excluded model
    assert len(conflict.witnesses) == conflict.models_considered

    ambiguous = from_json(json.loads((GOLDEN / "synthesis_ambiguous.json").read_text()))
    assert len(ambiguous.consistent_models) > 1
    assert ambiguous.suggestions  # distinguishing tests are proposed
    assert ambiguous.stats.synth_runs == 1


def test_golden_exploration_stats_carry_the_kernel_backend():
    """The embedded EngineStats round-trip the kernel label and counters."""
    document = json.loads((GOLDEN / "exploration_result.json").read_text())
    stats = document["stats"]
    assert stats["kernel_backend"] == "bigint"  # pinned by _known_exploration
    assert stats["native_searches"] == 0
    assert stats["fallback_searches"] > 0
    rebuilt = from_json(document)
    assert rebuilt.stats.kernel_backend == "bigint"
    assert to_json(rebuilt)["stats"] == stats


def test_golden_exploration_includes_stats_and_hasse_edges():
    document = json.loads((GOLDEN / "exploration_result.json").read_text())
    assert document["stats"]["checks_performed"] > 0
    assert document["hasse_edges"], "Hasse edges must be part of the document"
    result = from_json(document)
    assert isinstance(result.stats, EngineStats)
    assert result.stats.checks_performed == document["stats"]["checks_performed"]
    assert [edge.weaker for edge in result.hasse_edges] == [
        edge["weaker"] for edge in document["hasse_edges"]
    ]


# ----------------------------------------------------------------------
# schema versioning
# ----------------------------------------------------------------------
def test_schema_version_mismatch_is_rejected():
    document = json.loads((GOLDEN / "exploration_result.json").read_text())
    for bad_version in (SCHEMA_VERSION + 1, SCHEMA_VERSION - 1, 0, "1", None):
        tampered = copy.deepcopy(document)
        tampered["schema_version"] = bad_version
        with pytest.raises(SchemaVersionError):
            from_json(tampered)


def test_missing_or_alien_schema_is_rejected():
    with pytest.raises(SerializationError):
        from_json({"schema_version": SCHEMA_VERSION})
    with pytest.raises(SerializationError):
        from_json({"schema": "other/thing", "schema_version": SCHEMA_VERSION})
    with pytest.raises(SerializationError):
        from_json({"schema": "repro/nonsense", "schema_version": SCHEMA_VERSION})
    with pytest.raises(SerializationError):
        from_json("not even a dict")


# ----------------------------------------------------------------------
# per-type round trips
# ----------------------------------------------------------------------
def test_check_result_with_witness_roundtrips():
    result = ExplicitChecker().check(TEST_A, TSO)
    assert result.allowed and result.witness is not None
    rebuilt = from_json(to_json(result))
    assert rebuilt == result
    assert rebuilt.witness.describe() == result.witness.describe()


def test_check_result_forbidden_roundtrips():
    result = ExplicitChecker().check(TEST_A, SC)
    assert not result.allowed
    assert from_json(to_json(result)) == result


def test_outcome_set_roundtrips():
    outcome_set = OutcomeSet("SB", "TSO", [{"r1": 0, "r2": 0}, {"r1": 1, "r2": 1}])
    assert OutcomeSet.from_json(outcome_set.to_json()) == outcome_set


def test_litmus_test_roundtrips_with_description_and_dependencies():
    for test in [TEST_A] + list(L_TESTS):
        document = litmus_to_json(test)
        rebuilt = litmus_from_json(document)
        assert rebuilt == test, test.name
        assert rebuilt.description == test.description
        assert litmus_to_json(rebuilt) == document


def test_every_catalog_and_parametric_model_roundtrips():
    for model in list(named_models().values()) + model_space(True):
        rebuilt = model_from_json(model_to_json(model))
        assert rebuilt == model, model.name
        assert rebuilt.predicates.names() == model.predicates.names()


def test_callable_model_cannot_serialize():
    model = MemoryModel("opaque", lambda execution, x, y: True)
    with pytest.raises(SerializationError):
        to_json(model)


def test_engine_stats_rejects_unknown_counters():
    with pytest.raises(SerializationError):
        engine_stats_from_json({"checks_performed": 1, "not_a_counter": 2})


def test_result_types_expose_to_json_convenience():
    exploration = _known_exploration()
    assert from_json(exploration.to_json()) == exploration
    comparison = compare_models(SC, TSO, list(L_TESTS))
    assert comparison.from_json(comparison.to_json()) == comparison
    check = ExplicitChecker().check(TEST_A, TSO)
    assert check.from_json(check.to_json()) == check
