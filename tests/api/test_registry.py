"""Tests for the model and test registries (the one name-resolution place)."""

import pytest

from repro import TEST_A, TSO
from repro.api.registry import (
    ModelRegistry,
    TestRegistry,
    UnknownModelError,
    UnknownTestError,
)
from repro.core.catalog import named_models
from repro.core.model import MemoryModel
from repro.io.writer import write_litmus_file


# ----------------------------------------------------------------------
# ModelRegistry
# ----------------------------------------------------------------------
def test_catalog_names_resolve():
    registry = ModelRegistry()
    for name in named_models():
        assert registry.resolve(name).name == name


def test_case_insensitive_resolution():
    registry = ModelRegistry()
    assert registry.resolve("tso").name == "TSO"
    assert registry.resolve("X86").name == "x86"


def test_parametric_names_resolve():
    registry = ModelRegistry()
    assert registry.resolve("M4044").name == "M4044"
    assert registry.resolve("M4444").name == "M4444"


def test_model_instances_pass_through():
    registry = ModelRegistry()
    assert registry.resolve(TSO) is TSO


def test_unknown_model_error_lists_known_names():
    registry = ModelRegistry()
    with pytest.raises(UnknownModelError) as excinfo:
        registry.resolve("NotAModel")
    message = str(excinfo.value)
    assert "NotAModel" in message and "TSO" in message and "M4044" in message


def test_malformed_parametric_name_is_clearly_rejected():
    registry = ModelRegistry()
    with pytest.raises(UnknownModelError):
        registry.resolve("M9999")  # 9 is not a valid reorder option
    with pytest.raises(UnknownModelError):
        registry.resolve("M40")  # too short


def test_register_and_resolve_custom_model():
    registry = ModelRegistry()
    custom = MemoryModel("Custom", "Fence(x) | Fence(y)")
    registry.register(custom)
    assert registry.resolve("Custom") is custom
    assert registry.resolve("custom") is custom
    with pytest.raises(ValueError):
        registry.register(MemoryModel("Custom", "True"))
    replacement = MemoryModel("Custom", "True")
    registry.register(replacement, replace=True)
    assert registry.resolve("Custom") is replacement


def test_model_space_is_memoized_and_validated():
    registry = ModelRegistry()
    assert registry.space("no_deps") is registry.space("no_deps")
    assert len(registry.space("no_deps")) == 36
    assert len(registry.space("deps")) == 90
    with pytest.raises(UnknownModelError):
        registry.space("everything")


def test_summary_covers_registered_models():
    registry = ModelRegistry()
    registry.register(MemoryModel("Zed", "True"))
    lines = registry.summary()
    assert any(line.startswith("Zed") for line in lines)
    assert any(line.startswith("TSO") for line in lines)


# ----------------------------------------------------------------------
# TestRegistry
# ----------------------------------------------------------------------
def test_named_tests_resolve():
    registry = TestRegistry()
    assert registry.resolve("A") == TEST_A
    assert registry.resolve("L1").name == "L1"


def test_file_loading_is_cached_by_path(tmp_path):
    registry = TestRegistry()
    path = tmp_path / "a.litmus"
    write_litmus_file(TEST_A, path)
    first = registry.load(path)
    assert registry.load(str(path)) is first  # same object: engine caches stay warm
    assert registry.resolve(str(path)) is first


def test_inline_litmus_text_resolves():
    registry = TestRegistry()
    text = (
        'litmus "inline"\n'
        "thread T1 {\n  write X 1\n  read Y r1\n}\n"
        "thread T2 {\n  write Y 1\n  read X r2\n}\n"
        "exists r1 = 0 & r2 = 0\n"
    )
    test = registry.resolve(text)
    assert test.name == "inline"
    assert test.num_memory_accesses() == 4


def test_unknown_test_error_lists_known_names():
    registry = TestRegistry()
    with pytest.raises(UnknownTestError) as excinfo:
        registry.resolve("NoSuchTest")
    assert "L1" in str(excinfo.value)


def test_suites_are_memoized_with_identical_objects():
    registry = TestRegistry()
    first = registry.suite("no_deps")
    second = registry.suite("no_deps")
    assert first is second
    assert len(first) == 88  # the 124-instantiation no-deps suite, feasible tests only
    with pytest.raises(UnknownTestError):
        registry.suite("bogus")


def test_comparison_tests_append_the_nine_named_tests():
    registry = TestRegistry()
    tests = registry.comparison_tests("no_deps")
    names = [test.name for test in tests]
    for expected in ("L1", "L9"):
        assert expected in names
    assert tests is registry.comparison_tests("no_deps")
    bare = registry.comparison_tests("no_deps", include_named=False)
    assert "L1" not in [test.name for test in bare]
