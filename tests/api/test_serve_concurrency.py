"""Concurrency stress tests for the worker-pool serve loop.

Threads × ops over one socket server: no lost or duplicated responses,
per-request stats deltas that sum to the engine's total, verdicts
bit-identical to a cold single-threaded session, and (cache on vs off,
on both kernel legs) bit-identical results.
"""

import json
import random
import socket
import threading

import pytest

from repro.api.serve import ServeConfig, ServerState, serve_socket
from repro.api.session import Session
from repro.cache import VerdictCache
from repro.generation.named_tests import all_named_tests

MODELS = ("SC", "TSO", "PSO", "RMO", "Alpha")
TESTS = ("A", "L1", "L2", "L3", "L5", "L7")


def _quiet_config(**kwargs):
    kwargs.setdefault("workers", 4)
    return ServeConfig(log_enabled=False, **kwargs)


class _RunningServer:
    def __init__(self, session, config):
        self.state = ServerState(config)
        self.server = serve_socket(session, "127.0.0.1", 0, config=config, state=self.state)
        self.port = self.server.server_address[1]
        self.thread = threading.Thread(target=self.server.serve_forever, daemon=True)
        self.thread.start()

    def stop(self):
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10)


def _converse(port, lines):
    """One connection: send every line, return the parsed responses."""
    with socket.create_connection(("127.0.0.1", port), timeout=30) as connection:
        handle = connection.makefile("rw", encoding="utf-8")
        responses = []
        for line in lines:
            handle.write(line + "\n")
            handle.flush()
            responses.append(json.loads(handle.readline()))
        return responses


def _check_line(test, model):
    # Requests carry no client tag; response identity is asserted through
    # the echoed (test_name, model_name) of each result instead.
    return json.dumps({"op": "check", "test": test, "model": model})


def _expected_verdicts(pairs, **session_kwargs):
    """The ground truth: a cold, single-threaded session."""
    from repro.api.requests import CheckRequest

    session = Session(**session_kwargs)
    return {
        (test, model): session.run(CheckRequest(test=test, model=model)).allowed
        for test, model in sorted(set(pairs))
    }


def test_concurrent_clients_no_lost_or_duplicated_responses():
    rng = random.Random(0xC0FFEE)
    session = Session()
    session.engine.verdict_cache = VerdictCache()
    running = _RunningServer(session, _quiet_config())
    n_threads, n_requests = 8, 40
    plans = [
        [(rng.choice(TESTS), rng.choice(MODELS)) for _ in range(n_requests)]
        for _ in range(n_threads)
    ]
    expected = _expected_verdicts([pair for plan in plans for pair in plan])
    results = [None] * n_threads
    errors = []

    def client(index):
        try:
            lines = [_check_line(test, model) for test, model in plans[index]]
            results[index] = _converse(running.port, lines)
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)

    try:
        threads = [threading.Thread(target=client, args=(i,)) for i in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
    finally:
        running.stop()

    assert not errors
    for index, responses in enumerate(results):
        assert responses is not None and len(responses) == n_requests  # none lost
        for (test, model), response in zip(plans[index], responses):
            assert response["ok"], response
            # each response answers exactly the request that was sent, in
            # order — no duplication or cross-connection mixups
            assert response["result"]["test_name"] == test
            assert response["result"]["model_name"] == model
            assert response["result"]["allowed"] == expected[(test, model)]


def test_per_request_stats_deltas_sum_to_engine_total():
    session = Session()
    session.engine.verdict_cache = VerdictCache()
    running = _RunningServer(session, _quiet_config())
    rng = random.Random(7)
    plans = [
        [(rng.choice(TESTS), rng.choice(MODELS)) for _ in range(25)] for _ in range(6)
    ]
    all_stats = []
    stats_lock = threading.Lock()

    def client(plan):
        lines = [_check_line(test, model) for test, model in plan]
        responses = _converse(running.port, lines)
        with stats_lock:
            all_stats.extend(response["stats"] for response in responses)

    try:
        threads = [threading.Thread(target=client, args=(plan,)) for plan in plans]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
    finally:
        running.stop()

    assert len(all_stats) == sum(len(plan) for plan in plans)
    for counter in ("checks_performed", "verdict_cache_hits", "verdict_cache_misses",
                    "executions_evaluated", "solver_calls"):
        assert sum(stats[counter] for stats in all_stats) == getattr(
            session.engine.stats, counter
        ), counter
    assert sum(s["checks_performed"] for s in all_stats) == len(all_stats)


@pytest.mark.parametrize("kernel", ("bigint", "python"))
def test_verdicts_bit_identical_cache_on_vs_off(kernel):
    rng = random.Random(42)
    pairs = [(rng.choice(TESTS), rng.choice(MODELS)) for _ in range(60)]
    lines = [_check_line(test, model) for test, model in pairs]

    outcomes = {}
    for label, cache in (("off", None), ("on", VerdictCache())):
        session = Session(kernel=kernel)
        session.engine.verdict_cache = cache
        running = _RunningServer(session, _quiet_config())
        try:
            responses = _converse(running.port, lines)
        finally:
            running.stop()
        outcomes[label] = [response["result"] for response in responses]
        assert all(response["ok"] for response in responses)

    assert outcomes["on"] == outcomes["off"]  # bit-identical result documents
    expected = _expected_verdicts(pairs, kernel=kernel)
    for (test, model), result in zip(pairs, outcomes["on"]):
        assert result["allowed"] == expected[(test, model)]


def test_fast_path_hits_register_in_metrics_and_engine_stats():
    session = Session()
    session.engine.verdict_cache = VerdictCache()
    running = _RunningServer(session, _quiet_config())
    line = _check_line("L1", "TSO")
    try:
        first, second, metrics = _converse(
            running.port, [line, line, json.dumps({"op": "metrics"})]
        )
    finally:
        running.stop()
    assert first["result"] == second["result"]
    assert second["stats"]["verdict_cache_hits"] == 1
    document = metrics["result"]
    assert document["cache"]["enabled"] is True
    assert document["cache"]["hits"] >= 1
    assert document["engine"]["verdict_cache_hits"] >= 1
    assert any(
        entry["op"] == "check" and entry["code"] == "ok" and entry["count"] == 2
        for entry in document["requests"]
    )


def test_connection_registries_are_private_views():
    base = Session()
    running = _RunningServer(base, _quiet_config())
    named = all_named_tests()
    try:
        # Connection A checks an inline model document; connection B must
        # still see the stock registries (and the base session must too).
        before = tuple(base.models.names())
        _converse(running.port, [json.dumps({"op": "check", "test": "A", "model": "TSO"})])
        assert tuple(base.models.names()) == before
    finally:
        running.stop()
    assert "A" in named  # sanity: the test name used above exists


def test_hypothesis_seeded_mixed_op_stress():
    from hypothesis import given, settings, strategies as st

    session = Session()
    session.engine.verdict_cache = VerdictCache()
    running = _RunningServer(session, _quiet_config(workers=3))
    expected = _expected_verdicts([(t, m) for t in TESTS for m in MODELS])

    ops = st.lists(
        st.one_of(
            st.tuples(st.sampled_from(TESTS), st.sampled_from(MODELS)),
            st.just("stats"),
            st.just("health"),
        ),
        min_size=1,
        max_size=12,
    )

    @settings(max_examples=15, deadline=None)
    @given(plan=ops)
    def run(plan):
        lines = []
        for op in plan:
            if op == "stats":
                lines.append(json.dumps({"op": "stats"}))
            elif op == "health":
                lines.append(json.dumps({"op": "health"}))
            else:
                lines.append(_check_line(op[0], op[1]))
        responses = _converse(running.port, lines)
        assert len(responses) == len(plan)
        for op, response in zip(plan, responses):
            assert response["ok"], response
            if isinstance(op, tuple):
                assert response["result"]["allowed"] == expected[op]
            elif op == "health":
                assert response["result"]["status"] == "ok"
            else:
                assert "engine" in response["result"]

    try:
        run()
    finally:
        running.stop()
