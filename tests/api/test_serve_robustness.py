"""Robustness tests for the serve loop: error taxonomy, deadlines, limits,
backpressure, idle timeouts, built-in ops, and graceful drain."""

import io
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.api.serve import (
    ERROR_CODES,
    ServeConfig,
    ServerState,
    handle_request_line,
    serve_socket,
    serve_stream,
)
from repro.api.session import Session
from repro.util import faults

CHECK_LINE = json.dumps({"op": "check", "test": "A", "model": "TSO"})


@pytest.fixture(autouse=True)
def _isolate_faults():
    saved = faults.snapshot()
    faults.clear()
    yield
    faults.restore(saved)


@pytest.fixture(scope="module")
def session():
    return Session()


def _quiet_config(**kwargs):
    return ServeConfig(log_enabled=False, **kwargs)


def _serve_lines(session, lines, config=None, state=None):
    output = io.StringIO()
    serve_stream(
        session,
        io.StringIO("\n".join(lines) + "\n"),
        output,
        config=config,
        state=state,
    )
    return [json.loads(line) for line in output.getvalue().splitlines()]


# ----------------------------------------------------------------------
# error taxonomy
# ----------------------------------------------------------------------
def test_error_codes_are_documented_strings():
    assert set(ERROR_CODES) == {
        "invalid_request",
        "request_too_large",
        "deadline_exceeded",
        "overloaded",
        "unavailable",
        "internal",
    }


def test_unexpected_exception_yields_internal_not_a_dead_loop(session):
    """The satellite fix: an exception outside the (ValueError, TypeError,
    LookupError, OSError) family must answer `internal` and keep serving."""
    faults.install("serve.request=raise*1")
    log = io.StringIO()
    state = ServerState(ServeConfig(log_stream=log))
    responses = _serve_lines(session, [CHECK_LINE, CHECK_LINE], state=state)
    assert len(responses) == 2
    assert responses[0]["ok"] is False
    assert responses[0]["error"]["code"] == "internal"
    assert "InjectedFault" in responses[0]["error"]["message"]
    assert responses[1]["ok"] is True  # the loop survived
    events = [json.loads(line) for line in log.getvalue().splitlines()]
    (internal,) = [event for event in events if event["event"] == "internal_error"]
    assert "Traceback" in internal["traceback"]


def test_non_object_json_document_is_invalid_request(session):
    # A JSON array used to raise AttributeError straight through the loop.
    for line in ("[1, 2, 3]", '"a string"', "42"):
        response = handle_request_line(session, line)
        assert response["ok"] is False
        assert response["error"]["code"] == "invalid_request"


def test_session_level_fault_is_internal(session):
    faults.install("session.run=raise*1")
    response = handle_request_line(
        session, CHECK_LINE, config=_quiet_config()
    )
    assert response["error"]["code"] == "internal"


SYNTHESIZE_LINE = json.dumps(
    {
        "op": "synthesize",
        "observations": [
            {"test": "L1", "allowed": False},
            {"test": "L8", "allowed": True},
        ],
        "space": "paper90",
    }
)


def test_synthesis_fault_mid_solve_is_internal_and_loop_survives(session):
    """A synthesize request dying mid-solve answers `internal` with the
    traceback in the log (not the response), and the loop keeps serving —
    including a retry of the very same synthesize request."""
    faults.install("synth.solve=raise*1")
    log = io.StringIO()
    state = ServerState(ServeConfig(log_stream=log))
    responses = _serve_lines(
        session, [SYNTHESIZE_LINE, SYNTHESIZE_LINE, CHECK_LINE], state=state
    )
    assert [r["ok"] for r in responses] == [False, True, True]
    assert responses[0]["error"]["code"] == "internal"
    assert "InjectedFault" in responses[0]["error"]["message"]
    assert "Traceback" not in responses[0]["error"]["message"]
    events = [json.loads(line) for line in log.getvalue().splitlines()]
    (internal,) = [e for e in events if e["event"] == "internal_error"]
    assert "Traceback" in internal["traceback"]
    # The armed fault is spent; the retry produced a real synthesis result.
    assert responses[1]["result"]["schema"] == "repro/synthesis_result"
    assert responses[1]["result"]["consistent_models"]


def test_synthesize_dispatch_fault_is_internal(session):
    faults.install("session.run[op=synthesize]=raise*1")
    responses = _serve_lines(
        session, [CHECK_LINE, SYNTHESIZE_LINE, CHECK_LINE], config=_quiet_config()
    )
    # The op filter spares the surrounding check requests.
    assert [r["ok"] for r in responses] == [True, False, True]
    assert responses[1]["error"]["code"] == "internal"


def test_malformed_observations_are_invalid_request_not_internal(session):
    bad = [
        {"op": "synthesize", "observations": [{"test": "L1"}]},
        {"op": "synthesize", "observations": [{"test": "L1", "allowed": 1}]},
        {"op": "synthesize", "observations": "L1"},
        {"op": "synthesize", "observations": [], "space": "paper180"},
        {"op": "synthesize", "observations": [], "backend": "cnf"},
    ]
    responses = _serve_lines(session, [json.dumps(b) for b in bad] + [CHECK_LINE])
    assert [r["ok"] for r in responses] == [False] * 5 + [True]
    assert all(
        r["error"]["code"] == "invalid_request" for r in responses if not r["ok"]
    )


# ----------------------------------------------------------------------
# bounded request lines
# ----------------------------------------------------------------------
def test_oversized_line_answers_request_too_large_and_continues(session):
    config = _quiet_config(max_line_bytes=256)
    huge = json.dumps({"op": "check", "test": "x" * 1024, "model": "TSO"})
    responses = _serve_lines(session, [huge, CHECK_LINE], config=config)
    assert responses[0]["error"]["code"] == "request_too_large"
    assert "256" in responses[0]["error"]["message"]
    assert responses[1]["ok"] is True


def test_oversized_line_is_discarded_not_buffered(session):
    """The reader never holds more than max_line_bytes of an oversized line."""

    class CountingStream(io.StringIO):
        max_read = 0

        def readline(self, limit=-1):
            text = super().readline(limit)
            CountingStream.max_read = max(CountingStream.max_read, len(text))
            return text

    config = _quiet_config(max_line_bytes=128)
    stream = CountingStream(("y" * 100_000) + "\n" + CHECK_LINE + "\n")
    output = io.StringIO()
    serve_stream(Session(), stream, output, config=config)
    responses = [json.loads(line) for line in output.getvalue().splitlines()]
    assert responses[0]["error"]["code"] == "request_too_large"
    assert responses[1]["ok"] is True
    assert CountingStream.max_read <= 129


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
def test_slow_request_past_deadline_is_abandoned(session):
    faults.install("serve.request=delay:5*1")
    config = _quiet_config(timeout=0.2)
    started = time.monotonic()
    response = handle_request_line(session, CHECK_LINE, config=config)
    elapsed = time.monotonic() - started
    assert response["error"]["code"] == "deadline_exceeded"
    assert elapsed < 2.0  # did not wait out the 5s delay


def test_abandoned_request_releases_the_shared_lock(session):
    """The engine lock is acquired inside the watchdog-run closure, so an
    abandoned request frees it when it finishes in the background."""
    faults.install("serve.request=delay:0.4*1")
    lock = threading.Lock()
    config = _quiet_config(timeout=0.1)
    first = handle_request_line(session, CHECK_LINE, config=config, lock=lock)
    assert first["error"]["code"] == "deadline_exceeded"
    time.sleep(0.6)  # let the abandoned thread finish and release
    second = handle_request_line(session, CHECK_LINE, config=config, lock=lock)
    assert second["ok"] is True


def test_fast_requests_unaffected_by_deadline(session):
    config = _quiet_config(timeout=30.0)
    response = handle_request_line(session, CHECK_LINE, config=config)
    assert response["ok"] is True


# ----------------------------------------------------------------------
# built-in ops
# ----------------------------------------------------------------------
def test_health_op_reports_status_and_uptime(session):
    state = ServerState(_quiet_config())
    response = handle_request_line(session, '{"op": "health"}', state=state)
    assert response["ok"] and response["op"] == "health"
    assert response["result"]["status"] == "ok"
    assert response["result"]["uptime_seconds"] >= 0
    state.draining = True
    drained = handle_request_line(session, '{"op": "health"}', state=state)
    assert drained["result"]["status"] == "draining"


def test_stats_op_surfaces_counters_and_kernel_backend(session):
    state = ServerState(_quiet_config())
    responses = _serve_lines(
        session, [CHECK_LINE, '{"op": "stats"}'], state=state
    )
    stats = responses[1]["result"]
    assert stats["server"]["requests_total"] >= 1
    assert stats["server"]["requests_ok"] >= 1
    assert "uptime_seconds" in stats["server"]
    assert stats["engine"]["checks_performed"] >= 1
    assert stats["engine"]["kernel_backend"] == session.kernel_name
    assert stats["session"]["backend"] == session.backend_name


def test_stats_op_counts_errors_by_code(session):
    state = ServerState(_quiet_config())
    responses = _serve_lines(
        session, ["not json", '{"op": "stats"}'], state=state
    )
    by_code = responses[1]["result"]["server"]["errors_by_code"]
    assert by_code.get("invalid_request") == 1


def test_builtin_ops_bypass_the_deadline_and_lock(session):
    # A held lock (a wedged engine) must not block health checks.
    lock = threading.Lock()
    with lock:
        config = _quiet_config(timeout=0.2)
        response = handle_request_line(
            session, '{"op": "health"}', config=config, lock=lock
        )
    assert response["ok"] is True


# ----------------------------------------------------------------------
# socket transport: limits, shedding, idle timeout
# ----------------------------------------------------------------------
def _start_server(session, config):
    server = serve_socket(session, "127.0.0.1", 0, config=config)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread, server.server_address[1]


def _stop_server(server, thread):
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def test_socket_oversized_line_answers_request_too_large(session):
    config = _quiet_config(max_line_bytes=256)
    server, thread, port = _start_server(session, config)
    try:
        with socket.create_connection(("127.0.0.1", port), timeout=10) as conn:
            handle = conn.makefile("rw", encoding="utf-8")
            handle.write("z" * 1024 + "\n")
            handle.write(CHECK_LINE + "\n")
            handle.flush()
            first = json.loads(handle.readline())
            second = json.loads(handle.readline())
        assert first["error"]["code"] == "request_too_large"
        assert second["ok"] is True
    finally:
        _stop_server(server, thread)


def test_connections_beyond_queue_are_shed_with_overloaded(session):
    config = _quiet_config(
        max_connections=1, admission_queue=0, admission_timeout=0.2
    )
    server, thread, port = _start_server(session, config)
    try:
        # Occupy the single slot with an open conversation.
        holder = socket.create_connection(("127.0.0.1", port), timeout=10)
        holder_file = holder.makefile("rw", encoding="utf-8")
        holder_file.write(CHECK_LINE + "\n")
        holder_file.flush()
        assert json.loads(holder_file.readline())["ok"]
        # The next connection exceeds the (zero-length) admission queue.
        with socket.create_connection(("127.0.0.1", port), timeout=10) as shed:
            shed_file = shed.makefile("rw", encoding="utf-8")
            response = json.loads(shed_file.readline())
        assert response["ok"] is False
        assert response["error"]["code"] == "overloaded"
        holder.close()
    finally:
        _stop_server(server, thread)


def test_idle_connections_are_closed(session):
    config = _quiet_config(idle_timeout=0.3)
    server, thread, port = _start_server(session, config)
    try:
        with socket.create_connection(("127.0.0.1", port), timeout=10) as conn:
            conn.settimeout(10)
            # Say nothing; the server should hang up after idle_timeout.
            assert conn.recv(1024) == b""
    finally:
        _stop_server(server, thread)


def test_draining_server_answers_unavailable(session):
    config = _quiet_config()
    state = ServerState(config)
    server = serve_socket(session, "127.0.0.1", 0, config=config, state=state)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    try:
        state.draining = True
        with socket.create_connection(("127.0.0.1", port), timeout=10) as conn:
            response = json.loads(conn.makefile("r", encoding="utf-8").readline())
        assert response["error"]["code"] == "unavailable"
    finally:
        _stop_server(server, thread)


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
def test_serve_config_from_env_and_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_TIMEOUT", "12.5")
    monkeypatch.setenv("REPRO_SERVE_MAX_LINE_BYTES", "4096")
    monkeypatch.setenv("REPRO_SERVE_MAX_CONNECTIONS", "not-a-number")
    config = ServeConfig.from_env(max_line_bytes=8192)
    assert config.timeout == 12.5
    assert config.max_line_bytes == 8192  # explicit override beats env
    assert config.max_connections == ServeConfig.max_connections  # bad env ignored


def test_cli_serve_exposes_limit_flags():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["serve", "--timeout", "5", "--max-line-bytes", "1000",
         "--max-connections", "7", "--drain-grace", "2"]
    )
    from repro.api.serve import config_from_args

    config = config_from_args(args)
    assert config.timeout == 5.0
    assert config.max_line_bytes == 1000
    assert config.max_connections == 7
    assert config.drain_grace == 2.0


# ----------------------------------------------------------------------
# graceful drain (subprocess, real signals)
# ----------------------------------------------------------------------
def _subprocess_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(sys.path)
    env.update(extra)
    return env


def test_sigterm_mid_request_drains_and_exits_zero():
    """The CI smoke, as a test: SIGTERM while a request is in flight still
    delivers the response, logs structured start/drain/stop events, and
    exits 0."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve"],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_subprocess_env(REPRO_FAULTS="serve.request=delay:1.5*1"),
    )
    proc.stdin.write(CHECK_LINE + "\n")
    proc.stdin.flush()
    time.sleep(0.6)  # the request is inside its injected 1.5s delay
    proc.send_signal(signal.SIGTERM)
    out, err = proc.communicate(timeout=60)
    assert proc.returncode == 0
    responses = [json.loads(line) for line in out.splitlines()]
    assert responses and responses[0]["ok"] is True  # response delivered
    events = [json.loads(line)["event"] for line in err.splitlines()
              if line.startswith("{")]
    assert "serve_start" in events
    assert "drain_begin" in events
    assert events[-1] == "serve_stop"


def test_sigterm_on_idle_stdin_server_exits_zero():
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve"],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_subprocess_env(),
    )
    # Wait for startup, then SIGTERM while blocked reading stdin.
    for _ in range(200):
        line = proc.stderr.readline()
        if line.startswith("{") and json.loads(line)["event"] == "serve_start":
            break
    time.sleep(0.2)
    proc.send_signal(signal.SIGTERM)
    proc.communicate(timeout=60)
    assert proc.returncode == 0


def test_sigterm_socket_server_drains_and_exits_zero():
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_subprocess_env(REPRO_FAULTS="serve.request=delay:1.5*1"),
    )
    port = None
    for _ in range(200):
        line = proc.stderr.readline()
        if line.startswith("{"):
            record = json.loads(line)
            if record["event"] == "serve_start":
                port = record["port"]
                break
    assert port is not None
    with socket.create_connection(("127.0.0.1", port), timeout=30) as conn:
        conn.sendall((CHECK_LINE + "\n").encode("utf-8"))
        time.sleep(0.6)  # mid-request (inside the injected delay)
        proc.send_signal(signal.SIGTERM)
        conn.settimeout(30)
        data = b""
        while b"\n" not in data:
            chunk = conn.recv(4096)
            if not chunk:
                break
            data += chunk
    response = json.loads(data.decode("utf-8"))
    assert response["ok"] is True  # in-flight request still answered
    proc.wait(timeout=60)
    proc.stdout.close()
    proc.stderr.close()
    assert proc.returncode == 0


# ----------------------------------------------------------------------
# verdict-cache faults
# ----------------------------------------------------------------------
def test_cache_get_fault_mid_request_is_internal_and_loop_survives(session):
    """A verdict-cache lookup dying mid-request is an `internal` answer,
    not a dead loop: the very next request (cache disarmed) succeeds."""
    from repro.cache import VerdictCache

    session.engine.verdict_cache = VerdictCache()
    faults.install("cache.get=raise*1")
    first, second = _serve_lines(session, [CHECK_LINE, CHECK_LINE])
    assert first["ok"] is False
    assert first["error"]["code"] == "internal"
    assert second["ok"] is True


def test_cache_persist_fault_never_corrupts_a_response(session, tmp_path):
    """A torn persistent-cache flush (crash mid-write) degrades the cache,
    never the answer: requests keep succeeding with correct verdicts."""
    from repro.cache import VerdictCache

    faults.install("cache.persist=truncate:40")
    session.engine.verdict_cache = VerdictCache.open(str(tmp_path))
    responses = _serve_lines(session, [CHECK_LINE, CHECK_LINE])
    assert all(response["ok"] for response in responses)
    assert responses[0]["result"] == responses[1]["result"]
    session.engine.verdict_cache.close()


def test_torn_persistent_cache_is_skipped_on_serve_reload(tmp_path):
    """`repro serve --cache-dir` over a torn verdicts.jsonl (a crashed
    predecessor) starts cleanly: the torn tail is skipped, the surviving
    entries load, and requests are served."""
    from repro.cache import VerdictCache

    warm = VerdictCache.open(str(tmp_path))
    warm.put(("m0", "t0"), True)
    warm.put(("m1", "t1"), False)
    warm.close()
    path = tmp_path / "verdicts.jsonl"
    path.write_bytes(path.read_bytes()[:-9])  # tear into the last entry

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--cache-dir", str(tmp_path)],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_subprocess_env(),
    )
    out, err = proc.communicate(CHECK_LINE + "\n", timeout=60)
    assert proc.returncode == 0
    response = json.loads(out.splitlines()[0])
    assert response["ok"] is True
    records = [json.loads(line) for line in err.splitlines() if line.startswith("{")]
    opened = [record for record in records if record["event"] == "cache_open"]
    assert opened and opened[0]["loaded"] == 1  # torn tail skipped, rest kept
    assert opened[0]["skipped"] == 1
