"""Tests for the JSON-lines serve loop (stream and socket transports)."""

import io
import json
import socket
import threading

from repro.api.requests import (
    CheckRequest,
    CompareRequest,
    ExploreRequest,
    OutcomesRequest,
    request_from_json,
    request_to_json,
)
from repro.api.serialize import SCHEMA_VERSION, from_json
from repro.api.serve import handle_request_line, serve_socket, serve_stream
from repro.api.session import Session


def _serve_lines(lines, session=None):
    output = io.StringIO()
    count = serve_stream(
        session if session is not None else Session(),
        io.StringIO("\n".join(lines) + "\n"),
        output,
    )
    return count, [json.loads(line) for line in output.getvalue().splitlines()]


def test_request_dataclasses_roundtrip_through_json():
    requests = [
        CheckRequest(test="A", model="TSO", witness=True),
        CompareRequest(first="SC", second="TSO", suite="no_deps"),
        ExploreRequest(space="deps"),
        ExploreRequest(models=("M4444", "M4044"), suite="no_deps", preferred=False),
        OutcomesRequest(test="L7", model="SC"),
    ]
    for request in requests:
        document = request_to_json(request)
        assert document["schema"] == "repro/request"
        assert document["schema_version"] == SCHEMA_VERSION
        assert request_from_json(document) == request
        # one line of JSON, as the serve loop transports it
        assert request_from_json(json.loads(json.dumps(document))) == request


def test_serve_answers_three_requests_with_valid_documents():
    count, responses = _serve_lines(
        [
            json.dumps({"op": "check", "test": "A", "model": "TSO"}),
            json.dumps({"op": "compare", "first": "TSO", "second": "x86", "suite": "no_deps"}),
            json.dumps({"op": "outcomes", "test": "L7", "model": "SC"}),
        ]
    )
    assert count == 3
    assert [response["ok"] for response in responses] == [True, True, True]
    assert [response["op"] for response in responses] == ["check", "compare", "outcomes"]
    check = from_json(responses[0]["result"])
    assert check.allowed and check.model_name == "TSO"
    compare = from_json(responses[1]["result"])
    assert compare.equivalent
    outcomes = from_json(responses[2]["result"])
    assert len(outcomes) == 3
    for response in responses:
        assert response["schema"] == "repro/response"
        assert response["schema_version"] == SCHEMA_VERSION
        assert "checks_performed" in response["stats"]


def test_serve_demonstrates_cross_request_cache_reuse():
    _, responses = _serve_lines(
        [
            json.dumps({"op": "compare", "first": "SC", "second": "TSO", "suite": "no_deps"}),
            json.dumps({"op": "explore", "space": "no_deps"}),
        ]
    )
    warmup, explore = responses
    assert warmup["stats"]["executions_evaluated"] > 0
    # The warm session answers the exploration without evaluating a single
    # new execution: every test context comes from the compare's cache.
    assert explore["stats"]["executions_evaluated"] == 0
    assert explore["stats"]["context_cache_hits"] > 0


def test_serve_stats_report_the_active_kernel_backend():
    """Every response's stats delta names the kernel and its search counters."""
    for kernel in ("bigint", "python"):
        _, responses = _serve_lines(
            [json.dumps({"op": "explore", "space": "no_deps"})],
            session=Session(kernel=kernel),
        )
        stats = responses[0]["stats"]
        assert stats["kernel_backend"] == kernel
        assert stats["native_searches"] == 0
        assert stats["fallback_searches"] > 0


def test_serve_reports_errors_and_keeps_going():
    count, responses = _serve_lines(
        [
            "this is not json",
            json.dumps({"op": "levitate"}),
            json.dumps({"op": "check", "test": "A", "model": "NoSuchModel"}),
            json.dumps({"op": "check", "test": "A"}),  # missing required field
            json.dumps({"op": "check", "test": "A", "model": "TSO"}),
        ]
    )
    assert count == 5
    assert [response["ok"] for response in responses] == [False, False, False, False, True]
    # Errors are machine-readable {code, message} objects.
    assert all(response["error"]["code"] == "invalid_request"
               for response in responses if not response["ok"])
    assert "NoSuchModel" in responses[2]["error"]["message"]


def test_serve_survives_malformed_embedded_documents():
    # A litmus_test document missing required fields raises KeyError deep in
    # deserialization; the loop must answer ok:false and keep going.
    bad_test = {"schema": "repro/litmus_test", "schema_version": SCHEMA_VERSION, "name": "x"}
    count, responses = _serve_lines(
        [
            json.dumps({"op": "check", "test": bad_test, "model": "TSO"}),
            json.dumps({"op": "check", "test": "A", "model": "TSO"}),
        ]
    )
    assert count == 2
    assert responses[0]["ok"] is False
    assert responses[1]["ok"] is True


def test_socket_serving_disables_path_test_specs(tmp_path):
    from repro.io.writer import write_litmus_file

    import repro

    path = tmp_path / "a.litmus"
    write_litmus_file(repro.TEST_A, path)
    session = Session()
    assert session.tests.allow_paths is True

    # serve(port=...) flips the flag before binding; simulate the effect.
    session.tests.allow_paths = False
    output = io.StringIO()
    serve_stream(
        session,
        io.StringIO(json.dumps({"op": "check", "test": str(path), "model": "TSO"}) + "\n"),
        output,
    )
    response = json.loads(output.getvalue())
    assert response["ok"] is False
    assert "unknown test" in response["error"]["message"]
    # registered names still work with paths disabled
    session.tests.allow_paths = False
    assert handle_request_line(session, json.dumps({"op": "check", "test": "A", "model": "TSO"}))["ok"]
    # observation test specs go through the same registry, so synthesize
    # requests honor the restriction too
    synthesize = {
        "op": "synthesize",
        "observations": [{"test": str(path), "allowed": True}],
        "space": "paper36",
    }
    response = handle_request_line(session, json.dumps(synthesize))
    assert response["ok"] is False
    assert "unknown test" in response["error"]["message"]


def test_serve_rejects_wrong_schema_version_per_line():
    document = request_to_json(CheckRequest(test="A", model="TSO"))
    document["schema_version"] = SCHEMA_VERSION + 1
    _, responses = _serve_lines([json.dumps(document)])
    assert responses[0]["ok"] is False
    assert "schema_version" in responses[0]["error"]["message"]


def test_serve_skips_blank_lines():
    count, responses = _serve_lines(["", json.dumps({"op": "check", "test": "A", "model": "TSO"}), "   "])
    assert count == 1 and len(responses) == 1


def test_handle_request_line_accepts_enveloped_requests():
    session = Session()
    line = json.dumps(request_to_json(CheckRequest(test="A", model="TSO")))
    response = handle_request_line(session, line)
    assert response["ok"] and from_json(response["result"]).allowed


def test_serve_socket_roundtrip():
    session = Session()
    server = serve_socket(session, "127.0.0.1", 0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        with socket.create_connection(("127.0.0.1", port), timeout=10) as connection:
            handle = connection.makefile("rw", encoding="utf-8")
            for op, expectation in [
                ({"op": "check", "test": "A", "model": "TSO"}, True),
                ({"op": "check", "test": "A", "model": "SC"}, False),
            ]:
                handle.write(json.dumps(op) + "\n")
                handle.flush()
                response = json.loads(handle.readline())
                assert response["ok"] is True
                assert from_json(response["result"]).allowed is expectation
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


# ----------------------------------------------------------------------
# inline model definitions (models the server has never seen)
# ----------------------------------------------------------------------
def test_serve_checks_inline_model_definitions():
    from repro.api.serialize import to_json
    from repro.core.model import MemoryModel

    weird = MemoryModel(
        "ClientOnly",
        "(Write(x) & Write(y) & SameAddr(x, y)) | Fence(x) | Fence(y)",
        description="defined client-side only",
    )
    session = Session()
    session.models.allow_paths = False  # the network-facing restriction
    assert "ClientOnly" not in session.models
    count, responses = _serve_lines(
        [
            json.dumps({"op": "check", "test": "A", "model": to_json(weird)}),
            json.dumps(
                {
                    "op": "compare",
                    "first": to_json(weird),
                    "second": "PSO",
                    "suite": "no_deps",
                }
            ),
        ],
        session=session,
    )
    assert count == 2
    assert all(response["ok"] for response in responses)
    assert responses[0]["result"]["model_name"] == "ClientOnly"
    assert responses[1]["result"]["first"] == "ClientOnly"


def test_serve_inline_model_explore_roundtrips_end_to_end():
    """The acceptance scenario: an ExploreRequest over inline model
    documents answered by a server that has never seen them, with the
    resulting document round-tripping exactly."""
    from repro.api.serialize import to_json
    from repro.core.model import MemoryModel

    inline = [
        to_json(MemoryModel("CustomA", "(Write(x) & Write(y)) | Read(x)")),
        to_json(MemoryModel("CustomB", "Fence(x) | Fence(y)")),
        "SC",
    ]
    request = ExploreRequest(models=tuple(inline), suite="no_deps", preferred=False)
    count, responses = _serve_lines([json.dumps(request_to_json(request))])
    assert count == 1 and responses[0]["ok"]
    result_document = responses[0]["result"]
    result = from_json(result_document)
    assert [model.name for model in result.models] == ["CustomA", "CustomB", "SC"]
    assert result.to_json() == result_document
    # Resending the same definitions hits the digest-keyed caches: no new
    # compilations, po edges answered from cache.
    session = Session()
    _serve_lines([json.dumps(request_to_json(request))], session=session)
    compiled_before = session.stats.models_compiled
    _, second = _serve_lines([json.dumps(request_to_json(request))], session=session)
    assert second[0]["ok"]
    assert session.stats.models_compiled == compiled_before
    assert second[0]["stats"]["models_compiled"] == 0
    assert second[0]["stats"]["po_edge_cache_hits"] > 0


def test_socket_serving_disables_model_paths(tmp_path):
    from repro.io import write_model_file
    from repro.core.catalog import TSO

    path = tmp_path / "secret.model"
    write_model_file(TSO.renamed("Secret"), path)
    session = Session()
    session.models.allow_paths = False  # what serve --port applies
    count, responses = _serve_lines(
        [json.dumps({"op": "check", "test": "A", "model": str(path)})],
        session=session,
    )
    assert count == 1 and not responses[0]["ok"]
    assert "unknown model" in responses[0]["error"]["message"]
